"""Performance harness for the three execution engines.

Times the same seeded workloads on the serial, batched, and ensemble
engines and writes a machine-readable JSON report (``BENCH_PR2.json`` by
default).  Three workloads:

* ``fig5_sweep`` — a FIG5-style multi-replicate latency sweep (the
  ensemble engine's target shape: many replicates, one sweep),
* ``thm4_cells`` — the nine heterogeneous THM4 ``(q, s, n)`` cells as
  one ensemble vs. per-cell batched/serial runs,
* ``single_run_100k`` — one long single-replicate run (the shape where
  the ensemble engine has the least to amortise).

Because the engines are bit-identical by construction (and the harness
re-checks this on every run), the speedups are pure wall-clock: same
numbers, less time.

Usage::

    python tools/bench_perf.py                  # full run -> BENCH_PR2.json
    python tools/bench_perf.py --quick          # CI-sized steps/repeats
    python tools/bench_perf.py --out perf.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.algorithms.counter import cas_counter, make_counter_memory  # noqa: E402
from repro.core.latency import (  # noqa: E402
    measure_latencies,
    resolve_vector_kernel,
)
from repro.core.scheduler import UniformStochasticScheduler  # noqa: E402
from repro.core.scu import SCU  # noqa: E402
from repro.core.sweep import latency_sweep  # noqa: E402
from repro.sim import EnsembleReplicate, EnsembleSimulator, Simulator  # noqa: E402


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_fig5_sweep(quick):
    """Multi-replicate latency sweep: the ensemble engine's home turf."""
    n_values = [4, 8] if quick else [4, 8, 16]
    steps = 10_000 if quick else 60_000
    repeats = 8 if quick else 32

    def sweep(engine):
        return lambda: latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=2,
            engine=engine,
        )

    engines = {}
    points = {}
    for engine in ("serial", "batched", "ensemble"):
        engines[engine], points[engine] = timed(sweep(engine))
    return {
        "workload": "fig5_sweep",
        "params": {"n_values": n_values, "steps": steps, "repeats": repeats},
        "seconds": engines,
        "speedup_ensemble_vs_batched": engines["batched"] / engines["ensemble"],
        "speedup_ensemble_vs_serial": engines["serial"] / engines["ensemble"],
        "bit_identical": all(
            points[e] == points["batched"] for e in points
        ),
    }


THM4_SWEEP = [
    (0, 1, 4),
    (0, 1, 16),
    (0, 1, 64),
    (2, 1, 16),
    (8, 1, 16),
    (0, 2, 16),
    (0, 4, 16),
    (4, 2, 16),
    (2, 2, 36),
]


def bench_thm4_cells(quick):
    """The nine heterogeneous THM4 cells as one ensemble."""
    steps = 20_000 if quick else 250_000
    specs = [SCU(q, s) for q, s, _ in THM4_SWEEP]

    def run_ensemble():
        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    resolve_vector_kernel(spec.factory()),
                    n,
                    UniformStochasticScheduler(),
                    spec.memory(),
                    rng=(q, s, n),
                )
                for spec, (q, s, n) in zip(specs, THM4_SWEEP)
            ]
        )
        return [
            m.system_latency for m in ensemble.run(steps).measurements()
        ]

    def run_batched():
        return [
            spec.measure(n, steps, rng=(q, s, n), batched=True).system_latency
            for spec, (q, s, n) in zip(specs, THM4_SWEEP)
        ]

    seconds = {}
    seconds["batched"], batched = timed(run_batched)
    seconds["ensemble"], ensemble = timed(run_ensemble)
    return {
        "workload": "thm4_cells",
        "params": {"cells": THM4_SWEEP, "steps": steps},
        "seconds": seconds,
        "speedup_ensemble_vs_batched": seconds["batched"] / seconds["ensemble"],
        "bit_identical": batched == ensemble,
    }


def bench_single_run(quick):
    """One long run: least amortisation, honest worst case."""
    steps = 20_000 if quick else 100_000
    n = 16

    def serial():
        return Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_counter_memory(),
            rng=7,
        ).run(steps)

    def batched():
        return measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=steps,
            memory=make_counter_memory(),
            rng=7,
            batched=True,
        )

    def ensemble():
        replicate = EnsembleReplicate(
            resolve_vector_kernel(cas_counter()),
            n,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=7,
        )
        return EnsembleSimulator([replicate]).run(steps).measurements()[0]

    seconds = {}
    seconds["serial"], _ = timed(serial)
    seconds["batched"], batched_m = timed(batched)
    seconds["ensemble"], ensemble_m = timed(ensemble)
    return {
        "workload": "single_run_100k",
        "params": {"n": n, "steps": steps},
        "seconds": seconds,
        "speedup_ensemble_vs_batched": seconds["batched"] / seconds["ensemble"],
        "speedup_ensemble_vs_serial": seconds["serial"] / seconds["ensemble"],
        "bit_identical": batched_m == ensemble_m,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized steps/repeats (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR2.json",
        help="output JSON path (default: BENCH_PR2.json at the repo root)",
    )
    args = parser.parse_args(argv)

    results = []
    for bench in (bench_fig5_sweep, bench_thm4_cells, bench_single_run):
        result = bench(args.quick)
        results.append(result)
        speedup = result["speedup_ensemble_vs_batched"]
        print(
            f"{result['workload']:<16} ensemble {result['seconds']['ensemble']:8.3f}s"
            f"  batched {result['seconds']['batched']:8.3f}s"
            f"  speedup {speedup:5.2f}x"
            f"  bit_identical={result['bit_identical']}"
        )
        if not result["bit_identical"]:
            raise SystemExit(
                f"engines disagree on workload {result['workload']!r}"
            )

    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
            "quick": args.quick,
        },
        "workloads": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
