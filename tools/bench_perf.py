"""Performance harness for the three execution engines.

Times the same seeded workloads on the serial, batched, and ensemble
engines and writes a machine-readable JSON report (``BENCH_PR10.json``
by default).  Thirteen workloads:

* ``fig5_sweep`` — a FIG5-style multi-replicate latency sweep (the
  ensemble engine's target shape: many replicates, one sweep), timed on
  all three engines plus the pre-fusion per-replicate ensemble path
  (per-replicate resolution, recorder-based measurement) as the
  baseline the fused default must beat,
* ``fused_sweep`` — the fused-resolution matrix on one ensemble sweep:
  unfused vs. fused replicate stacking crossed with the numpy vs.
  compiled inner-loop kernels (``engine_kernel``), plus the
  ``fuse="auto"`` crossover arm that skips fusion for the numpy kernel
  above the measured per-backend boundary, all bit-identical,
* ``sharded_fused`` — multicore fused resolution: the same ensemble
  sweep with the fused schedule blocks kept in-process
  (``ensemble_workers=1``) vs. sharded across a worker pool through
  shared-memory segments, bit-identical with the CPU allowance
  recorded so a single-core container's numbers read as sharding
  overhead, not a multicore verdict,
* ``sharedmem_dispatch`` — ``parallel_sweep`` with pickle vs.
  zero-copy shared-memory transport: wall-clock parity on interleaved
  rounds plus the deterministic per-chunk pipe payload (submit out,
  results back) each transport pickles — the dispatch overhead the
  segments remove — with a no-orphaned-segments check,
* ``thm4_cells`` — the nine heterogeneous THM4 ``(q, s, n)`` cells as
  one ensemble vs. per-cell batched/serial runs,
* ``single_run_100k`` — one long single-replicate run (the shape where
  the ensemble engine has the least to amortise),
* ``cor2_crash_sweep`` — a COR2-style halting-failure sweep (crash all
  but ``k`` of ``n`` early, several seeds per ``k``) on the segmented
  crash-aware ensemble vs. per-replicate batched runs,
* ``chain_assembly`` — exact-chain transition-matrix builds: the
  vectorized COO assembly vs. the per-state BFS enumeration,
* ``chaos_sweep`` — the fault-tolerant ``parallel_sweep`` path
  (ResilientExecutor + checkpoint) vs. a bare process pool at zero
  injected faults (the resilience tax, target < 5%), plus one run with
  injected worker kill/raise faults to price recovery,
* ``telemetry_overhead`` — a FIG5-style batched sweep with telemetry
  disabled (the default ``telemetry=None``) vs. a live
  ``MetricsRegistry`` attached (the telemetry tax; disabled must stay
  within 2% of the pre-telemetry baseline),
* ``store_compaction`` — the same sweep bare vs. JSONL-checkpointed
  vs. columnar-store-backed (the journaling tax), plus a synthetic
  many-record journal loaded back through both formats (the columnar
  resume-load payoff),
* ``memo_warm`` — exact chain solves cold vs. warm-started from the
  on-disk memo with in-process caches cleared; the warm pass must run
  zero solvers (checked via the memo compute counter) and return
  bit-identical values,
* ``zoo_uniformity`` — the contention zoo's latency vs.
  departure-from-uniform table (SCU counter, Michael-Scott queue,
  Treiber stack, randomized TAS-lock baseline under the epsilon and
  contention scheduler dials), with serial-vs-batched bit-identity
  checked on a contention-scheduler run.

Because the engines are bit-identical by construction (and the harness
re-checks this on every run), the speedups are pure wall-clock: same
numbers, less time.

Usage::

    python tools/bench_perf.py                  # full run -> BENCH_PR10.json
    python tools/bench_perf.py --quick          # CI-sized steps/repeats
    python tools/bench_perf.py --only zoo_uniformity --out perf.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.algorithms.counter import cas_counter, make_counter_memory  # noqa: E402
from repro.chains.counter import (  # noqa: E402
    counter_global_chain,
    counter_global_chain_enumerated,
)
from repro.chains.scu import (  # noqa: E402
    scu_system_chain,
    scu_system_chain_enumerated,
)
from repro.core.latency import (  # noqa: E402
    measure_latencies,
    resolve_vector_kernel,
)
from repro.core.scheduler import UniformStochasticScheduler  # noqa: E402
from repro.core.scu import SCU  # noqa: E402
from repro.core.sweep import latency_sweep  # noqa: E402
from repro.sim import EnsembleReplicate, EnsembleSimulator, Simulator  # noqa: E402


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _per_replicate_ensemble_points(n_values, steps, repeats, seed, confidence=0.95):
    """The pre-fusion ensemble path, reconstructed as a baseline.

    Per-replicate resolution (``fuse=False``, numpy inner loops) and
    recorder-based measurement — exactly what ``engine="ensemble"`` did
    before fused resolution and the vectorized measurement fast path.
    Returns the same :class:`SweepPoint` list as ``latency_sweep``.
    """
    from repro.core.latency import (
        LatencyMeasurement,
        completion_rate,
        individual_latencies,
        system_latency,
    )
    from repro.core.sweep import _collect_points

    burn_in = steps // 10
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                resolve_vector_kernel(cas_counter()),
                n,
                UniformStochasticScheduler(),
                make_counter_memory(),
                rng=(seed, n, r),
            )
            for n in n_values
            for r in range(repeats)
        ],
        fuse=False,
        engine_kernel="numpy",
    )
    results = {}
    keys = [(n, r) for n in n_values for r in range(repeats)]
    for key, outcome in zip(keys, ensemble.run(steps)):
        recorder = outcome.recorder()
        measurement = LatencyMeasurement(
            n_processes=outcome.n_processes,
            steps=outcome.steps_executed,
            burn_in=burn_in,
            total_completions=recorder.total_completions,
            system_latency=system_latency(recorder, burn_in=burn_in),
            individual=individual_latencies(recorder, burn_in=burn_in),
            completion_rate=completion_rate(recorder, outcome.steps_executed),
        )
        results[key] = (
            measurement.system_latency,
            measurement.completion_rate,
            measurement.fairness_ratio,
        )
    return _collect_points(n_values, repeats, results, confidence)


def bench_fig5_sweep(quick):
    """Multi-replicate latency sweep: the ensemble engine's home turf.

    ``ensemble`` is the default path (fused resolution, compiled inner
    loops when available); ``ensemble_per_replicate`` reconstructs the
    pre-fusion path as the baseline the fused default is priced against.
    """
    n_values = [4, 8] if quick else [4, 8, 16]
    steps = 10_000 if quick else 60_000
    repeats = 8 if quick else 32

    def sweep(engine):
        return lambda: latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=2,
            engine=engine,
        )

    engines = {}
    points = {}
    for engine in ("serial", "batched", "ensemble"):
        engines[engine], points[engine] = timed(sweep(engine))
    engines["ensemble_per_replicate"], points["ensemble_per_replicate"] = timed(
        lambda: _per_replicate_ensemble_points(n_values, steps, repeats, seed=2)
    )
    return {
        "workload": "fig5_sweep",
        "params": {"n_values": n_values, "steps": steps, "repeats": repeats},
        "seconds": engines,
        "speedup_ensemble_vs_batched": engines["batched"] / engines["ensemble"],
        "speedup_ensemble_vs_serial": engines["serial"] / engines["ensemble"],
        "speedup_fused_vs_per_replicate": (
            engines["ensemble_per_replicate"] / engines["ensemble"]
        ),
        "bit_identical": all(
            points[e] == points["batched"] for e in points
        ),
    }


def bench_fused_sweep(quick):
    """The fused-resolution matrix: replicate stacking x kernel backend.

    One ensemble-engine sweep timed under every combination of ``fuse``
    and ``engine_kernel`` that exists on this machine.  All arms share
    the vectorized measurement path, so the deltas isolate fusion and
    the compiled inner loops; ``fig5_sweep`` prices the full default
    against the original per-replicate path.  The ``auto_fuse_numpy``
    arm shows the ``fuse="auto"`` crossover: at this workload's step
    count the numpy kernel is faster unfused, so auto must match the
    unfused arm rather than pay ``fused_numpy``'s stacking tax.
    """
    from repro.sim.kernels import available_backends

    n_values = [2, 4, 8]
    steps = 5_000 if quick else 20_000
    repeats = 8 if quick else 48

    def sweep(fuse, engine_kernel):
        return lambda: latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=4,
            engine="ensemble",
            fuse=fuse,
            engine_kernel=engine_kernel,
        )

    arms = {
        "unfused_numpy": (False, "numpy"),
        "fused_numpy": (True, "numpy"),
    }
    compiled = [k for k in ("numba", "cc") if k in available_backends()]
    for backend in compiled:
        arms[f"unfused_{backend}"] = (False, backend)
        arms[f"fused_{backend}"] = (True, backend)
    arms["fused_auto"] = (True, "auto")
    arms["auto_fuse_numpy"] = ("auto", "numpy")

    seconds = {}
    points = {}
    for label, (fuse, engine_kernel) in arms.items():
        seconds[label], points[label] = timed(sweep(fuse, engine_kernel))
    return {
        "workload": "fused_sweep",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "compiled_backends": compiled,
        },
        "seconds": seconds,
        "speedup_fused_auto_vs_unfused_numpy": (
            seconds["unfused_numpy"] / seconds["fused_auto"]
        ),
        "speedup_auto_fuse_vs_fused_numpy": (
            seconds["fused_numpy"] / seconds["auto_fuse_numpy"]
        ),
        "bit_identical": all(
            p == points["unfused_numpy"] for p in points.values()
        ),
    }


def bench_sharded_fused(quick):
    """Multicore sharded fused resolution vs. the single-core fused path.

    The same ensemble-engine sweep with the fused schedule blocks
    resolved in-process (``ensemble_workers=1``) vs. sharded across a
    process pool through shared-memory segments (2 workers, plus the
    full CPU allowance when that is more).  Sharding must change
    wall-clock only — every pool arm is bit-identity-checked against
    the single-core points and /dev/shm must end clean — and the
    report records the CPU allowance: with one usable core the pool
    arms price pure sharding overhead, not a multicore speedup.
    """
    import glob

    from repro.core.runner import available_cpu_count
    from repro.core.shm import sharedmem_available

    if not sharedmem_available():  # pragma: no cover — non-POSIX
        return {
            "workload": "sharded_fused",
            "params": {"skipped": "no multiprocessing.shared_memory"},
            "seconds": {"workers_1": 1.0},
            "speedup_sharded_vs_single_core": 1.0,
            "orphaned_segments": 0,
            "bit_identical": True,
        }

    n_values = [4, 8]
    steps = 2_000 if quick else 3_500
    repeats = 16 if quick else 64
    cpus = available_cpu_count()

    def sweep(workers):
        return lambda: latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=9,
            engine="ensemble",
            fuse=True,
            ensemble_workers=workers,
        )

    worker_arms = [1, 2]
    if cpus > 2:
        worker_arms.append(cpus)

    seconds = {}
    points = {}
    for workers in worker_arms:
        label = f"workers_{workers}"
        seconds[label], points[label] = timed(sweep(workers))
    orphans = glob.glob("/dev/shm/repro-*")
    widest = max(worker_arms)
    return {
        "workload": "sharded_fused",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "worker_arms": worker_arms,
            "cpu_allowance": cpus,
        },
        "seconds": seconds,
        "speedup_sharded_vs_single_core": (
            seconds["workers_1"] / seconds[f"workers_{widest}"]
        ),
        "orphaned_segments": len(orphans),
        "bit_identical": (
            all(p == points["workers_1"] for p in points.values())
            and not orphans
        ),
    }


def bench_sharedmem_dispatch(quick):
    """Pickle vs. zero-copy shared-memory transport in parallel_sweep.

    Two measurements.  *Wall clock* interleaves repeated rounds of the
    same sweep under each transport and keeps per-mode minima, like the
    telemetry bench; on CPU-bound replicates the pool's pipe round-trip
    and scheduling dominate both modes equally, so the honest headline
    is parity — zero-copy costs nothing.  *Payload bytes* is the
    deterministic measurement of what the transport itself moves: the
    exact pickle stream one chunk sends through the pool pipe (submit
    args out, worker return back), mirrored byte-for-byte from the
    executor's ``pool.submit(worker_fn, keys, *args)`` call.  Pickle
    dispatch ships ``(n, replicate)`` tuples out and result triples
    back, so its payload grows with the chunk; shared-memory dispatch
    ships bare row indices both ways and the triples never cross the
    pipe.  Also asserts the no-orphaned-segments contract after the
    rounds.
    """
    import glob
    import os
    import pickle

    from repro.core.shm import sharedmem_available
    from repro.core.sweep import _chunk_worker, _shm_chunk_worker

    n_values = [2, 4]
    steps = 500 if quick else 2_000
    repeats = 16 if quick else 30
    max_workers = 2
    rounds = 2 if quick else 3
    task_list = [(n, r) for n in n_values for r in range(repeats)]
    # The executor's default chunking: about four chunks per worker.
    chunk = max(1, -(-len(task_list) // (max_workers * 4)))
    n_chunks = -(-len(task_list) // chunk)

    def sweep(dispatch):
        return lambda: parallel_sweep_for_bench(
            dispatch, n_values, steps, repeats, max_workers
        )

    def parallel_sweep_for_bench(dispatch, n_values, steps, repeats, max_workers):
        from repro.core.sweep import parallel_sweep

        return parallel_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=6,
            max_workers=max_workers,
            dispatch=dispatch,
        )

    if not sharedmem_available():  # pragma: no cover — non-POSIX
        return {
            "workload": "sharedmem_dispatch",
            "params": {"skipped": "no multiprocessing.shared_memory"},
            "seconds": {},
            "bit_identical": True,
        }

    # The per-chunk pipe payload, byte-for-byte.  Shared args (builders,
    # steps, seed, ...) mirror parallel_sweep's executor wiring; result
    # triples are synthetic but distinct floats, which pickle at the
    # same fixed width as real ones.
    shared_args = (cas_counter, make_counter_memory, None, steps, 6, True, None, None)
    pairs = task_list[:chunk]
    rows = list(range(chunk))
    task_name = f"repro-{'0' * 8}-{os.getpid()}-0-t"
    bytes_per_chunk = {
        "pickle": (
            len(pickle.dumps((_chunk_worker, pairs) + shared_args))
            + len(
                pickle.dumps(
                    [(1.0 + i, 0.9 - i * 1e-4, 0.8 + i * 1e-5) for i in range(chunk)]
                )
            )
        ),
        "sharedmem": (
            len(
                pickle.dumps(
                    (_shm_chunk_worker, rows, task_name, task_name[:-1] + "r", len(task_list))
                    + shared_args
                )
            )
            + len(pickle.dumps(rows))
        ),
    }

    pickle_times, shm_times = [], []
    points = {}
    for _ in range(rounds):
        seconds, points["pickle"] = timed(sweep("pickle"))
        pickle_times.append(seconds)
        seconds, points["sharedmem"] = timed(sweep("sharedmem"))
        shm_times.append(seconds)
    orphans = glob.glob("/dev/shm/repro-*")
    seconds = {"pickle": min(pickle_times), "sharedmem": min(shm_times)}
    return {
        "workload": "sharedmem_dispatch",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "max_workers": max_workers,
            "chunk_size": chunk,
            "rounds": rounds,
        },
        "seconds": seconds,
        "seconds_per_chunk": {
            mode: secs / n_chunks for mode, secs in seconds.items()
        },
        "bytes_per_chunk": bytes_per_chunk,
        "chunk_payload_reduction_fraction": (
            1.0 - bytes_per_chunk["sharedmem"] / bytes_per_chunk["pickle"]
        ),
        "wall_clock_delta_fraction": (
            1.0 - seconds["sharedmem"] / seconds["pickle"]
        ),
        "orphaned_segments": len(orphans),
        "bit_identical": (
            points["pickle"] == points["sharedmem"] and not orphans
        ),
    }


THM4_SWEEP = [
    (0, 1, 4),
    (0, 1, 16),
    (0, 1, 64),
    (2, 1, 16),
    (8, 1, 16),
    (0, 2, 16),
    (0, 4, 16),
    (4, 2, 16),
    (2, 2, 36),
]


def bench_thm4_cells(quick):
    """The nine heterogeneous THM4 cells as one ensemble."""
    steps = 20_000 if quick else 250_000
    specs = [SCU(q, s) for q, s, _ in THM4_SWEEP]

    def run_ensemble():
        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    resolve_vector_kernel(spec.factory()),
                    n,
                    UniformStochasticScheduler(),
                    spec.memory(),
                    rng=(q, s, n),
                )
                for spec, (q, s, n) in zip(specs, THM4_SWEEP)
            ]
        )
        return [
            m.system_latency for m in ensemble.run(steps).measurements()
        ]

    def run_batched():
        return [
            spec.measure(n, steps, rng=(q, s, n), batched=True).system_latency
            for spec, (q, s, n) in zip(specs, THM4_SWEEP)
        ]

    seconds = {}
    seconds["batched"], batched = timed(run_batched)
    seconds["ensemble"], ensemble = timed(run_ensemble)
    return {
        "workload": "thm4_cells",
        "params": {"cells": THM4_SWEEP, "steps": steps},
        "seconds": seconds,
        "speedup_ensemble_vs_batched": seconds["batched"] / seconds["ensemble"],
        "bit_identical": batched == ensemble,
    }


def bench_single_run(quick):
    """One long run: least amortisation, honest worst case."""
    steps = 20_000 if quick else 100_000
    n = 16

    def serial():
        return Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=make_counter_memory(),
            rng=7,
        ).run(steps)

    def batched():
        return measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=steps,
            memory=make_counter_memory(),
            rng=7,
            batched=True,
        )

    def ensemble():
        replicate = EnsembleReplicate(
            resolve_vector_kernel(cas_counter()),
            n,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=7,
        )
        return EnsembleSimulator([replicate]).run(steps).measurements()[0]

    seconds = {}
    seconds["serial"], _ = timed(serial)
    seconds["batched"], batched_m = timed(batched)
    seconds["ensemble"], ensemble_m = timed(ensemble)
    return {
        "workload": "single_run_100k",
        "params": {"n": n, "steps": steps},
        "seconds": seconds,
        "speedup_ensemble_vs_batched": seconds["batched"] / seconds["ensemble"],
        "speedup_ensemble_vs_serial": seconds["serial"] / seconds["ensemble"],
        "bit_identical": batched_m == ensemble_m,
    }


def bench_cor2_crash_sweep(quick):
    """COR2-style halting-failure sweep: crash all but k of n early."""
    n = 32
    k_values = [4, 8, 16, 32]
    steps = 20_000 if quick else 250_000
    crash_at = 500 if quick else 2_000
    repeats = 2 if quick else 4
    combos = [(k, r) for k in k_values for r in range(repeats)]

    def crash_map(k):
        return {pid: crash_at for pid in range(k, n)}

    def run_ensemble():
        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    resolve_vector_kernel(cas_counter()),
                    n,
                    UniformStochasticScheduler(),
                    make_counter_memory(),
                    rng=(k, r),
                    crash_times=crash_map(k),
                )
                for k, r in combos
            ]
        )
        result = ensemble.run(steps)
        return [
            m.system_latency
            for m in result.measurements(burn_in=crash_at * 10)
        ]

    def run_batched():
        return [
            measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                n_processes=n,
                steps=steps,
                burn_in=crash_at * 10,
                memory=make_counter_memory(),
                crash_times=crash_map(k),
                rng=(k, r),
                batched=True,
            ).system_latency
            for k, r in combos
        ]

    seconds = {}
    seconds["batched"], batched = timed(run_batched)
    seconds["ensemble"], ensemble = timed(run_ensemble)
    return {
        "workload": "cor2_crash_sweep",
        "params": {
            "n": n,
            "k_values": k_values,
            "steps": steps,
            "crash_at": crash_at,
            "repeats": repeats,
        },
        "seconds": seconds,
        "speedup_ensemble_vs_batched": seconds["batched"] / seconds["ensemble"],
        "bit_identical": batched == ensemble,
    }


def bench_chain_assembly(quick):
    """Exact-chain matrix assembly: vectorized COO vs. per-state BFS."""
    n_scu = 192 if quick else 512
    n_counter = 512 if quick else 2048

    seconds = {}
    seconds["scu_enumerated"], _ = timed(
        lambda: scu_system_chain_enumerated(n_scu)
    )
    seconds["scu_vectorized"], _ = timed(lambda: scu_system_chain(n_scu))
    seconds["counter_enumerated"], _ = timed(
        lambda: counter_global_chain_enumerated(n_counter)
    )
    seconds["counter_vectorized"], _ = timed(
        lambda: counter_global_chain(n_counter)
    )

    # Equality is checked at a small size so the check itself stays cheap:
    # exact state order for the counter chain, label-aligned for SCU.
    check_n = 24
    counter_fast = counter_global_chain(check_n)
    counter_ref = counter_global_chain_enumerated(check_n)
    counter_equal = counter_fast.states == counter_ref.states and np.array_equal(
        counter_fast.dense(), counter_ref.dense()
    )
    scu_fast = scu_system_chain(check_n)
    scu_ref = scu_system_chain_enumerated(check_n)
    permutation = [scu_fast.index_of(state) for state in scu_ref.states]
    scu_equal = sorted(scu_fast.states) == sorted(scu_ref.states) and np.array_equal(
        scu_fast.dense()[np.ix_(permutation, permutation)], scu_ref.dense()
    )

    return {
        "workload": "chain_assembly",
        "params": {"n_scu": n_scu, "n_counter": n_counter, "check_n": check_n},
        "seconds": seconds,
        "speedup_scu": seconds["scu_enumerated"] / seconds["scu_vectorized"],
        "speedup_counter": (
            seconds["counter_enumerated"] / seconds["counter_vectorized"]
        ),
        "bit_identical": counter_equal and scu_equal,
    }


def bench_chaos_sweep(quick):
    """The resilience tax: resilient parallel_sweep vs. a bare pool."""
    import functools
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.runner import RetryPolicy
    from repro.core.sweep import (
        _collect_points,
        _run_replicate_chunk,
        parallel_sweep,
    )
    from repro.testing.chaos import ChaosPlan, ChaosPool

    n_values = [4, 8]
    steps = 8_000 if quick else 40_000
    repeats = 4 if quick else 8
    max_workers = 2
    seed = 3

    def bare_pool_sweep():
        # The pre-resilience dispatch: one future per chunk, bare
        # future.result() — any failure aborts the sweep.
        tasks = [(n, r) for n in n_values for r in range(repeats)]
        chunk_size = max(1, -(-len(tasks) // (max_workers * 4)))
        chunks = [
            tasks[start : start + chunk_size]
            for start in range(0, len(tasks), chunk_size)
        ]
        results = {}
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    _run_replicate_chunk,
                    cas_counter,
                    make_counter_memory,
                    UniformStochasticScheduler,
                    chunk,
                    steps,
                    seed,
                    True,
                    None,
                    None,
                )
                for chunk in chunks
            ]
            for chunk, future in zip(chunks, futures):
                for key, triple in zip(chunk, future.result()):
                    results[key] = triple
        return _collect_points(n_values, repeats, results, 0.95)

    def resilient_sweep(pool_factory=None, retry=None):
        return parallel_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=seed,
            max_workers=max_workers,
            retry=retry,
            pool_factory=pool_factory,
        )

    seconds = {}
    seconds["bare_pool"], bare = timed(bare_pool_sweep)
    seconds["resilient"], resilient = timed(resilient_sweep)

    with tempfile.TemporaryDirectory() as state_dir:
        plan = ChaosPlan(
            state_dir=state_dir,
            faults={(4, 1): "kill", (8, 2): "raise"},
        )
        seconds["resilient_faulted"], faulted = timed(
            lambda: resilient_sweep(
                pool_factory=functools.partial(ChaosPool, plan=plan),
                retry=RetryPolicy(
                    max_retries=3, base_delay=0.05, max_delay=0.5
                ),
            )
        )

    overhead = seconds["resilient"] / seconds["bare_pool"] - 1.0
    return {
        "workload": "chaos_sweep",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "max_workers": max_workers,
            "injected_faults": {"(4, 1)": "kill", "(8, 2)": "raise"},
        },
        "seconds": seconds,
        "overhead_fraction_zero_faults": overhead,
        "recovery_seconds_over_bare": (
            seconds["resilient_faulted"] - seconds["bare_pool"]
        ),
        "bit_identical": bare == resilient == faulted,
    }


def bench_telemetry_overhead(quick):
    """The telemetry tax on a FIG5-style batched sweep.

    The zero-overhead contract says instrumentation must be invisible
    when disabled: every instrumented site guards on ``telemetry is not
    None and telemetry.enabled`` and all settling happens at run/point
    granularity, never per simulated step.  Timing the same seeded
    sweep with telemetry off (the default) and with a live registry
    prices both sides of that contract, and the bit-identity check
    confirms the instrumentation never touches the numbers.
    """
    from repro.core.telemetry import MetricsRegistry

    n_values = [4, 8] if quick else [4, 8, 16]
    steps = 10_000 if quick else 60_000
    repeats = 8 if quick else 32

    def sweep(telemetry):
        return lambda: latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=2,
            engine="batched",
            telemetry=telemetry,
        )

    # Interleave repeated timings and keep the per-mode minimum so a
    # one-off scheduling hiccup cannot masquerade as telemetry cost.
    rounds = 3
    disabled_times, enabled_times = [], []
    points = {}
    for _ in range(rounds):
        seconds, points["disabled"] = timed(sweep(None))
        disabled_times.append(seconds)
        seconds, points["enabled"] = timed(sweep(MetricsRegistry()))
        enabled_times.append(seconds)
    seconds = {
        "disabled": min(disabled_times),
        "enabled": min(enabled_times),
    }
    return {
        "workload": "telemetry_overhead",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "rounds": rounds,
        },
        "seconds": seconds,
        "overhead_fraction_enabled": (
            seconds["enabled"] / seconds["disabled"] - 1.0
        ),
        "bit_identical": points["disabled"] == points["enabled"],
    }


def bench_store_compaction(quick):
    """The columnar store's journaling tax and resume-load payoff.

    Two measurements: (1) the same seeded FIG5-style sweep run bare,
    against a JSONL checkpoint, and against a columnar store — the
    store's write-path overhead must stay comparable to the JSONL
    journal's; (2) a synthetic many-record journal loaded back through
    both formats — the columnar chunks are where million-replicate
    resume stops parsing a million JSON lines.
    """
    import tempfile

    from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint
    from repro.core.store import ColumnarSweepStore

    n_values = [4, 8]
    steps = 8_000 if quick else 40_000
    repeats = 4 if quick else 16
    journal_records = 20_000 if quick else 200_000

    def sweep(**log):
        return latency_sweep(
            cas_counter,
            make_counter_memory,
            n_values,
            steps=steps,
            repeats=repeats,
            seed=2,
            engine="batched",
            **log,
        )

    seconds = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        seconds["sweep_bare"], bare = timed(sweep)
        seconds["sweep_checkpoint"], checkpointed = timed(
            lambda: sweep(checkpoint=tmp / "cp.jsonl")
        )
        seconds["sweep_store"], stored = timed(
            lambda: sweep(store=tmp / "store")
        )

        # Synthetic load comparison at resume scale.
        fingerprint = sweep_fingerprint(
            seed=0,
            steps=steps,
            engine="batched",
            n_values=[64],
            repeats=journal_records,
            burn_in=None,
            crash_times=None,
        )
        with SweepCheckpoint.open(tmp / "big.jsonl", fingerprint) as cp:
            for r in range(journal_records):
                cp.record(64, r, (float(r), 0.5, 1.0))
        with ColumnarSweepStore.open(
            tmp / "big-store", fingerprint, fsync_every=4096
        ) as store:
            for r in range(journal_records):
                store.record(64, r, (float(r), 0.5, 1.0))
        seconds["load_jsonl"], from_jsonl = timed(
            lambda: SweepCheckpoint.load_completed(tmp / "big.jsonl")
        )
        seconds["load_store"], from_store = timed(
            lambda: ColumnarSweepStore.load_completed(tmp / "big-store")
        )

    return {
        "workload": "store_compaction",
        "params": {
            "n_values": n_values,
            "steps": steps,
            "repeats": repeats,
            "journal_records": journal_records,
        },
        "seconds": seconds,
        "overhead_fraction_store": (
            seconds["sweep_store"] / seconds["sweep_bare"] - 1.0
        ),
        "overhead_fraction_checkpoint": (
            seconds["sweep_checkpoint"] / seconds["sweep_bare"] - 1.0
        ),
        "speedup_load_store_vs_jsonl": (
            seconds["load_jsonl"] / seconds["load_store"]
        ),
        "bit_identical": (
            bare == checkpointed == stored and from_jsonl == from_store
        ),
    }


def bench_memo_warm(quick):
    """The disk memo's warm-start payoff on exact chain solves.

    A cold pass computes every exact solve and writes the memo; a warm
    pass (in-process caches cleared, same disk — a fresh process in
    miniature) must re-run *zero* solvers, verified via the memo's
    compute counter, and return bit-identical values.
    """
    import tempfile

    from repro.chains.scu import (
        clear_exact_chain_caches,
        scu_full_system_latency_exact,
        scu_success_probability,
        scu_system_latency_exact,
    )
    from repro.core.memo import (
        configure_memo,
        memo_counters,
        reset_memo_counters,
    )

    n_values = [8, 16, 32] if quick else [8, 16, 32, 64, 96]
    # Full cells stay small: the aggregated SCU(q, s) chain has
    # C(n + phases - 1, phases - 1) states, so (4, 2, n) explodes fast.
    full_cells = [(2, 1, 8), (0, 2, 8)] if quick else [
        (2, 1, 8),
        (0, 2, 8),
        (4, 2, 8),
    ]

    def solve_all():
        return (
            [scu_success_probability(n) for n in n_values]
            + [scu_system_latency_exact(n) for n in n_values]
            + [scu_full_system_latency_exact(n, q, s) for q, s, n in full_cells]
        )

    solvers = (
        scu_success_probability,
        scu_system_latency_exact,
        scu_full_system_latency_exact,
    )
    seconds = {}
    with tempfile.TemporaryDirectory() as memo_dir:
        configure_memo(memo_dir)
        try:
            clear_exact_chain_caches()
            reset_memo_counters()
            seconds["cold"], cold = timed(solve_all)
            cold_computes = memo_counters().get("computes", 0)

            # A fresh process has empty lru_caches but the same disk.
            for solver in solvers:
                solver.cache_clear()
            reset_memo_counters()
            seconds["warm"], warm = timed(solve_all)
            warm_computes = memo_counters().get("computes", 0)
        finally:
            configure_memo(None)
            clear_exact_chain_caches()
            reset_memo_counters()

    return {
        "workload": "memo_warm",
        "params": {"n_values": n_values, "full_cells": full_cells},
        "seconds": seconds,
        "cold_computes": cold_computes,
        "warm_computes": warm_computes,
        "speedup_warm_vs_cold": seconds["cold"] / seconds["warm"],
        "bit_identical": warm == cold and warm_computes == 0,
    }


def bench_zoo_uniformity(quick):
    """The contention zoo: latency vs. departure-from-uniform per workload.

    Runs the SCU counter, two non-SCU structures (Michael-Scott queue,
    Treiber stack) and the randomized TAS-lock fairness baseline under
    the uniform anchor plus the epsilon and contention departure dials,
    and embeds the full latency-vs-TV-distance table in the report (the
    deliverable figure's data).  Bit-identity here is the serial vs.
    batched engines agreeing on a contention-scheduler run — the
    observe_pending hook must not break the trace-equivalence contract.
    """
    from repro.algorithms.registry import get_workload
    from repro.core.scheduler import ContentionScheduler
    from repro.core.uniformity import (
        measure_departure_point,
        zoo_departure_table,
    )

    names = ["cas-counter", "msqueue", "treiber", "rtas-lock"]
    n = 8
    steps = 4_000 if quick else 40_000

    seconds = {}
    seconds["zoo_batched"], table = timed(
        lambda: zoo_departure_table(names, n_processes=n, steps=steps, seed=0)
    )

    def engine_check(batched):
        return lambda: [
            measure_departure_point(
                get_workload(name),
                lambda: ContentionScheduler(focus=4.0),
                label="contention(4)",
                n_processes=n,
                steps=steps,
                seed=0,
                batched=batched,
            )
            for name in names
        ]

    seconds["contention_serial"], serial_points = timed(engine_check(False))
    seconds["contention_batched"], batched_points = timed(engine_check(True))
    return {
        "workload": "zoo_uniformity",
        "params": {"workloads": names, "n": n, "steps": steps},
        "seconds": seconds,
        "table": table,
        "bit_identical": serial_points == batched_points,
    }


BENCHES = {
    "fig5_sweep": bench_fig5_sweep,
    "fused_sweep": bench_fused_sweep,
    "sharded_fused": bench_sharded_fused,
    "sharedmem_dispatch": bench_sharedmem_dispatch,
    "thm4_cells": bench_thm4_cells,
    "single_run_100k": bench_single_run,
    "cor2_crash_sweep": bench_cor2_crash_sweep,
    "chain_assembly": bench_chain_assembly,
    "chaos_sweep": bench_chaos_sweep,
    "telemetry_overhead": bench_telemetry_overhead,
    "store_compaction": bench_store_compaction,
    "memo_warm": bench_memo_warm,
    "zoo_uniformity": bench_zoo_uniformity,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized steps/repeats (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR10.json",
        help="output JSON path (default: BENCH_PR10.json at the repo root)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(BENCHES),
        default=None,
        metavar="WORKLOAD",
        help="run only this benchmark workload (repeatable; default all)",
    )
    args = parser.parse_args(argv)

    results = []
    benches = tuple(
        BENCHES[name]
        for name in (args.only if args.only else BENCHES)
    )
    for bench in benches:
        result = bench(args.quick)
        results.append(result)
        if "zoo_batched" in result["seconds"]:
            worst = max(
                (
                    point
                    for points in result["table"]["workloads"].values()
                    for point in points
                    if point["p99_latency"] != float("inf")
                ),
                key=lambda point: point["p99_latency"],
            )
            summary = (
                f"zoo {result['seconds']['zoo_batched']:8.3f}s"
                f"  worst p99 {worst['p99_latency']:8.1f}"
                f" @ TV {worst['tv_distance']:.3f}"
            )
        elif "unfused_numpy" in result["seconds"]:
            summary = (
                f"fused_auto {result['seconds']['fused_auto']:8.3f}s"
                f"  unfused_numpy {result['seconds']['unfused_numpy']:8.3f}s"
                f"  speedup "
                f"{result['speedup_fused_auto_vs_unfused_numpy']:5.2f}x"
            )
        elif "workers_1" in result["seconds"]:
            widest = max(
                int(key.rsplit("_", 1)[1]) for key in result["seconds"]
            )
            summary = (
                f"workers_1 {result['seconds']['workers_1']:8.3f}s"
                f"  workers_{widest}"
                f" {result['seconds'][f'workers_{widest}']:8.3f}s"
                f"  speedup"
                f" {result['speedup_sharded_vs_single_core']:5.2f}x"
                f"  cpus={result['params'].get('cpu_allowance', '?')}"
                f"  orphans={result['orphaned_segments']}"
            )
        elif "sharedmem" in result["seconds"]:
            summary = (
                f"sharedmem {result['seconds']['sharedmem']:8.3f}s"
                f"  pickle {result['seconds']['pickle']:8.3f}s"
                f"  per-chunk payload "
                f"{100 * result['chunk_payload_reduction_fraction']:+5.1f}%"
                f" smaller  orphans={result['orphaned_segments']}"
            )
        elif "sweep_store" in result["seconds"]:
            summary = (
                f"store {result['seconds']['sweep_store']:8.3f}s"
                f"  bare {result['seconds']['sweep_bare']:8.3f}s"
                f"  overhead {100 * result['overhead_fraction_store']:+5.1f}%"
                f"  load {result['speedup_load_store_vs_jsonl']:5.2f}x"
            )
        elif "cold" in result["seconds"]:
            summary = (
                f"cold {result['seconds']['cold']:8.3f}s"
                f"  warm {result['seconds']['warm']:8.3f}s"
                f"  speedup {result['speedup_warm_vs_cold']:5.2f}x"
                f"  warm_computes={result['warm_computes']}"
            )
        elif "disabled" in result["seconds"]:
            summary = (
                f"disabled {result['seconds']['disabled']:8.3f}s"
                f"  enabled {result['seconds']['enabled']:8.3f}s"
                f"  overhead {100 * result['overhead_fraction_enabled']:+5.1f}%"
            )
        elif "bare_pool" in result["seconds"]:
            summary = (
                f"resilient {result['seconds']['resilient']:8.3f}s"
                f"  bare {result['seconds']['bare_pool']:8.3f}s"
                f"  overhead {100 * result['overhead_fraction_zero_faults']:+5.1f}%"
                f"  faulted {result['seconds']['resilient_faulted']:8.3f}s"
            )
        elif "ensemble" in result["seconds"]:
            summary = (
                f"ensemble {result['seconds']['ensemble']:8.3f}s"
                f"  batched {result['seconds']['batched']:8.3f}s"
                f"  speedup {result['speedup_ensemble_vs_batched']:5.2f}x"
            )
            if "speedup_fused_vs_per_replicate" in result:
                summary += (
                    f"  fused-vs-per-replicate "
                    f"{result['speedup_fused_vs_per_replicate']:5.2f}x"
                )
        else:
            summary = (
                f"scu {result['speedup_scu']:5.2f}x"
                f"  counter {result['speedup_counter']:5.2f}x"
            )
        print(
            f"{result['workload']:<16} {summary}"
            f"  bit_identical={result['bit_identical']}"
        )
        if not result["bit_identical"]:
            raise SystemExit(
                f"engines disagree on workload {result['workload']!r}"
            )

    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
            "quick": args.quick,
        },
        "workloads": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
