"""Regenerate EXPERIMENTS.md from a benchmark log.

Usage:
    pytest benchmarks/ --benchmark-only -s 2>&1 | tee /tmp/bench.log
    python tools/generate_experiments.py /tmp/bench.log

Parses the ``== ID: title ==`` experiment blocks each benchmark prints,
pairs them with the per-experiment verdicts below, and writes
EXPERIMENTS.md in a stable order.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ORDER = [
    "FIG1", "FIG3", "FIG4", "FIG5",
    "THM3", "LEM2", "THM4", "THM5",
    "LIFT", "LEM7", "LEM8", "LEM11", "LEM12", "COR2",
    "ABL1", "ABL2", "ABL3", "ABL4",
    "EXT1", "EXT2",
]

VERDICTS = {
    "FIG1": "**Reproduces.** Both chains rebuilt exactly: 8 individual states, 5 system states, every transition probability 1/2, and the clustering verified as a lifting to machine precision.",
    "FIG3": "**Reproduces (with documented substitution).** The hardware-like synthetic scheduler (quantum runs + speed jitter, standing in for the paper's Xeon recordings) yields per-process step shares within a fraction of a percent of the ideal 6.25%, statistically indistinguishable from the uniform model in the long run.",
    "FIG4": "**Reproduces, with the same caveat the paper reports.** After a p1 step, the distribution over *other* processes is flat. Our quantum-based scheduler over-selects the same process locally, the mirror image of the paper's note that their timer-based recording method *under*-selects it; both agree the local structure washes out of the long-run aggregates.",
    "FIG5": "**Reproduces — the paper's headline figure.** The measured completion rate tracks the scaled 1/sqrt(n) prediction within ~7% over the whole sweep (fitted exponent ~ -0.47), matches the exact chain rate within 1%, and pulls away from the 1/n worst case at the predicted sqrt(n) pace.",
    "THM3": "**Reproduces.** Every stochastic scheduler (theta > 0) yields maximal progress — all 8 processes complete operations, worst observed completion time a few hundred steps vs the astronomically loose (1/theta)^T = n^(2n) bound. The theta = 0 adversary starves its victim, confirming the hypothesis is necessary.",
    "LEM2": "**Reproduces.** In every trial at every n, a single process monopolised all completions of Algorithm 1 — at or above the paper's 1 - 2e^{-n} lower bound. Boundedness in Theorem 3 cannot be dropped.",
    "THM4": "**Reproduces.** Simulated system latencies match the exact phase-chain values within Monte-Carlo noise, sit below the q + 4s*sqrt(n) bound at every sweep point, stay well below the Theta(q + sn) worst case at n >= 16, and the fairness ratio W_i/(nW) is 1.0 +- a few percent everywhere.",
    "THM5": "**Reproduces, asymptotically tight as claimed.** Exact W from the system chain across n = 4..512 fits W ~ 1.77 n^0.51; the constant W/sqrt(n) stabilises at ~1.81. Simulation agrees with the exact values at both spot-checked n.",
    "LIFT": "**Reproduces exactly.** All three liftings (Lemmas 5, 10, 13) verify with flow errors at the 1e-16 level, collapsing 2186 -> 35, 1024 -> 56 and 4095 -> 12 states respectively.",
    "LEM7": "**Reproduces exactly.** W_i = nW holds to 1e-9 on both chain families at every n computed, and within ~4% in simulation.",
    "LEM8": "**Reproduces.** Conditional mean phase lengths sit below min(2*4n/sqrt(a), 3*4n/b^(1/3)) at every forced start configuration; at stationarity the third range (a < n/10) is never visited in 20k phases and <1% of phases exceed the inflated high-probability bound.",
    "LEM11": "**Reproduces exactly.** W = q and W_i = nq to 1e-9 from the chains (the doubly-stochastic/uniform-stationary argument), and within 2%/5% in simulation.",
    "LEM12": "**Reproduces, and sharpens the remark.** Chain return time == Z(n-1) == Ramanujan Q(n) *exactly* (not just asymptotically); Q(n) <= 2 sqrt(n) at every n; the sqrt(pi n/2) expansion is within 2% by n = 16; simulation agrees within 2%.",
    "COR2": "**Reproduces.** After n - k crashes the post-transient latency equals the k-process exact value within ~5% at every (n, k), monotone in k.",
    "ABL1": "**Extension.** The latency prediction is robust to *how* the scheduler is fair: bursty quantum scheduling even slightly beats the uniform model (solo runs finish read+CAS uninterfered). Skew leaves the system latency almost unchanged but destroys per-process fairness — practical wait-freedom needs long-run fairness, not local uniformity.",
    "ABL2": "**Extension.** The Theta(sqrt(n)) shape holds for the single-hot-spot structures (Treiber stack ~ n^0.44, universal construction ~ n^0.47). Structures outside strict SCU behave differently: the Michael-Scott queue (two CAS targets) scales somewhat steeper in this workload, while the Harris ordered set — whose operations touch *disjoint* keys — is nearly flat in n, its cost dominated by traversal. The class boundary is visible in the data.",
    "ABL3": "**Extension (negative result for the §8 open question).** Back-off strictly increases system latency in the model at every n, and the sqrt(n) shape persists at every back-off level: within the paper's step-counting cost model, the contention factor is not avoidable by waiting.",
    "ABL4": "**Reproduces the motivating observation.** Under both the uniform and the hardware-like scheduler the stack's per-operation tail is light (p99 within an order of magnitude of the median, max a tiny fraction of the run); only the starvation adversary produces the unbounded worst case — \"the impact of long worst-case executions\" is indeed negligible under realistic scheduling.",
    "EXT1": "**Extension (the §8 open question, answered exactly for small n).** Solving the weighted individual chain without any lifting: system latency moves < 12% across a 10x skew while the slow process's individual latency blows up super-linearly (3.6x at half weight, 76x at a tenth). Simulation confirms the exact numbers within 5%.",
    "EXT2": "**Extension.** The exact phase-type pmf of the completion gap matches the simulated histogram within Monte-Carlo error at every k; the means recover the exact latencies to 1e-9, and both distributions have light tails (p99 within an order of magnitude of the mean) — quantifying the \"timely completion\" the paper's motivation describes.",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every figure and quantitative theorem in the paper, reproduced.  Each
section shows the raw output of the corresponding benchmark
(`pytest benchmarks/bench_<id>.py --benchmark-only -s`) followed by the
verdict.  Seeds are fixed; all numbers regenerate deterministically.
Regenerate this file with `tools/generate_experiments.py`.

The paper's evaluation artifacts are Figures 3-5 (Appendices A-B) and
Figure 1; since it is a theory paper, the quantitative theorems are
treated as experiments too.  DESIGN.md §4 maps each experiment id to the
modules and bench target; DESIGN.md §7 lists the textual corrections
discovered while reproducing (garbled §6.1.1 transitions, the
periodicity of the Lemma 3 / §6.2 chains, the exact Z(n-1) = Q(n)
identity).

Summary: **all paper claims reproduce** — shapes, crossovers and, where
the theory gives exact values, the numbers themselves.  The ablation and
extension experiments (ABL1-ABL4, EXT1-EXT2) probe the model's stated
open questions and its motivating observation.

Simulation-heavy benchmarks (THM4, THM5, FIG5, ABL1) run on the batched
execution engine (`Simulator.run_batched`), which is trace-equivalent to
the step-by-step executor — identical seeds give identical schedules and
numbers, enforced by `tests/sim/test_batched_equivalence.py` — at about
5x (n=16) to 8x (n=64) less wall-clock on 100k-step SCU workloads
(e.g. SCU(2,1), n=16: 0.60s -> 0.12s per run on the reference machine).

## Long-running sweeps: checkpoint, kill, resume

Replicates are seeded by `(seed, n, replicate)`, so a sweep can be
interrupted at any point and resumed without changing a single bit of
the result.  Pass `checkpoint=` to journal each completed point to an
append-only JSONL file, and `resume=True` to re-run only what is
missing:

```python
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.sweep import parallel_sweep

points = parallel_sweep(
    cas_counter, make_counter_memory, [8, 16, 32, 64],
    steps=200_000, repeats=32, seed=0,
    checkpoint="fig5.ckpt.jsonl",
)
```

Kill the process mid-run (Ctrl-C is caught by the CLI, which flushes
checkpoints and exits 130), then rerun the *same* call with
`resume=True`: completed replicates load from the journal, only the
missing ones execute, and the final table is bit-identical to an
uninterrupted run — the chaos suites in `tests/core/test_chaos_sweep.py`
enforce this across the serial, batched and ensemble engines.  A
checkpoint recorded under different sweep parameters (seed, steps,
engine, crash schedule, ...) is rejected with a loud mismatch error
naming the differing fields.  A hard kill (SIGKILL, power loss) can
tear the journal's final line mid-append; resume repairs the tail —
the torn fragment is dropped (or its lost newline restored) before
appending — so repeated crash/resume cycles never corrupt the journal.  The same journal works across entry
points: `repro figure5 --checkpoint fig5.jsonl --resume` on the CLI,
and a `latency_sweep` checkpoint warm-starts `parallel_sweep`.

Worker faults need no babysitting: `parallel_sweep` retries failed
chunks with capped exponential backoff, isolates a poison replicate by
name, rebuilds crashed pools, and falls back to in-process serial
execution if pools keep dying — at under 5% overhead when nothing goes
wrong (`tools/bench_perf.py`, `chaos_sweep` workload).

## Fast large-ensemble sweeps: fused kernels and zero-copy dispatch

The ensemble engine *fuses* same-shape replicates — same `(q, s)` and
resolver kind, across a point's replicate block and across the grid's
thread counts — into stacked schedules resolved in one vectorized
pass, and delegates its two sequential inner loops (the successor
chain walk and the heap-driven CAS scan) to pluggable kernels:
`numpy` (always available, the bit-identity oracle), `cc` (a small C
library compiled by the system compiler at first use), `numba`
(optional), and the opt-in `numba-parallel` (a prange over the stacked
replicates' chain walks and heap scans).  Both are on by default —
`fuse="auto"` skips fusion only where the stacked pass would lose to
per-replicate resolution (the numpy kernel above its measured
step-count crossover); `parallel_sweep` additionally
moves tasks and results through zero-copy shared-memory segments
instead of the pickle pipe:

```python
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.sweep import latency_sweep, parallel_sweep

# One process: fused resolution, fastest available kernel.
points = latency_sweep(
    cas_counter, make_counter_memory, [8, 16, 32, 64],
    steps=200_000, repeats=32, seed=0,
    engine="ensemble", fuse=True, engine_kernel="auto",
)

# Worker pool: zero-copy shared-memory dispatch.
points = parallel_sweep(
    cas_counter, make_counter_memory, [8, 16, 32, 64],
    steps=200_000, repeats=32, seed=0,
    dispatch="sharedmem",
)
```

Every combination is bit-identical — `fuse=`, `engine_kernel=` and
`dispatch=` trade wall clock only, which `tests/sim/test_ensemble_fused.py`,
`tests/sim/test_kernels.py` and the benchmark harness re-check on
every run.  Fused resolution is about 2.4x faster than the
per-replicate ensemble path on the FIG5 sweep (`tools/bench_perf.py`,
`fig5_sweep` and `fused_sweep` workloads); `engine_kernel="compiled"`
requires a compiled backend and warns once before falling back to
numpy.  Shared-memory dispatch ships bare row indices where pickle
dispatch ships task tuples out and result triples back — per-chunk
pipe payloads shrink by ~40% at default chunking (`sharedmem_dispatch`
workload) — and the parent unlinks both segments in a `finally`, so
worker kills, hangs and poison tasks leave zero orphaned `/dev/shm`
entries (chaos-enforced by `tests/core/test_shm_dispatch.py`).

## Saturating all cores: sharded fused resolution

Fused resolution itself goes multicore: `max_workers=` on
`EnsembleSimulator` (`ensemble_workers=` on `latency_sweep` and the
CLI's `--ensemble-workers`) shards the stacked schedule blocks across
a `ResilientExecutor` process pool through fingerprint-named
shared-memory segments — the parent writes each block's schedule once,
workers resolve in place and write outcome slabs back, and no array
payload ever crosses the pickle pipe:

```python
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.sweep import latency_sweep

# Every core: fused schedule blocks sharded across a process pool.
points = latency_sweep(
    cas_counter, make_counter_memory, [8, 16, 32, 64],
    steps=200_000, repeats=32, seed=0,
    engine="ensemble", ensemble_workers="auto",
)
```

`ensemble_workers="auto"` takes the available-CPU allowance
(`os.sched_getaffinity`) but defaults to 1 inside an existing pool
worker, so an ensemble nested under `parallel_sweep` cannot
oversubscribe the machine.  Outcomes reassemble in canonical replicate
order and are bit-identical to the single-core fused path at every
worker count, crash schedules included; worker kills, hangs and poison
blocks are absorbed by the same recovery ladder as `parallel_sweep`,
and the parent unlinks the segments in a `finally`, so chaos leaves
zero orphaned `/dev/shm` entries
(`tests/sim/test_ensemble_sharded.py`; `tools/bench_perf.py`,
`sharded_fused` workload — which also records the machine's CPU
allowance, so numbers from a single-core container read as sharding
overhead rather than a multicore verdict).

## Million-replicate sweeps: the columnar store and the disk memo

At millions of replicates the JSONL journal and in-memory aggregation
both stop scaling: resume would parse a million JSON lines and the
results dict would hold a million triples.  Swap `checkpoint=` for
`store=` and both problems disappear — results journal through a small
JSONL write-ahead tail that compacts into columnar npz chunks (one
float64 column per metric), sweep aggregation streams through Welford
accumulators (memory O(sweep points), not O(replicates)), and exact
chain solves reused across runs warm start from an on-disk memo:

```python
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.memo import configure_memo
from repro.core.sweep import parallel_sweep

configure_memo("~/.cache/repro-memo")   # or REPRO_MEMO_DIR=...
points = parallel_sweep(
    cas_counter, make_counter_memory, [8, 16, 32, 64],
    steps=200_000, repeats=1_000_000, seed=0,
    store="fig5.store",
)
```

Kill it, rerun with `resume=True`, and the result is bit-identical to
an uninterrupted run — and to the same sweep recorded through the JSONL
checkpoint (`tests/core/test_store.py` pins both identities).  The
store keeps every durability guarantee of the journal: the same
fingerprint header (mismatched parameters are rejected loudly), a
torn-tail repair on resume, atomic chunk writes, and last-wins
deduplication if a crash lands between a chunk write and the tail
truncate.  On the CLI it is `repro figure5 --store DIR --memo-dir DIR`.
A warm memo skips every exact-chain solve — `tools/bench_perf.py`'s
`memo_warm` workload verifies zero recomputes via the memo counters —
and a corrupt memo entry can cost time, never correctness: unreadable
entries read as misses and are recomputed and overwritten.

## Measuring scheduler uniformity

The paper's model rests on the scheduler being (close to) uniformly
random.  To measure how close a given run actually is, attach a
`SchedulerUniformityObserver` to a telemetry registry and pass it to
any sweep or simulator — it accumulates per-process step counts from
every run and reports the total-variation distance from the uniform
distribution plus a min/max fairness ratio, bucketed per thread count:

```python
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.sweep import latency_sweep
from repro.core.telemetry import (
    MetricsRegistry,
    SchedulerUniformityObserver,
    write_run_report,
)

telemetry = MetricsRegistry()
observer = SchedulerUniformityObserver().attach(telemetry)
latency_sweep(
    cas_counter, make_counter_memory, [4, 8, 16],
    steps=100_000, repeats=8, seed=0, engine="batched",
    telemetry=telemetry,
)
print(observer.total_variation_distance(n=16))  # ~0: uniform scheduling
print(observer.fairness_ratio(n=16))            # ~1: everyone gets a share
write_run_report("run_report.json", telemetry, observer=observer)
```

TV distance near 0 and fairness near 1 certify a FIG3-style fair run;
an adversarial scheduler that starves one of `n` processes shows up as
TV = 1/n and fairness 0 (`tests/core/test_telemetry.py` pins both
ends).  The same report — engine counters, checkpoint and executor
stats, per-point timings, uniformity — comes out of the CLI via
`repro figure5 --telemetry report.json`, and telemetry never changes
the numbers: all three engines are bit-identical with it on or off.

## Mapping the uniformity boundary

How far from uniform can the scheduler drift before the paper's latency
predictions stop holding — and does the answer depend on the data
structure?  The workload registry (`repro.algorithms.registry`) runs
the whole zoo — the SCU counter, Treiber stack, Michael-Scott queue,
Harris set, universal construction, obstruction pair, and three locks
including the Ben-David–Blelloch-style randomized test-and-set —
through the same `measure_latencies`/`latency_sweep` pipeline as the
counter, and `repro.core.uniformity` sweeps each one across a family of
schedulers at measured departures from uniform:

```console
$ repro zoo --workload cas-counter --workload rtas-lock \
    -n 8 --steps 20000 --epsilons 0,0.2,0.4,0.8 --focuses 4 --out zoo.json
```

Two dials move the departure.  `epsilon:E` mixes a point mass into the
uniform draw (`(1-E)/n` per process plus `E` on one pid) — TV distance
from uniform is exactly `E * (1 - 1/n)`, a clean controlled-degradation
axis.  `contention:F` is the contention adversary: an executor hook
(`observe_pending`) feeds it which processes currently target the same
register, and it reweights those by `F` — a scheduler that chases
contention instead of avoiding it.  Every point in the table pairs the
*measured* TV distance (via `SchedulerUniformityObserver`) with p50/p99
completion-gap latencies, system latency, and the fairness ratio.

The structure-dependence is the finding: on the single-hot-spot CAS
counter the contention adversary degenerates to uniform (every process
always contends on the one register, so the reweighting cancels) and
only the epsilon dial bites — p99 degrades smoothly as TV grows while
system latency *improves* (the favored process streams completions,
echoing EXT1's skew robustness).  On multi-register structures the
adversary finds real leverage: the randomized lock's p99 roughly
doubles under `contention:4` at near-zero TV distance — a scheduler can
hurt tails badly while looking almost uniform to the long-run counter.
The same grammar works everywhere: `repro latency --workload msqueue
--scheduler contention:4`, `repro figure5 --workload treiber` (the
workload name folds into the checkpoint fingerprint, so resume refuses
a journal recorded for a different structure), and sweep-service specs
accept `"workload": "msqueue", "scheduler": "epsilon:0.4"`.
`tools/bench_perf.py --only zoo_uniformity` regenerates the measured
table and re-checks serial/batched bit-identity under the contention
hook on every run.

## Running the sweep service

For long campaigns — overnight grids, shared machines, sweeps submitted
from scripts — run the sweeps through a daemon instead of a foreground
process.  `repro serve` hosts a durable job queue: every state change
(queued, leased, running, heartbeat, completed, failed, poisoned)
journals to an append-only ledger with the same torn-tail repair as the
checkpoints, so the daemon can be SIGKILLed at any instant and a
restart replays the ledger, detects orphaned leases (dead owner PID or
lapsed TTL), and resumes each interrupted job from its columnar store —
recomputing only the missing points:

```console
$ repro serve --root ~/sweeps --workers 4 &
$ python - <<'PY'
from repro.service import ServiceClient

client = ServiceClient.from_root("~/sweeps")
job = client.submit({
    "n_values": [8, 16, 32, 64],
    "steps": 200_000, "repeats": 32, "seed": 0,
})
print(client.wait(job["job_id"])["state"])    # completed
print(client.result(job["job_id"])["points"])
PY
$ kill -TERM %1    # graceful: drain, flush, release leases, exit 0
```

Jobs are content-addressed by their sweep fingerprint: resubmitting the
same spec returns the finished job (`service.dedupe_hits` counts it),
and an *overlapping* grid warm-starts every already-computed `(n, r)`
point from the shared disk memo, recomputing only the novel points —
the result is bit-identical to a direct `latency_sweep` either way.
Failed jobs retry with deterministic backoff and are quarantined as
`poisoned` after the retry budget; a full queue rejects loudly with a
structured `queue-full` payload (HTTP 429, `retriable: true`) instead
of buffering unboundedly.  The API is plain HTTP over TCP or a unix
socket (`--socket`): `/submit`, `/status`, `/result`, `/cancel`,
`/jobs`, `/healthz`, and `/metrics` serving the `service.*` telemetry
group.  SIGTERM anywhere in the CLI now matches Ctrl-C: checkpoints
flush and the exit code is 143 (the daemon itself drains and exits 0).
The chaos suite (`tests/service/test_service_recovery.py`) SIGKILLs a
real daemon between lease grant and first heartbeat and proves the
restart re-leases exactly once and converges to the uninterrupted
bytes.
"""


def extract_blocks(text: str) -> dict:
    lines = text.split("\n")
    blocks, current = [], None

    def is_end(line: str) -> bool:
        if re.match(r"^\.+(\s*\[\s*\d+%\])?\s*$", line):
            return True
        if re.match(r"^={10,}", line):
            return True
        if line.startswith("Name (time in"):
            return True
        if re.match(r"^-{5,} benchmark", line):
            return True
        return False

    for line in lines:
        if line.startswith("== ") and line.rstrip().endswith("=="):
            if current:
                blocks.append("\n".join(current).rstrip())
            current = [line]
        elif current is not None:
            if is_end(line):
                blocks.append("\n".join(current).rstrip())
                current = None
            else:
                current.append(line)
    if current:
        blocks.append("\n".join(current).rstrip())
    return {b.split(":", 1)[0].replace("== ", "").strip(): b for b in blocks}


def main(log_path: str, out_path: str = "EXPERIMENTS.md") -> int:
    by_id = extract_blocks(Path(log_path).read_text())
    missing = [bid for bid in ORDER if bid not in by_id]
    if missing:
        print(f"missing experiment blocks: {missing}", file=sys.stderr)
        return 1
    parts = [HEADER]
    for bid in ORDER:
        block = by_id[bid]
        title = block.split("\n", 1)[0].strip("= ").strip()
        parts.append(f"## {title}\n")
        parts.append(f"```text\n{block}\n```\n")
        parts.append(VERDICTS[bid] + "\n")
    Path(out_path).write_text("\n".join(parts))
    print(f"wrote {out_path} with {len(ORDER)} experiments")
    return 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        raise SystemExit(2)
    raise SystemExit(main(*sys.argv[1:]))
