"""Beyond the paper: exact latencies under NON-uniform stochastic
schedulers (the open question of Section 8).

For small n the full individual chain is tractable even without the
symmetry that the paper's lifting exploits.  We compute exact system and
per-process latencies of the scan-validate counter while one process's
scheduling weight shrinks, and cross-check one point against simulation.

Run:  python examples/skewed_scheduler_analysis.py
"""

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.formats import format_table
from repro.chains.weighted import scu_weighted_latencies
from repro.core.latency import measure_latencies
from repro.core.scheduler import SkewedStochasticScheduler

N = 4


def main() -> None:
    print(f"Scan-validate counter, n = {N}: one process's scheduling "
          "weight shrinks while the others stay at 1.\n")
    rows = []
    for slow_weight in (1.0, 0.75, 0.5, 0.25, 0.1):
        weights = [1.0] * (N - 1) + [slow_weight]
        w_system, individual = scu_weighted_latencies(weights)
        rows.append(
            (
                slow_weight,
                w_system,
                individual[0],
                individual[N - 1],
                individual[N - 1] / (individual[0] or 1),
            )
        )
    print(format_table(
        [
            "slow weight",
            "system W",
            "fast process W_i",
            "slow process W_i",
            "slow/fast ratio",
        ],
        rows,
        precision=2,
    ))

    weights = [1.0, 1.0, 1.0, 0.5]
    w_exact, individual_exact = scu_weighted_latencies(weights)
    m = measure_latencies(
        cas_counter(),
        SkewedStochasticScheduler(weights),
        n_processes=N,
        steps=400_000,
        memory=make_counter_memory(),
        rng=0,
    )
    print("\ncross-check at slow weight 0.5:")
    print(f"  exact:     system {w_exact:.3f}, slow process "
          f"{individual_exact[3]:.1f}")
    print(f"  simulated: system {m.system_latency:.3f}, slow process "
          f"{m.individual[3]:.1f}")

    print("\nTakeaways: the SYSTEM latency barely moves (the fast "
          "processes pick up the slack), but the slow process pays "
          "super-linearly — its rarer CAS attempts are also likelier to "
          "be invalidated.  Practical wait-freedom needs long-run "
          "fairness, exactly as the paper's model assumes.")


if __name__ == "__main__":
    main()
