"""The progress zoo: Section 2.2's taxonomy, measured.

Classifies six counters — wait-free, lock-free (two), obstruction-free,
and two lock-based — by running each under four schedule regimes: crash
injection, collision lockstep, the uniform stochastic scheduler, and
deterministic round-robin.

Run:  python examples/progress_zoo.py
"""

from repro.algorithms import locks, obstruction
from repro.algorithms.augmented_counter import (
    augmented_cas_counter,
    make_augmented_counter_memory,
)
from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.parallel import parallel_code
from repro.bench.formats import format_table
from repro.core.classify import classify_progress
from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read, Write


def holding_tas_lock(sim, pid):
    op = sim.processes[pid].pending
    if isinstance(op, CAS):
        return False
    if isinstance(op, Read):
        return op.register == locks.COUNTER
    if isinstance(op, Write):
        return op.register in (locks.COUNTER, locks.LOCK)
    return False


def holding_ticket_lock(sim, pid):
    op = sim.processes[pid].pending
    if isinstance(op, Read):
        return op.register == locks.COUNTER
    if isinstance(op, Write):
        return op.register in (locks.COUNTER, locks.NOW_SERVING)
    return False


ZOO = [
    ("parallel code (Alg. 4)", lambda: parallel_code(3), Memory, None),
    ("CAS counter (SCU(0,1))", cas_counter, make_counter_memory, None),
    (
        "augmented-CAS counter (§7)",
        augmented_cas_counter,
        make_augmented_counter_memory,
        None,
    ),
    (
        "collision-abort counter",
        obstruction.obstruction_free_counter,
        obstruction.make_obstruction_memory,
        None,
    ),
    (
        "TAS-lock counter",
        locks.tas_lock_counter,
        locks.make_tas_memory,
        holding_tas_lock,
    ),
    (
        "ticket-lock counter",
        locks.ticket_lock_counter,
        locks.make_ticket_memory,
        holding_ticket_lock,
    ),
]


def main() -> None:
    print("Classifying six counters by behaviour under four schedule "
          "regimes (30k steps each)...\n")
    rows = []
    for name, factory_builder, memory_builder, crash_when in ZOO:
        c = classify_progress(
            factory_builder,
            memory_builder,
            steps=30_000,
            crash_when=crash_when,
        )
        rows.append(
            (
                name,
                "yes" if c.tolerates_crash else "NO",
                "yes" if c.progresses_under_collisions else "NO",
                "yes" if c.all_progress_under_uniform else "NO",
                "yes" if c.all_progress_under_round_robin else "NO",
                c.label,
            )
        )
    print(format_table(
        [
            "algorithm",
            "crash ok",
            "collisions ok",
            "uniform: all",
            "round-robin: all",
            "classified as",
        ],
        rows,
    ))
    print(
        "\nTakeaway: under the uniform stochastic scheduler the entire "
        "non-blocking column behaves wait-free (everyone progresses) — "
        "the paper's thesis.  The distinctions only reappear under "
        "adversarial or crashing schedules."
    )


if __name__ == "__main__":
    main()
