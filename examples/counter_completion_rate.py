"""Reproduce Figure 5: completion rate of a lock-free counter vs the
Theta(1/sqrt(n)) model prediction vs the 1/n worst case.

Prints the three series (plus the exact chain answer the paper could
not compute for its hardware) and a small ASCII chart.

Run:  python examples/counter_completion_rate.py
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.formats import format_table
from repro.chains.scu import scu_system_latency_exact
from repro.core.analysis import (
    completion_rate_prediction,
    worst_case_completion_rate,
)
from repro.core.latency import measure_latencies
from repro.core.scheduler import UniformStochasticScheduler

THREADS = [2, 4, 8, 12, 16, 24, 32]
STEPS = 100_000


def main() -> None:
    print("Measuring the CAS counter's completion rate "
          f"({STEPS} steps per point)...\n")
    measured = []
    for n in THREADS:
        m = measure_latencies(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=n,
            steps=STEPS,
            memory=make_counter_memory(),
            rng=n,
        )
        measured.append(m.completion_rate)
    measured = np.array(measured)
    predicted = completion_rate_prediction(THREADS, measured_first=measured[0])
    worst = worst_case_completion_rate(THREADS)
    exact = np.array([1 / scu_system_latency_exact(n) for n in THREADS])

    rows = list(zip(THREADS, measured, predicted, exact, worst))
    print(format_table(
        ["threads", "measured", "scaled 1/sqrt(n)", "exact chain", "worst 1/n"],
        rows,
        precision=4,
    ))

    print("\ncompletion rate (ops/step), log-ish ASCII view:")
    scale = 60 / measured.max()
    for i, n in enumerate(THREADS):
        bar = "#" * max(1, int(measured[i] * scale))
        marker = "*" * max(1, int(worst[i] * scale))
        print(f"n={n:3d} |{bar}  (worst case: {marker})")

    print("\nTakeaway: the measured rate tracks the model's 1/sqrt(n) "
          "curve and sits far above the adversarial 1/n floor — the gap "
          "grows like sqrt(n).")


if __name__ == "__main__":
    main()
