"""Quickstart: is your lock-free algorithm practically wait-free?

Measures the classic lock-free fetch-and-increment counter (the
``SCU(0, 1)`` pattern) under the paper's uniform stochastic scheduler
and compares three numbers:

* the simulated system/individual latency,
* the exact answer from the paper's Markov system chain,
* the paper's closed-form O(q + s sqrt(n)) bound and the adversarial
  worst case Theta(q + s n).

Run:  python examples/quickstart.py [n_processes]
"""

import sys

from repro import SCU, UniformStochasticScheduler
from repro.bench.formats import format_table
from repro.chains.scu import scu_system_latency_exact


def main(n: int = 16) -> None:
    spec = SCU(q=0, s=1)  # read R; CAS(R, v, v'); retry on failure
    print(f"Simulating {n} processes running the lock-free counter "
          f"(SCU(q={spec.q}, s={spec.s})) under the uniform stochastic "
          "scheduler...\n")

    measured = spec.measure(n, steps=300_000, rng=0)
    exact = scu_system_latency_exact(n)

    rows = [
        ("system latency (steps/completion)", measured.system_latency,
         exact, spec.predicted_system_latency(n)),
        ("individual latency", measured.max_individual_latency,
         n * exact, spec.predicted_individual_latency(n)),
    ]
    print(format_table(
        ["metric", "simulated", "exact chain", "paper bound (alpha=4)"], rows
    ))

    print(f"\nworst-case (adversarial) system latency: "
          f"{spec.worst_case_system_latency(n):.0f} steps")
    print(f"completion rate: {measured.completion_rate:.4f} ops/step "
          f"(worst case {1.0 / (2 * n):.4f})")
    print(f"fairness W_i/(n W): {measured.fairness_ratio:.3f}  "
          "(1.0 = the paper's Lemma 7, every process equally served)")
    print("\nTakeaway: under a fair randomized scheduler the lock-free "
          "counter completes an operation every ~1.9*sqrt(n) steps and no "
          "process starves — it behaves wait-free in practice.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
