"""Reproduce the paper's Appendix A scheduler statistics (Figures 3-4).

The paper records real schedules on a 16-hardware-thread machine and
observes (i) long-run fairness and (ii) local near-uniformity.  We use
the hardware-like synthetic scheduler — quantum runs, speed jitter — and
show the same two statistics, next to the uniform stochastic model.

Run:  python examples/scheduler_fairness.py
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.bench.formats import format_table
from repro.core.scheduler import HardwareLikeScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.stats.compare import chi_square_uniformity, empirical_threshold

N = 16
STEPS = 200_000


def record(scheduler, seed):
    sim = Simulator(
        cas_counter(),
        scheduler,
        n_processes=N,
        memory=make_counter_memory(),
        record_schedule=True,
        rng=seed,
    )
    sim.run(STEPS)
    return sim.recorder.schedule


def main() -> None:
    hardware = record(HardwareLikeScheduler(), seed=0)
    uniform = record(UniformStochasticScheduler(), seed=1)

    print("Figure 3 — percentage of steps taken by each process "
          f"({STEPS} steps, {N} threads):\n")
    rows = [
        (pid, 100 * hardware.step_shares()[pid], 100 * uniform.step_shares()[pid])
        for pid in range(N)
    ]
    print(format_table(
        ["process", "hardware-like %", "uniform model %"], rows, precision=2
    ))
    print(f"\nideal share: {100 / N:.2f}%")

    print("\nFigure 4 — who steps right after p1 steps:\n")
    hw_succ = hardware.successor_shares(1)
    un_succ = uniform.successor_shares(1)
    rows = [(pid, 100 * hw_succ[pid], 100 * un_succ[pid]) for pid in range(N)]
    print(format_table(
        ["next process", "hardware-like %", "uniform model %"], rows, precision=2
    ))

    _, p_hw = chi_square_uniformity(
        np.bincount(hardware.as_array(), minlength=N)
    )
    print(f"\nchi-square uniformity p-value (hardware-like shares): {p_hw:.3f}")
    print(f"empirical weak-fairness threshold theta-hat: "
          f"{empirical_threshold(hardware.as_array(), N):.4f} "
          f"(uniform model: {1 / N:.4f})")
    print("\nTakeaway: over long executions the bursty, jittery scheduler "
          "is statistically indistinguishable from the uniform stochastic "
          "model in the aggregates the analysis relies on.")


if __name__ == "__main__":
    main()
