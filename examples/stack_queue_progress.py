"""Practical wait-freedom of real data structures: Treiber stack and
Michael-Scott queue under a fair scheduler vs a starvation adversary.

Shows the paper's headline phenomenon on the data structures its
introduction motivates: under the stochastic scheduler every thread
completes operations at the same rate; under an adversary the victim
starves even though the structure is lock-free.

Run:  python examples/stack_queue_progress.py
"""

from repro.algorithms.msqueue import (
    MSQueueWorkload,
    make_queue_memory,
    ms_queue_workload,
)
from repro.algorithms.treiber import (
    TreiberWorkload,
    make_stack_memory,
    treiber_workload,
)
from repro.bench.formats import format_table
from repro.core.progress import progress_report
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator

N = 8
STEPS = 60_000


def run(name, factory, memory, scheduler, seed=0):
    sim = Simulator(
        factory,
        scheduler,
        n_processes=N,
        memory=memory,
        record_history=True,
        rng=seed,
    )
    result = sim.run(STEPS)
    report = progress_report(
        result.history, result.steps_executed, starvation_window=STEPS // 2
    )
    completions = [result.completions_of(pid) for pid in range(N)]
    return name, completions, report


def main() -> None:
    runs = [
        run(
            "stack / uniform",
            treiber_workload(TreiberWorkload(seed=1)),
            make_stack_memory(),
            UniformStochasticScheduler(),
        ),
        run(
            "stack / starve p0",
            treiber_workload(TreiberWorkload(seed=1)),
            make_stack_memory(),
            AdversarialScheduler.starve(0),
        ),
        run(
            "queue / uniform",
            ms_queue_workload(MSQueueWorkload(seed=1)),
            make_queue_memory(),
            UniformStochasticScheduler(),
        ),
        run(
            "queue / starve p0",
            ms_queue_workload(MSQueueWorkload(seed=1)),
            make_queue_memory(),
            AdversarialScheduler.starve(0),
        ),
    ]

    rows = []
    for name, completions, report in runs:
        rows.append(
            (
                name,
                sum(completions),
                min(completions),
                max(completions),
                "yes" if report.made_maximal_progress else "NO",
                ",".join(str(p) for p in sorted(report.starved)) or "-",
            )
        )
    print(format_table(
        [
            "run",
            "total ops",
            "min ops/proc",
            "max ops/proc",
            "everyone progressed",
            "starved pids",
        ],
        rows,
        precision=0,
    ))
    print(
        "\nTakeaway: the same lock-free code is wait-free in practice "
        "under the stochastic scheduler and starves a victim under an "
        "adversary — progress is a property of the algorithm *and* the "
        "scheduler."
    )


if __name__ == "__main__":
    main()
