"""Build your own practically-wait-free object, end to end.

Takes a plain sequential object (a bank of accounts with transfers),
lifts it to a lock-free concurrent object with the universal
construction (Section 5's "every sequential object has a lock-free
implementation in this class"), then:

1. checks safety — the recorded history is linearizable,
2. checks practical wait-freedom — everyone completes at the same rate,
3. compares the measured latency with the paper's SCU(0, 1) prediction.

Run:  python examples/custom_object.py
"""

from repro.algorithms.universal import UniversalObject, universal_workload
from repro.bench.formats import format_table
from repro.chains.scu import scu_system_latency_exact
from repro.core.latency import individual_latencies, system_latency
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.verify.linearize import check_history
from repro.verify.specs import SequentialSpec

N_ACCOUNTS = 4
N_PROCESSES = 6


def apply_bank(state, operation):
    """Sequential semantics: state is a tuple of balances."""
    kind = operation[0]
    if kind == "deposit":
        _, account, amount = operation
        new = list(state)
        new[account] += amount
        return tuple(new), new[account]
    if kind == "transfer":
        _, src, dst, amount = operation
        if state[src] < amount:
            return state, "insufficient"
        new = list(state)
        new[src] -= amount
        new[dst] += amount
        return tuple(new), "ok"
    if kind == "balance":
        _, account = operation
        return state, state[account]
    raise ValueError(f"unknown operation {operation!r}")


class BankSpec(SequentialSpec):
    """The same semantics as a linearizability spec."""

    def initial_state(self):
        return (100,) * N_ACCOUNTS

    def apply(self, state, method, argument):
        return apply_bank(state, argument)


def operation_for(pid: int, k: int):
    kind = k % 3
    if kind == 0:
        return ("deposit", (pid + k) % N_ACCOUNTS, 10)
    if kind == 1:
        return ("transfer", pid % N_ACCOUNTS, (pid + 1) % N_ACCOUNTS, 5)
    return ("balance", pid % N_ACCOUNTS)


def main() -> None:
    bank = UniversalObject(apply_bank, (100,) * N_ACCOUNTS)
    print(f"Running {N_PROCESSES} processes against a lock-free bank "
          "(universal construction)...\n")

    sim = Simulator(
        universal_workload(bank, operation_for, calls=20),
        UniformStochasticScheduler(),
        n_processes=N_PROCESSES,
        memory=bank.make_memory(),
        record_history=True,
        rng=0,
    )
    result = sim.run(50_000)
    state = bank.current_state(result.memory)
    print(f"final balances: {state} (total {sum(state)}, conserved up to "
          "deposits)")

    check = check_history(result.history, BankSpec())
    print(f"linearizable: {check.is_linearizable} "
          f"({check.nodes_explored} search nodes)")

    # The scripted workload is short (20 calls per process), so measure
    # over the whole run rather than discarding a burn-in.
    w = system_latency(result.recorder)
    lats = individual_latencies(result.recorder)
    rows = [
        ("system latency", w, scu_system_latency_exact(N_PROCESSES)),
        ("mean individual latency", sum(lats.values()) / len(lats),
         N_PROCESSES * scu_system_latency_exact(N_PROCESSES)),
    ]
    print()
    print(format_table(
        ["metric", "measured", "SCU(0,1) exact prediction"], rows
    ))
    print("\nTakeaway: any sequential object dropped into the universal "
          "construction inherits the paper's guarantees — linearizable, "
          "and practically wait-free under stochastic scheduling.")


if __name__ == "__main__":
    main()
