"""Theorem 3 vs Lemma 2, side by side.

Theorem 3: a *bounded* lock-free algorithm under any stochastic
scheduler is wait-free with probability 1.  Lemma 2: drop boundedness
and the conclusion fails — Algorithm 1's first CAS winner monopolises
the object forever (w.p. >= 1 - 2e^{-n}) under the very same scheduler.

Run:  python examples/min_to_max_progress.py
"""

import numpy as np

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.unbounded import make_unbounded_memory, unbounded_lockfree
from repro.bench.formats import format_table
from repro.core.analysis import (
    min_to_max_progress_bound,
    unbounded_winner_monopoly_probability,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.sim.executor import Simulator

N = 8
STEPS = 60_000


def completions_vector(factory, memory, seed):
    sim = Simulator(
        factory,
        UniformStochasticScheduler(),
        n_processes=N,
        memory=memory,
        rng=seed,
    )
    result = sim.run(STEPS)
    return [result.completions_of(pid) for pid in range(N)]


def main() -> None:
    bounded = completions_vector(cas_counter(), make_counter_memory(), seed=0)
    unbounded = completions_vector(
        unbounded_lockfree(N), make_unbounded_memory(), seed=0
    )

    rows = [
        (pid, bounded[pid], unbounded[pid]) for pid in range(N)
    ]
    print(f"Completions per process over {STEPS} steps, uniform scheduler:\n")
    print(format_table(
        ["process", "bounded CAS counter", "unbounded Algorithm 1"],
        rows,
        precision=0,
    ))

    print(f"\nTheorem 3's (loose) expected completion bound for the counter:"
          f" (1/theta)^T = {min_to_max_progress_bound(1 / N, 2 * N):.2e} steps")
    print(f"Section 6's refined bound: O(sqrt(n)) system steps — observed "
          f"rate {sum(bounded) / STEPS:.3f} ops/step")
    print(f"\nLemma 2's monopoly probability for n={N}: >= "
          f"{unbounded_winner_monopoly_probability(N):.5f}")
    winners = [pid for pid, c in enumerate(unbounded) if c > 0]
    print(f"observed: process(es) {winners} took every completion; the "
          f"other {N - len(winners)} processes starved.")
    print("\nTakeaway: stochastic scheduling upgrades minimal progress to "
          "maximal progress — but only for algorithms whose minimal "
          "progress is *bounded*.")


if __name__ == "__main__":
    main()
