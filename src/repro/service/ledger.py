"""The crash-safe job ledger: an append-only journal of job events.

The sweep service's durable state is this one JSONL file.  Every
transition of the job state machine

    ``queued -> leased -> running -> completed | failed | poisoned``

(plus ``cancelled``, heartbeats, and re-queues after a lease expires) is
appended as one fsynced JSON record, so the daemon can be SIGKILLed at
any instant and a restart *replays* the ledger to recover exactly which
jobs were queued, which were mid-flight under a now-dead worker, and
which already finished.  Nothing is ever rewritten in place: recovery
is a fold over events, the same trick as the sweep checkpoint one layer
down — and the same torn-tail repair (:func:`repair_jsonl_tail`)
handles a crash mid-append.

The file opens under the advisory single-writer lock
(:func:`~repro.core.checkpoint.acquire_writer_lock`), so two daemons
pointed at the same root fail loudly instead of interleaving events.

Replay is exposed two ways: :meth:`JobLedger.replay` folds the journal
into ``{job_id: JobRecord}``, and :meth:`JobLedger.recover` additionally
re-queues jobs whose lease holder is dead or expired — the restart path
in one call.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.checkpoint import (
    CheckpointError,
    acquire_writer_lock,
    repair_jsonl_tail,
)
from .leases import owner_alive

#: Bumped whenever the ledger record layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Terminal states — a job here never transitions again.
TERMINAL_STATES = frozenset({"completed", "failed", "poisoned", "cancelled"})

#: Every state the replay fold can produce.
JOB_STATES = frozenset(
    {"queued", "leased", "running"} | TERMINAL_STATES
)

#: Event kind -> state it drives the job into (``None`` = no change).
_EVENT_STATE = {
    "submitted": "queued",
    "leased": "leased",
    "running": "running",
    "heartbeat": None,
    "requeued": "queued",
    "completed": "completed",
    "failed": "failed",
    "poisoned": "poisoned",
    "cancelled": "cancelled",
}


@dataclass
class JobRecord:
    """One job's replayed state: the fold of its ledger events."""

    job_id: str
    spec: Dict[str, Any]
    state: str = "queued"
    attempt: int = 0
    owner: Optional[str] = None
    lease_expires: Optional[float] = None
    submitted_at: float = 0.0
    updated_at: float = 0.0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    heartbeats: int = 0
    lease_count: int = 0
    history: List[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe snapshot for the status API."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "attempt": self.attempt,
            "owner": self.owner,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "error": self.error,
            "result": self.result,
            "heartbeats": self.heartbeats,
            "lease_count": self.lease_count,
            "spec": dict(self.spec),
        }


def _invalid(path: Path, line_no: int, why: str) -> CheckpointError:
    return CheckpointError(
        f"ledger {path} line {line_no} is structurally invalid ({why})"
    )


class JobLedger:
    """Append-only, schema-versioned journal of job events.

    Appends are thread-safe (the daemon's workers all write through one
    ledger) and fsynced per event — job transitions are rare next to
    sweep points, so durability per event is cheap.  The journal is held
    open for append under the single-writer lock for the lifetime of
    the instance; :meth:`close` releases both.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        clock: Callable[[], float] = time.time,
        telemetry=None,
    ):
        self.path = Path(path)
        self._clock = clock
        self.telemetry = telemetry
        self._mutex = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = acquire_writer_lock(self.path)
        try:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            if not fresh:
                repair_jsonl_tail(self.path)
                self._validate_header()
            self._handle = self.path.open("a", encoding="utf-8")
            if fresh:
                self._append_raw(
                    {"kind": "header", "schema": LEDGER_SCHEMA_VERSION}
                )
        except BaseException:
            if self._lock is not None:
                self._lock.release()
            raise

    # -- journal plumbing ---------------------------------------------------

    def _validate_header(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except ValueError:
            raise _invalid(self.path, 1, "unparseable header")
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise _invalid(self.path, 1, "missing header record")
        if header.get("schema") != LEDGER_SCHEMA_VERSION:
            raise CheckpointError(
                f"ledger {self.path} has schema "
                f"{header.get('schema')!r}, this build reads "
                f"{LEDGER_SCHEMA_VERSION}"
            )

    def _append_raw(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, event: str, job_id: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record (thread-safe, fsynced)."""
        if event not in _EVENT_STATE:
            raise ValueError(f"unknown ledger event {event!r}")
        record = {
            "kind": "event",
            "event": event,
            "job": str(job_id),
            "t": float(self._clock()),
        }
        record.update(fields)
        with self._mutex:
            if self._handle is None:
                raise CheckpointError(f"ledger {self.path} is closed")
            self._append_raw(record)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc(f"service.ledger_{event}")
        return record

    def close(self) -> None:
        """Release the journal handle and the writer lock (idempotent)."""
        with self._mutex:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
            if self._lock is not None:
                self._lock.release()
                self._lock = None

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay -------------------------------------------------------------

    @classmethod
    def read_events(cls, path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Read a ledger's events without opening it for append.

        Takes no lock and repairs nothing — the observer side, used by
        tests and tooling to inspect a (possibly live) daemon's ledger.
        A torn final line is skipped, exactly as replay-after-repair
        would drop it.
        """
        path = Path(path)
        out: List[Dict[str, Any]] = []
        raw = path.read_bytes()
        complete = raw[: raw.rfind(b"\n") + 1] if not raw.endswith(b"\n") else raw
        for line in complete.decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if isinstance(record, dict) and record.get("kind") == "event":
                out.append(record)
        return out

    def events(self) -> List[Dict[str, Any]]:
        """Every event record in append order (validated)."""
        out: List[Dict[str, Any]] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn final line is repaired on open; mid-file
                    # garbage is real corruption and must be loud.
                    raise _invalid(self.path, line_no, "unparseable JSON")
                if not isinstance(record, dict):
                    raise _invalid(self.path, line_no, "expected an object")
                kind = record.get("kind")
                if kind == "header":
                    continue
                if kind != "event":
                    raise _invalid(
                        self.path, line_no, f"unknown kind {kind!r}"
                    )
                event = record.get("event")
                if event not in _EVENT_STATE:
                    raise _invalid(
                        self.path, line_no, f"unknown event {event!r}"
                    )
                if not isinstance(record.get("job"), str):
                    raise _invalid(self.path, line_no, "missing job id")
                out.append(record)
        return out

    def replay(self) -> Dict[str, JobRecord]:
        """Fold the journal into the current state of every job."""
        jobs: Dict[str, JobRecord] = {}
        for record in self.events():
            event = record["event"]
            job_id = record["job"]
            at = float(record.get("t", 0.0))
            if event == "submitted":
                spec = record.get("spec")
                if not isinstance(spec, dict):
                    raise CheckpointError(
                        f"ledger {self.path}: submitted event for "
                        f"{job_id} carries no spec"
                    )
                # Re-submission of a known job id is a no-op on replay
                # (the daemon answers dedupe hits without new events,
                # but an old ledger may hold both).
                if job_id not in jobs:
                    jobs[job_id] = JobRecord(
                        job_id=job_id,
                        spec=spec,
                        submitted_at=at,
                        updated_at=at,
                    )
                    jobs[job_id].history.append("submitted")
                continue
            job = jobs.get(job_id)
            if job is None:
                raise CheckpointError(
                    f"ledger {self.path}: event {event!r} for unknown "
                    f"job {job_id}"
                )
            job.updated_at = at
            if event == "heartbeat":
                job.heartbeats += 1
                expires = record.get("expires")
                if expires is not None:
                    job.lease_expires = float(expires)
                continue
            job.history.append(event)
            new_state = _EVENT_STATE[event]
            if new_state is not None:
                job.state = new_state
            if event == "leased":
                job.owner = str(record.get("owner", ""))
                job.attempt = int(record.get("attempt", job.attempt + 1))
                job.lease_count += 1
                expires = record.get("expires")
                job.lease_expires = (
                    float(expires) if expires is not None else None
                )
            elif event == "requeued":
                job.owner = None
                job.lease_expires = None
            elif event in ("failed", "poisoned"):
                job.owner = None
                job.lease_expires = None
                error = record.get("error")
                if error is not None:
                    job.error = str(error)
            elif event == "completed":
                job.owner = None
                job.lease_expires = None
                result = record.get("result")
                if isinstance(result, dict):
                    job.result = result
            elif event == "cancelled":
                job.owner = None
                job.lease_expires = None
        return jobs

    def recover(self, *, max_attempts: int) -> Dict[str, JobRecord]:
        """Replay, then re-queue every orphaned in-flight job.

        A job left ``leased``/``running`` belongs to a worker of the
        previous daemon incarnation.  If its owner process is dead (the
        common case after a crash — owners encode their PID) or its
        lease TTL has lapsed, the job is re-queued with a ``requeued``
        event; a job already past ``max_attempts`` grants is poisoned
        instead of looping forever.  Live-owner leases inside their TTL
        are left alone (another daemon may legitimately share the
        ledger's jobs' workers — though not the ledger file itself).
        """
        jobs = self.replay()
        now = self._clock()
        for job in jobs.values():
            if job.state not in ("leased", "running"):
                continue
            owner = job.owner or ""
            expired = (
                job.lease_expires is not None and now >= job.lease_expires
            )
            if not expired and owner and owner_alive(owner):
                continue
            reason = "owner-dead" if not owner_alive(owner) else "expired"
            if job.attempt >= max_attempts:
                self.append(
                    "poisoned",
                    job.job_id,
                    error=(
                        f"lease {reason} after {job.attempt} attempts; "
                        "quarantined"
                    ),
                )
                job.state = "poisoned"
                job.error = f"lease {reason} after {job.attempt} attempts"
            else:
                self.append("requeued", job.job_id, reason=reason)
                job.state = "queued"
            job.owner = None
            job.lease_expires = None
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.inc("service.recovered_jobs")
        return jobs
