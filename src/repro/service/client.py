"""A small stdlib client for the sweep daemon's HTTP API.

:class:`ServiceClient` speaks to a ``repro serve`` daemon over TCP or
its unix socket and converts the wire back into Python:
``submit``/``status``/``result``/``cancel``/``jobs``/``metrics``
mirror the endpoints one-to-one, and :meth:`ServiceClient.wait` polls a
job to a terminal state.  A 429 rejection surfaces as
:class:`AdmissionRejected` carrying the daemon's structured payload
(limit, depth, retriable) — callers decide whether to back off and
retry, the client never retries silently.

:meth:`ServiceClient.from_root` reads the daemon's ``endpoint.json``
(written by ``repro serve`` next to the ledger), so tests and scripts
need only the service root to find the live endpoint.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .ledger import TERMINAL_STATES


class ServiceClientError(RuntimeError):
    """An API call failed; ``status`` and ``payload`` say how."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class AdmissionRejected(ServiceClientError):
    """The daemon's bounded queue shed this submission (HTTP 429)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` over an ``AF_UNIX`` stream socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """One daemon endpoint; a fresh connection per call (no state)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[Union[str, Path]] = None,
        timeout: float = 30.0,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("pass exactly one of port= or socket_path=")
        self.host = host
        self.port = port
        self.socket_path = str(socket_path) if socket_path else None
        self.timeout = timeout

    @classmethod
    def from_root(
        cls, root: Union[str, Path], *, timeout: float = 30.0
    ) -> "ServiceClient":
        """Connect to the daemon serving ``root`` via its endpoint file."""
        endpoint_path = Path(root) / "endpoint.json"
        try:
            endpoint = json.loads(endpoint_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ServiceClientError(
                0,
                {
                    "error": (
                        f"no daemon endpoint at {endpoint_path}; is "
                        "'repro serve' running against this root?"
                    )
                },
            )
        if endpoint.get("socket"):
            return cls(socket_path=endpoint["socket"], timeout=timeout)
        return cls(
            host=endpoint.get("host", "127.0.0.1"),
            port=int(endpoint["port"]),
            timeout=timeout,
        )

    # -- wire ---------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        connection = self._connection()
        try:
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if response.status == 429:
                raise AdmissionRejected(response.status, payload)
            if response.status >= 400:
                raise ServiceClientError(response.status, payload)
            return payload
        finally:
            connection.close()

    # -- API ----------------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/submit", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/status?job={job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/result?job={job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/cancel?job={job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceClientError, OSError):
            return False

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)
