"""The durable sweep job service: queue, leases, dedupe, admission.

The PODC'14 measurement stack as a *service*: jobs are sweep specs,
their ids are content hashes, every state transition is journaled
crash-safely, workers hold TTL leases renewed by heartbeats, and
results served by the daemon are bit-identical to calling
:func:`repro.core.sweep.latency_sweep` directly.  See
:mod:`repro.service.daemon` for the architecture overview.
"""

from .client import AdmissionRejected, ServiceClient, ServiceClientError
from .daemon import (
    AdmissionError,
    ServiceError,
    SweepService,
    UnknownJobError,
    job_digest,
    run_sweep_job,
    validate_spec,
)
from .api import make_server
from .ledger import JOB_STATES, TERMINAL_STATES, JobLedger, JobRecord
from .leases import (
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseTable,
    make_owner,
    owner_alive,
    owner_pid,
)

__all__ = [
    "AdmissionError",
    "AdmissionRejected",
    "DEFAULT_LEASE_TTL",
    "JOB_STATES",
    "JobLedger",
    "JobRecord",
    "Lease",
    "LeaseTable",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "SweepService",
    "TERMINAL_STATES",
    "UnknownJobError",
    "job_digest",
    "make_owner",
    "make_server",
    "owner_alive",
    "owner_pid",
    "run_sweep_job",
    "validate_spec",
]
