"""The sweep job daemon: durable queue, leases, dedupe, admission.

:class:`SweepService` is the long-running core behind ``repro serve``.
Jobs are sweep specs (workload + grid + seed); the service gives each a
content-addressed id (the SHA-256 of its canonical JSON), journals every
transition in a crash-safe :class:`~repro.service.ledger.JobLedger`,
runs them on a small pool of worker threads under TTL leases renewed by
heartbeats, and serves results that are **bit-identical to a direct
``latency_sweep`` call** — the whole stack below (checkpoint, store,
engines) guarantees replicates are pure functions of
``(seed, n, replicate)``, so resume, retry, dedupe and recovery can
shuffle *when* work happens but never *what* it produces.

Deduplication happens at two grains:

* **job-level** — re-submitting a spec whose job already completed (or
  is in flight) returns the existing job, zero new work
  (``service.dedupe_hits``);
* **point-level** — every finished ``(n, replicate)`` triple is written
  through to a :class:`~repro.core.memo.DiskMemo` keyed by the full
  point identity, so a *new* job whose grid overlaps an old one warm
  starts from the memo and recomputes only genuinely novel points
  (``service.memo_warm_points`` / ``service.recomputed_points``).

Failure handling is the `ResilientExecutor` ladder one level up: a
failed job retries with the same capped, deterministically-jittered
backoff (:class:`~repro.core.runner.RetryPolicy`), and a job that
exhausts its attempts is *poisoned* — quarantined in a terminal state
rather than allowed to wedge the queue.  A worker or daemon killed
mid-job simply stops heartbeating; on restart,
:meth:`JobLedger.recover` re-queues its jobs and the store/checkpoint
resume machinery skips every point that already landed.

Admission control is a bounded queue: past ``max_queue`` waiting jobs,
:meth:`SweepService.submit` raises :class:`AdmissionError` with a
structured payload (limit, depth, retriable) — load is shed loudly at
the door instead of degrading everyone inside.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.checkpoint import crash_config_hash, sweep_fingerprint
from ..core.memo import _MISS, DiskMemo
from ..core.runner import RetryPolicy
from ..core.store import ColumnarSweepStore
from .ledger import JobLedger, JobRecord, TERMINAL_STATES
from .leases import DEFAULT_LEASE_TTL, LeaseTable, make_owner

#: Environment hook for the lease-recovery chaos test: a float number of
#: seconds each worker pauses *between* appending the ``leased`` event
#: and the ``running``/first-heartbeat pair — the window the test
#: SIGKILLs the daemon in.  Unset (the default) costs nothing.
CHAOS_LEASE_PAUSE_ENV = "REPRO_SERVICE_CHAOS_LEASE_PAUSE"

#: Memo namespace for per-point write-through entries.
POINT_MEMO_NAME = "service-point"

_ENGINES = ("serial", "batched", "ensemble")


def _normalize_scheduler(name: Any) -> str:
    """Validate and canonicalize a spec's scheduler name.

    Accepts ``uniform``, ``hardware``, ``contention[:FOCUS]`` and
    ``epsilon:EPS``; parameterized names normalize their float (so
    ``epsilon:0.40`` and ``epsilon:.4`` digest to the same job id).
    """
    if name in ("uniform", "hardware"):
        return name
    if isinstance(name, str):
        if name == "contention":
            return "contention:4"
        head, sep, tail = name.partition(":")
        if sep and head in ("contention", "epsilon"):
            try:
                value = float(tail)
            except ValueError:
                raise ValueError(
                    f"scheduler {name!r} has a non-numeric parameter"
                ) from None
            if head == "contention" and value < 1.0:
                raise ValueError(f"contention focus must be >= 1, got {value}")
            if head == "epsilon" and not 0.0 <= value <= 1.0:
                raise ValueError(f"epsilon must lie in [0, 1], got {value}")
            return f"{head}:{value:g}"
    raise ValueError(
        f"unknown scheduler {name!r}; expected 'uniform', 'hardware', "
        "'contention[:FOCUS]' or 'epsilon:EPS'"
    )


class ServiceError(RuntimeError):
    """Base class for service-level failures."""


class AdmissionError(ServiceError):
    """The bounded queue is full; the job was rejected at the door.

    ``payload`` is the structured rejection the API returns verbatim:
    the client is told exactly why, what the limit is, and that the
    request is safe to retry later.
    """

    def __init__(self, payload: Dict[str, Any]):
        super().__init__(payload.get("message", "queue full"))
        self.payload = payload


class UnknownJobError(ServiceError, KeyError):
    """No job with that id exists in the ledger."""


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancel flag is set."""


def validate_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a submitted job spec, raising ``ValueError`` loudly.

    Returns the canonical spec dict (sorted keys, defaults filled in)
    that the job id digests — two submissions meaning the same sweep
    normalize identically, however they were spelled.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"job spec must be an object, got {type(spec).__name__}")
    from ..algorithms.registry import workload_names

    workload = spec.get("workload", "cas-counter")
    if workload != "scu" and workload not in workload_names():
        raise ValueError(
            f"unknown workload {workload!r}; expected 'scu' or one of "
            f"{list(workload_names())}"
        )
    out: Dict[str, Any] = {"workload": workload}
    if workload == "scu":
        for fld in ("q", "s"):
            value = spec.get(fld)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"scu workload requires non-negative integer {fld!r}, "
                    f"got {value!r}"
                )
            out[fld] = value
    n_values = spec.get("n_values")
    if (
        not isinstance(n_values, (list, tuple))
        or not n_values
        or any(
            isinstance(n, bool) or not isinstance(n, int) or n < 1
            for n in n_values
        )
    ):
        raise ValueError(
            f"n_values must be a non-empty list of positive integers, "
            f"got {n_values!r}"
        )
    out["n_values"] = [int(n) for n in n_values]

    def _int(name: str, default: int, minimum: int) -> int:
        value = spec.get(name, default)
        if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
            raise ValueError(
                f"{name} must be an integer >= {minimum}, got {value!r}"
            )
        return value

    out["steps"] = _int("steps", 10_000, 1)
    out["repeats"] = _int("repeats", 5, 2)
    out["seed"] = _int("seed", 0, 0)
    burn_in = spec.get("burn_in")
    if burn_in is not None and (
        isinstance(burn_in, bool)
        or not isinstance(burn_in, int)
        or not 0 <= burn_in < out["steps"]
    ):
        raise ValueError(
            f"burn_in must be None or an integer in [0, steps), got {burn_in!r}"
        )
    out["burn_in"] = burn_in
    engine = spec.get("engine", "batched")
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    out["engine"] = engine
    out["scheduler"] = _normalize_scheduler(spec.get("scheduler", "uniform"))
    if out["engine"] == "ensemble":
        # The ensemble engine resolves the CAS counter's vector kernel
        # and draws whole schedules upfront — neither generic registry
        # workloads nor per-step contention state fit that shape.
        if workload not in ("scu", "cas-counter"):
            raise ValueError(
                f"engine 'ensemble' only supports the 'scu' and "
                f"'cas-counter' workloads, not {workload!r}"
            )
        if out["scheduler"].startswith("contention"):
            raise ValueError(
                "engine 'ensemble' cannot honour the contention "
                "scheduler's per-step state; use 'serial' or 'batched'"
            )
    crash = spec.get("crash")
    if crash is not None:
        if not isinstance(crash, dict):
            raise ValueError(
                f"crash must be a {{pid: time}} object, got {crash!r}"
            )
        normalized = {}
        for pid, at in crash.items():
            try:
                pid_n = int(pid)
            except (TypeError, ValueError):
                raise ValueError(f"crash pid {pid!r} is not an integer")
            if isinstance(at, bool) or not isinstance(at, (int, float)) or at < 0:
                raise ValueError(f"crash time {at!r} must be a number >= 0")
            normalized[str(pid_n)] = float(at)
        crash = normalized
    out["crash"] = crash
    unknown = set(spec) - set(out)
    if unknown:
        raise ValueError(f"unknown spec fields: {sorted(unknown)}")
    return out


def job_digest(spec: Dict[str, Any]) -> str:
    """The content-addressed job id of a *normalized* spec."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def build_workload(spec: Dict[str, Any]) -> Tuple[Callable, Callable]:
    """``(factory_builder, memory_builder)`` for a normalized spec."""
    if spec["workload"] == "scu":
        from ..core.scu import SCU

        member = SCU(spec["q"], spec["s"])
        return (lambda: member.factory()), (lambda: member.memory())
    from ..algorithms.registry import get_workload

    workload = get_workload(spec["workload"])
    return workload.factory_builder, workload.memory_builder


def build_scheduler(name: str) -> Callable:
    from ..core.scheduler import (
        ContentionScheduler,
        EpsilonUniformScheduler,
        HardwareLikeScheduler,
        UniformStochasticScheduler,
    )

    if name == "uniform":
        return UniformStochasticScheduler
    if name == "hardware":
        return HardwareLikeScheduler
    head, _, tail = name.partition(":")
    if head == "contention":
        focus = float(tail)
        return lambda: ContentionScheduler(focus=focus)
    if head == "epsilon":
        eps = float(tail)
        return lambda: EpsilonUniformScheduler(eps)
    raise ValueError(f"unknown scheduler {name!r}")


def _crash_times(spec: Dict[str, Any]) -> Optional[Dict[int, float]]:
    crash = spec.get("crash")
    if crash is None:
        return None
    return {int(pid): float(at) for pid, at in crash.items()}


def spec_fingerprint(spec: Dict[str, Any]) -> Dict[str, Any]:
    """The sweep fingerprint this spec's store/checkpoint carries."""
    if spec["workload"] == "scu":
        workload = f"scu({spec['q']},{spec['s']})"
    elif spec["workload"] == "cas-counter":
        workload = None  # the historical default, kept fingerprint-stable
    else:
        workload = spec["workload"]
    return sweep_fingerprint(
        seed=spec["seed"],
        steps=spec["steps"],
        engine=spec["engine"],
        n_values=spec["n_values"],
        repeats=spec["repeats"],
        burn_in=spec["burn_in"],
        crash_times=_crash_times(spec),
        workload=workload,
    )


def point_memo_args(spec: Dict[str, Any], n: int, r: int) -> Tuple:
    """The full identity of one ``(n, replicate)`` point for the memo.

    Everything that can change the triple's bits participates: the
    workload (and its parameters), scheduler, engine family, steps,
    burn-in, the resolved crash hash, the seed, and the point itself.
    Engines are bit-identical to each other, but the engine string
    still participates because it participates in the store fingerprint
    — conservative beats clever for a cache key.
    """
    crash_hash = crash_config_hash(_crash_times(spec), spec["n_values"])
    return (
        spec["workload"],
        spec.get("q", -1),
        spec.get("s", -1),
        spec["scheduler"],
        spec["engine"],
        spec["steps"],
        -1 if spec["burn_in"] is None else spec["burn_in"],
        crash_hash,
        spec["seed"],
        int(n),
        int(r),
    )


def _estimate_dict(est) -> Dict[str, Any]:
    return {
        "mean": est.mean,
        "half_width": est.half_width,
        "confidence": est.confidence,
        "n_samples": est.n_samples,
    }


def run_sweep_job(
    spec: Dict[str, Any],
    store_dir: Union[str, Path],
    *,
    memo: Optional[DiskMemo] = None,
    on_point: Optional[Callable[[int, int], None]] = None,
    telemetry=None,
) -> Dict[str, Any]:
    """Execute one job spec against its store; returns the result dict.

    This is the service's default ``job_runner``.  The sequence is:
    warm-start the store from the point memo (every overlapping point
    some earlier job computed lands without running a single step),
    run :func:`latency_sweep` with ``resume=True`` so only missing
    points execute, then write every triple through to the memo for the
    next overlapping job.  The result carries the per-point estimate
    table *and* the raw replicate triples — the bit-identity contract
    is stated in bytes, so the bytes are in the payload.
    """
    from ..core.sweep import latency_sweep

    store_dir = Path(store_dir)
    fingerprint = spec_fingerprint(spec)
    telemetry_on = telemetry is not None and telemetry.enabled
    keys = [
        (n, r)
        for n in spec["n_values"]
        for r in range(spec["repeats"])
    ]

    # Warm start: pull every already-known point out of the memo into
    # the store before the sweep opens it.
    warm = 0
    resume = store_dir.exists()
    store = ColumnarSweepStore.open(
        store_dir, fingerprint, resume=resume, telemetry=telemetry
    )
    try:
        if memo is not None:
            for n, r in keys:
                if (n, r) in store.completed:
                    continue
                stored = memo.get(POINT_MEMO_NAME, point_memo_args(spec, n, r))
                if stored is _MISS or not isinstance(stored, list):
                    continue
                store.record(n, r, tuple(stored))
                warm += 1
        missing = store.missing(spec["n_values"], spec["repeats"])
        already = set(keys) - set(missing)
    finally:
        store.close()
    if telemetry_on and warm:
        telemetry.inc("service.memo_warm_points", warm)

    factory_builder, memory_builder = build_workload(spec)

    def progress(done: int, total: int, key: Tuple[int, int]) -> None:
        if on_point is not None:
            on_point(done, total)

    points = latency_sweep(
        factory_builder,
        memory_builder,
        spec["n_values"],
        steps=spec["steps"],
        repeats=spec["repeats"],
        scheduler_builder=build_scheduler(spec["scheduler"]),
        seed=spec["seed"],
        engine=spec["engine"],
        burn_in=spec["burn_in"],
        crash_times=_crash_times(spec),
        store=store_dir,
        resume=True,
        on_progress=progress,
        telemetry=telemetry,
        # Must match spec_fingerprint: the sweep re-opens the store and
        # validates its fingerprint, workload key included.
        workload=fingerprint["workload"],
    )
    if telemetry_on and missing:
        telemetry.inc("service.recomputed_points", len(missing))

    # Read the final triples back and write them through to the memo.
    store = ColumnarSweepStore.open(
        store_dir, fingerprint, resume=True, telemetry=telemetry
    )
    try:
        completed = dict(store.completed)
    finally:
        store.close()
    if memo is not None:
        for (n, r), triple in completed.items():
            if (n, r) in already:
                continue
            memo.put(POINT_MEMO_NAME, point_memo_args(spec, n, r), list(triple))
    triples = [
        [n, r, [float(v) for v in completed[(n, r)]]]
        for (n, r) in sorted(completed)
    ]
    return {
        "points": [
            {
                "n": point.n,
                "system_latency": _estimate_dict(point.system_latency),
                "completion_rate": _estimate_dict(point.completion_rate),
                "fairness_ratio": _estimate_dict(point.fairness_ratio),
            }
            for point in points
        ],
        "triples": triples,
        "recomputed": len(missing),
        "warm_points": warm,
        "store": str(store_dir),
    }


class SweepService:
    """The daemon core: ledger + leases + worker pool + dedupe.

    ``job_runner`` is injectable for tests (signature of
    :func:`run_sweep_job` minus ``memo``); ``clock`` likewise.  All
    public methods are thread-safe — the HTTP layer calls straight in.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        workers: int = 2,
        max_queue: int = 16,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        telemetry=None,
        clock: Callable[[], float] = time.time,
        job_runner: Optional[Callable] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_interval = (
            self.lease_ttl / 3.0
            if heartbeat_interval is None
            else float(heartbeat_interval)
        )
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=2, base_delay=0.05, max_delay=1.0
        )
        self.telemetry = telemetry
        self._clock = clock
        self._job_runner = job_runner
        self.ledger = JobLedger(
            self.root / "ledger.jsonl", clock=clock, telemetry=telemetry
        )
        self.memo = DiskMemo(self.root / "memo", telemetry=telemetry)
        self.leases = LeaseTable(clock=clock)
        self._mutex = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._cancelled: set = set()
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SweepService":
        """Replay + recover the ledger, then start the worker pool."""
        with self._mutex:
            if self._started:
                return self
            self._records = self.ledger.recover(
                max_attempts=self.retry_policy.max_retries + 1
            )
            for job in self._records.values():
                if job.state == "queued":
                    self._queue.put(job.job_id)
            self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}",),
                name=f"sweep-service-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._note_gauges()
        return self

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` let running jobs finish first.

        Without ``drain``, running jobs are cancelled via their
        heartbeat hook (the next point boundary re-queues them — their
        completed points are already durable in the store, so nothing
        is lost).  Either way every lease is released and the ledger
        closed cleanly.
        """
        self._stopping.set()
        if not drain:
            with self._mutex:
                self._cancelled.update(
                    job_id
                    for job_id, job in self._records.items()
                    if job.state in ("leased", "running")
                )
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._mutex:
            # Anything still leased after the join (a worker that
            # out-waited the timeout) goes back to the queue durably.
            for job_id, job in self._records.items():
                if job.state in ("leased", "running"):
                    self.ledger.append("requeued", job_id, reason="shutdown")
                    job.state = "queued"
                    job.owner = None
                self.leases.release(job_id)
            self.ledger.close()
        self._threads = []

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- public API ---------------------------------------------------------

    def submit(self, raw_spec: Dict[str, Any]) -> Dict[str, Any]:
        """Admit (or dedupe) a job; returns its status snapshot.

        The snapshot carries ``dedupe: true`` when an existing job
        satisfied the submission without queueing new work.
        """
        spec = validate_spec(raw_spec)
        job_id = job_digest(spec)
        telemetry_on = self.telemetry is not None and self.telemetry.enabled
        with self._mutex:
            existing = self._records.get(job_id)
            if existing is not None:
                if existing.state == "poisoned":
                    snapshot = existing.to_dict()
                    snapshot["dedupe"] = True
                    return snapshot
                if existing.state in ("failed", "cancelled"):
                    # A terminal-but-retriable job: re-queue it.
                    self._cancelled.discard(job_id)
                    self.ledger.append("requeued", job_id, reason="resubmit")
                    existing.state = "queued"
                    existing.error = None
                    self._queue.put(job_id)
                    snapshot = existing.to_dict()
                    snapshot["dedupe"] = True
                    self._note_gauges()
                    return snapshot
                if telemetry_on:
                    self.telemetry.inc("service.dedupe_hits")
                snapshot = existing.to_dict()
                snapshot["dedupe"] = True
                return snapshot
            depth = sum(
                1 for job in self._records.values() if job.state == "queued"
            )
            if depth >= self.max_queue:
                if telemetry_on:
                    self.telemetry.inc("service.rejected")
                raise AdmissionError(
                    {
                        "error": "queue-full",
                        "message": (
                            f"admission refused: {depth} jobs already "
                            f"queued (limit {self.max_queue}); retry later"
                        ),
                        "limit": self.max_queue,
                        "depth": depth,
                        "retriable": True,
                    }
                )
            record = self.ledger.append("submitted", job_id, spec=spec)
            job = JobRecord(
                job_id=job_id,
                spec=spec,
                submitted_at=record["t"],
                updated_at=record["t"],
            )
            job.history.append("submitted")
            self._records[job_id] = job
            self._queue.put(job_id)
            if telemetry_on:
                self.telemetry.inc("service.submitted")
            self._note_gauges()
            snapshot = job.to_dict()
            snapshot["dedupe"] = False
            return snapshot

    def status(self, job_id: str) -> Dict[str, Any]:
        with self._mutex:
            job = self._records.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return job.to_dict()

    def result(self, job_id: str) -> Dict[str, Any]:
        """The completed job's result payload (error if not completed)."""
        status = self.status(job_id)
        if status["state"] != "completed":
            raise ServiceError(
                f"job {job_id} is {status['state']}, not completed"
            )
        return status["result"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job now, or a running one at its next point."""
        with self._mutex:
            job = self._records.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if job.terminal:
                return job.to_dict()
            self._cancelled.add(job_id)
            if job.state == "queued":
                self.ledger.append("cancelled", job_id)
                job.state = "cancelled"
                if self.telemetry is not None and self.telemetry.enabled:
                    self.telemetry.inc("service.cancelled")
            self._note_gauges()
            return job.to_dict()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._mutex:
            return [
                job.to_dict()
                for job in sorted(
                    self._records.values(), key=lambda j: j.submitted_at
                )
            ]

    # -- internals ----------------------------------------------------------

    def _note_gauges(self) -> None:
        if self.telemetry is None or not self.telemetry.enabled:
            return
        with self._mutex:
            states: Dict[str, int] = {}
            for job in self._records.values():
                states[job.state] = states.get(job.state, 0) + 1
        self.telemetry.set_gauge("service.queue_depth", states.get("queued", 0))
        self.telemetry.set_gauge(
            "service.jobs_running",
            states.get("leased", 0) + states.get("running", 0),
        )

    def _chaos_lease_pause(self) -> None:
        raw = os.environ.get(CHAOS_LEASE_PAUSE_ENV)
        if not raw:
            return
        try:
            pause = float(raw)
        except ValueError:
            return
        if pause > 0:
            time.sleep(pause)

    def _worker_loop(self, worker: str) -> None:
        owner = make_owner(worker)
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            with self._mutex:
                job = self._records.get(job_id)
                if job is None or job.state != "queued":
                    continue
                if job_id in self._cancelled:
                    self._cancelled.discard(job_id)
                    self.ledger.append("cancelled", job_id)
                    job.state = "cancelled"
                    continue
                attempt = job.attempt + 1
                lease = self.leases.grant(job_id, owner, self.lease_ttl)
                self.ledger.append(
                    "leased",
                    job_id,
                    owner=owner,
                    attempt=attempt,
                    expires=lease.expires_at,
                    ttl=self.lease_ttl,
                )
                job.state = "leased"
                job.owner = owner
                job.attempt = attempt
                job.lease_count += 1
                job.lease_expires = lease.expires_at
            self._note_gauges()
            # The chaos window: the job is durably leased to a PID that
            # is about to "die" without ever heartbeating.
            self._chaos_lease_pause()
            try:
                result = self._run_leased(job_id, owner)
            except JobCancelled:
                with self._mutex:
                    self.leases.release(job_id)
                    self._cancelled.discard(job_id)
                    self.ledger.append("cancelled", job_id)
                    job = self._records[job_id]
                    job.state = "cancelled"
                    job.owner = None
                    if self.telemetry is not None and self.telemetry.enabled:
                        self.telemetry.inc("service.cancelled")
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                self._note_failure(job_id, exc)
            else:
                with self._mutex:
                    self.leases.release(job_id)
                    self.ledger.append("completed", job_id, result=result)
                    job = self._records[job_id]
                    job.state = "completed"
                    job.owner = None
                    job.result = result
                    if self.telemetry is not None and self.telemetry.enabled:
                        self.telemetry.inc("service.completed")
            self._note_gauges()

    def _run_leased(self, job_id: str, owner: str) -> Dict[str, Any]:
        with self._mutex:
            job = self._records[job_id]
            spec = dict(job.spec)
            self.ledger.append("running", job_id, owner=owner)
            job.state = "running"
            lease = self.leases.renew(job_id, owner)
            self.ledger.append(
                "heartbeat", job_id, owner=owner, expires=lease.expires_at
            )
            job.heartbeats += 1
        last_beat = [self._clock()]

        def heartbeat(done: int, total: int) -> None:
            if job_id in self._cancelled:
                raise JobCancelled(job_id)
            now = self._clock()
            if now - last_beat[0] < self.heartbeat_interval:
                return
            last_beat[0] = now
            with self._mutex:
                renewed = self.leases.renew(job_id, owner)
                self.ledger.append(
                    "heartbeat",
                    job_id,
                    owner=owner,
                    expires=renewed.expires_at,
                    done=done,
                    total=total,
                )
                self._records[job_id].heartbeats += 1

        store_dir = self.root / "stores" / job_id
        if self._job_runner is not None:
            return self._job_runner(
                spec, store_dir, on_point=heartbeat, telemetry=self.telemetry
            )
        return run_sweep_job(
            spec,
            store_dir,
            memo=self.memo,
            on_point=heartbeat,
            telemetry=self.telemetry,
        )

    def _note_failure(self, job_id: str, exc: Exception) -> None:
        error = f"{type(exc).__name__}: {exc}"
        telemetry_on = self.telemetry is not None and self.telemetry.enabled
        with self._mutex:
            self.leases.release(job_id)
            job = self._records[job_id]
            self.ledger.append("failed", job_id, error=error, attempt=job.attempt)
            job.state = "failed"
            job.owner = None
            job.error = error
            retriable = job.attempt <= self.retry_policy.max_retries
            if telemetry_on:
                self.telemetry.inc("service.failed")
        if retriable and not self._stopping.is_set():
            delay = self.retry_policy.backoff_delay(job_id, job.attempt)
            if delay > 0:
                time.sleep(delay)
            with self._mutex:
                if job.state != "failed":
                    return
                self.ledger.append(
                    "requeued", job_id, reason=f"retry-{job.attempt}"
                )
                job.state = "queued"
                self._queue.put(job_id)
        elif not retriable:
            with self._mutex:
                self.ledger.append(
                    "poisoned",
                    job_id,
                    error=(
                        f"quarantined after {job.attempt} attempts; "
                        f"last error: {error}"
                    ),
                )
                job.state = "poisoned"
                if telemetry_on:
                    self.telemetry.inc("service.poisoned")
