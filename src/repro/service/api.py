"""The daemon's local HTTP front-end (TCP or unix socket), stdlib only.

A thin JSON shim over :class:`~repro.service.daemon.SweepService` — the
service owns all semantics; this layer translates requests and maps the
service's exceptions onto status codes:

=======================  ======  =========================================
endpoint                 method  meaning
=======================  ======  =========================================
``/submit``              POST    body = job spec JSON; 200 status snapshot
                                 (``dedupe`` marks an existing job),
                                 400 invalid spec, **429** queue full with
                                 the structured rejection payload
``/status?job=<id>``     GET     job snapshot; 404 unknown
``/result?job=<id>``     GET     completed result; 409 if not completed
``/cancel?job=<id>``     POST    cancel (idempotent); 404 unknown
``/jobs``                GET     every job, submission order
``/metrics``             GET     the ``MetricsRegistry`` report
                                 (``service.*`` plus everything below it)
``/healthz``             GET     liveness probe
=======================  ======  =========================================

``ThreadingHTTPServer`` handles each request on its own thread, which
is safe because every ``SweepService`` entry point takes its own lock.
The unix-socket variant binds ``AF_UNIX`` (one daemon per socket path,
no port juggling, filesystem permissions as access control).
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from .daemon import AdmissionError, ServiceError, SweepService, UnknownJobError


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the service; one instance per request."""

    # Set by make_server(); class attribute so the stdlib handler
    # factory (which we don't control) can reach the service.
    service: SweepService = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the ledger is the log of record; stderr chatter helps no one

    # -- plumbing -----------------------------------------------------------

    def _send(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, **extra: Any) -> None:
        payload = {"error": message}
        payload.update(extra)
        self._send(code, payload)

    def _job_param(self) -> Optional[str]:
        query = parse_qs(urlparse(self.path).query)
        values = query.get("job")
        return values[0] if values else None

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body is empty; expected a JSON object")
        return json.loads(raw.decode("utf-8"))

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        route = urlparse(self.path).path
        try:
            if route == "/healthz":
                self._send(200, {"ok": True})
            elif route == "/metrics":
                telemetry = self.service.telemetry
                report = telemetry.report() if telemetry is not None else {}
                self._send(200, report)
            elif route == "/jobs":
                self._send(200, {"jobs": self.service.jobs()})
            elif route == "/status":
                job_id = self._job_param()
                if not job_id:
                    return self._error(400, "missing ?job=<id>")
                self._send(200, self.service.status(job_id))
            elif route == "/result":
                job_id = self._job_param()
                if not job_id:
                    return self._error(400, "missing ?job=<id>")
                self._send(200, self.service.result(job_id))
            else:
                self._error(404, f"unknown endpoint {route}")
        except UnknownJobError as exc:
            self._error(404, f"unknown job {exc.args[0]}")
        except ServiceError as exc:
            self._error(409, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        route = urlparse(self.path).path
        try:
            if route == "/submit":
                try:
                    spec = self._read_json()
                except ValueError as exc:
                    return self._error(400, f"invalid JSON body: {exc}")
                try:
                    self._send(200, self.service.submit(spec))
                except AdmissionError as exc:
                    self._send(429, exc.payload)
                except ValueError as exc:
                    self._error(400, str(exc))
            elif route == "/cancel":
                job_id = self._job_param()
                if not job_id:
                    return self._error(400, "missing ?job=<id>")
                self._send(200, self.service.cancel(job_id))
            else:
                self._error(404, f"unknown endpoint {route}")
        except UnknownJobError as exc:
            self._error(404, f"unknown job {exc.args[0]}")
        except ServiceError as exc:
            self._error(409, str(exc))


class _UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` over an ``AF_UNIX`` socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        Path(self.server_address).parent.mkdir(parents=True, exist_ok=True)
        try:
            Path(self.server_address).unlink()
        except FileNotFoundError:
            pass
        self.socket.bind(self.server_address)
        # The stdlib sets these from getsockname(); a unix path has no
        # host/port, so pin placeholders for anything that formats them.
        self.server_name = "unix"
        self.server_port = 0

    def get_request(self) -> Tuple[socket.socket, Tuple[str, int]]:
        request, _ = self.socket.accept()
        # The stdlib handler formats client_address[0]; a unix peer has
        # none, so give it a stable placeholder.
        return request, ("unix-socket", 0)


def make_server(
    service: SweepService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[Union[str, Path]] = None,
) -> ThreadingHTTPServer:
    """Build the HTTP server bound to TCP ``host:port`` or a unix socket.

    ``port=0`` asks the OS for a free port (read it back from
    ``server.server_address``).  The caller owns the serve loop —
    typically ``serve_forever()`` on a background thread, shut down via
    ``server.shutdown()`` from the signal-handling main thread (see
    ``repro serve``).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    if socket_path is not None:
        return _UnixHTTPServer(str(socket_path), handler)
    return ThreadingHTTPServer((host, port), handler)
