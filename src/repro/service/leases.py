"""Lease bookkeeping for the sweep job service.

A *lease* is the service's unit of failure detection: when a worker
claims a job it receives a lease with a TTL, and every heartbeat renews
it.  A worker (or the whole daemon) that dies or hangs simply stops
heartbeating, so the job's lease expires and the job can be granted to
someone else — the arbitrary delay-or-crash failure model the wait-free
locks literature formalizes, applied to our own orchestration layer.
Nothing here blocks on the failed holder: expiry is detected by reading
a clock, never by waiting on the dead.

Owners are ``"<pid>:<worker-name>"`` strings, so a restarted daemon can
additionally recognise leases held by processes that no longer exist
(:func:`owner_alive`) and reclaim them immediately instead of waiting
out the TTL — a crashed daemon's jobs are back in the queue the moment
it replays its ledger.

The clock is injectable everywhere (``clock=time.time`` by default), so
the lease tests drive expiry deterministically without sleeping.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

#: Default lease time-to-live, seconds.  Heartbeats renew well inside
#: this window (see ``SweepService``); a holder silent for a full TTL is
#: presumed dead.
DEFAULT_LEASE_TTL = 30.0


def make_owner(worker: str, pid: Optional[int] = None) -> str:
    """The canonical owner string for a worker of this process."""
    return f"{os.getpid() if pid is None else int(pid)}:{worker}"


def owner_pid(owner: str) -> Optional[int]:
    """The PID encoded in an owner string, or ``None`` if unparseable."""
    head, _, _ = owner.partition(":")
    try:
        return int(head)
    except ValueError:
        return None


def owner_alive(owner: str) -> bool:
    """Whether the process that granted itself ``owner`` still exists.

    Unparseable owners are conservatively reported alive (the TTL still
    bounds how long they can hold a lease).  ``os.kill(pid, 0)`` probes
    existence without signalling; ``EPERM`` means the process exists but
    belongs to someone else — alive for our purposes.
    """
    pid = owner_pid(owner)
    if pid is None:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


@dataclass(frozen=True)
class Lease:
    """One job's claim: who holds it and until when."""

    job_id: str
    owner: str
    granted_at: float
    expires_at: float
    ttl: float

    def expired(self, now: float) -> bool:
        """Whether the holder has been silent past its TTL."""
        return now >= self.expires_at

    def renewed(self, now: float) -> "Lease":
        """The same lease with its expiry pushed out by one TTL."""
        return replace(self, expires_at=now + self.ttl)


class LeaseTable:
    """The in-memory view of every live lease, keyed by job id.

    The table is bookkeeping only — durability lives in the job ledger,
    which records every grant/renew/release as an event.  The daemon
    keeps the two in sync by routing all lease changes through
    :class:`~repro.service.ledger.JobLedger`.
    """

    def __init__(self, *, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._leases

    def get(self, job_id: str) -> Optional[Lease]:
        return self._leases.get(job_id)

    def grant(self, job_id: str, owner: str, ttl: float) -> Lease:
        """Grant a fresh lease; the job must not already be leased."""
        if job_id in self._leases:
            raise ValueError(
                f"job {job_id} is already leased by "
                f"{self._leases[job_id].owner}"
            )
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        now = self._clock()
        lease = Lease(
            job_id=job_id,
            owner=owner,
            granted_at=now,
            expires_at=now + ttl,
            ttl=float(ttl),
        )
        self._leases[job_id] = lease
        return lease

    def renew(self, job_id: str, owner: str) -> Lease:
        """Renew a held lease; the owner must match the holder."""
        lease = self._leases.get(job_id)
        if lease is None:
            raise ValueError(f"job {job_id} holds no lease to renew")
        if lease.owner != owner:
            raise ValueError(
                f"lease on {job_id} is held by {lease.owner}, not {owner}"
            )
        renewed = lease.renewed(self._clock())
        self._leases[job_id] = renewed
        return renewed

    def release(self, job_id: str) -> Optional[Lease]:
        """Drop a lease (idempotent); returns what was released."""
        return self._leases.pop(job_id, None)

    def expired(self, *, check_owner: bool = True) -> Dict[str, Lease]:
        """Every lease past its TTL — plus, with ``check_owner``, leases
        whose holder process no longer exists (prompt recovery after a
        daemon crash, without waiting out the TTL)."""
        now = self._clock()
        dead = {}
        for job_id, lease in self._leases.items():
            if lease.expired(now):
                dead[job_id] = lease
            elif check_owner and not owner_alive(lease.owner):
                dead[job_id] = lease
        return dead
