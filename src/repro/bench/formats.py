"""Plain-text table/series formatting for benchmark output.

The benchmarks print the rows/series each paper figure reports; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md embeds
it verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_render(c, precision) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(headers)} headers"
            )
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Cell],
    ys: Sequence[Cell],
    *,
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
) -> str:
    """Render one figure series as a labelled two-column table."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    header = f"series: {name}"
    table = format_table([x_label, y_label], zip(xs, ys), precision=precision)
    return f"{header}\n{table}"
