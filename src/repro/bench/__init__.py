"""Benchmark harness: experiment records and paper-style table output."""

from repro.bench.harness import Experiment, ExperimentRegistry, Series
from repro.bench.formats import format_series, format_table

__all__ = [
    "Experiment",
    "ExperimentRegistry",
    "Series",
    "format_series",
    "format_table",
]
