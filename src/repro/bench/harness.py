"""Experiment records: what each benchmark reproduces and what it found.

Each benchmark module builds an :class:`Experiment` naming the paper
artifact (figure/theorem), attaches measured series/rows, and prints it;
the printed output is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.formats import format_series, format_table


@dataclass
class Series:
    """One plotted series of a figure: paired x/y values."""

    name: str
    xs: List[float]
    ys: List[float]
    x_label: str = "x"
    y_label: str = "y"

    def render(self, *, precision: int = 4) -> str:
        return format_series(
            self.name,
            self.xs,
            self.ys,
            x_label=self.x_label,
            y_label=self.y_label,
            precision=precision,
        )


@dataclass
class Experiment:
    """A reproduced paper artifact.

    Attributes
    ----------
    exp_id:
        The DESIGN.md experiment id (e.g. ``"FIG5"`` or ``"THM4"``).
    title:
        Human-readable description of the artifact.
    paper_claim:
        What the paper states the artifact shows.
    series:
        Figure series (x/y pairs) measured here.
    rows / headers:
        Tabular results, when the artifact is better shown as a table.
    notes:
        Free-form commentary (substitutions, tolerances).
    """

    exp_id: str
    title: str
    paper_claim: str
    series: List[Series] = field(default_factory=list)
    headers: Optional[Sequence[str]] = None
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(
        self,
        name: str,
        xs: Sequence[float],
        ys: Sequence[float],
        *,
        x_label: str = "x",
        y_label: str = "y",
    ) -> Series:
        series = Series(name, list(xs), list(ys), x_label, y_label)
        self.series.append(series)
        return series

    def add_row(self, *cells) -> None:
        if self.headers is None:
            raise ValueError("set headers before adding rows")
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self, *, precision: int = 4) -> str:
        parts = [
            f"== {self.exp_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
        ]
        if self.headers is not None and self.rows:
            parts.append(format_table(self.headers, self.rows, precision=precision))
        for series in self.series:
            parts.append(series.render(precision=precision))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def report(self) -> None:
        """Print the experiment record (captured by the bench logs)."""
        print()
        print(self.render())


class ExperimentRegistry:
    """Keeps experiments by id; lets a bench session collect and dump all."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def add(self, experiment: Experiment) -> Experiment:
        if experiment.exp_id in self._experiments:
            raise ValueError(f"duplicate experiment id {experiment.exp_id!r}")
        self._experiments[experiment.exp_id] = experiment
        return experiment

    def get(self, exp_id: str) -> Experiment:
        return self._experiments[exp_id]

    def render_all(self) -> str:
        return "\n\n".join(
            exp.render() for _, exp in sorted(self._experiments.items())
        )

    def __len__(self) -> int:
        return len(self._experiments)
