"""Estimators: confidence intervals, batch means, scaling-law fits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.stats


@dataclass(frozen=True)
class MeanEstimate:
    """A mean with a symmetric confidence interval."""

    mean: float
    half_width: float
    confidence: float
    n_samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> MeanEstimate:
    """Student-t confidence interval for the mean of i.i.d. samples."""
    data = np.asarray(samples, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples")
    mean = float(data.mean())
    sem = float(scipy.stats.sem(data))
    t_crit = float(scipy.stats.t.ppf(0.5 + confidence / 2.0, data.size - 1))
    return MeanEstimate(mean, t_crit * sem, confidence, data.size)


class StreamingMeanEstimator:
    """Welford accumulator producing the same Student-t interval as
    :func:`mean_confidence_interval` without holding the samples.

    ``add`` is O(1) in time and memory, so a million-replicate sweep
    point costs three floats of state instead of a million-entry list.
    The running mean/variance recurrences differ from numpy's pairwise
    summation only in floating-point association, so the resulting
    estimate matches the batch path to float64 round-off (not bitwise)
    — callers that need *bit*-identical results across execution paths
    get them by feeding every path through this estimator in the same
    order, which is what :class:`repro.core.sweep.StreamingSweepAggregator`
    does.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running mean and variance."""
        self.count += 1
        delta = float(value) - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (float(value) - self.mean)

    @property
    def variance(self) -> float:
        """The unbiased sample variance of everything added so far."""
        if self.count < 2:
            raise ValueError("need at least two samples")
        return self._m2 / (self.count - 1)

    def estimate(self, confidence: float = 0.95) -> MeanEstimate:
        """The Student-t interval over everything added so far."""
        if self.count < 2:
            raise ValueError("need at least two samples")
        sem = float(np.sqrt(self.variance / self.count))
        t_crit = float(
            scipy.stats.t.ppf(0.5 + confidence / 2.0, self.count - 1)
        )
        return MeanEstimate(self.mean, t_crit * sem, confidence, self.count)


def batch_means(samples: Sequence[float], batches: int = 20) -> np.ndarray:
    """Split a correlated series into batch means (for stationary series,
    batch means are approximately independent)."""
    data = np.asarray(samples, dtype=float)
    if batches < 2:
        raise ValueError("need at least two batches")
    if data.size < batches:
        raise ValueError(f"{data.size} samples cannot fill {batches} batches")
    usable = data.size - data.size % batches
    return data[:usable].reshape(batches, -1).mean(axis=1)


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit ``y = c * x**e`` in log-log space.

    Returns ``(exponent, coefficient)``.  Used to assert the *shape* of
    latency scalings (Theorem 5 predicts exponent ~= 0.5 for the
    scan-validate component's system latency).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise ValueError("need matching x/y arrays with at least two points")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive data")
    exponent, log_coeff = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(exponent), float(np.exp(log_coeff))


def fit_sqrt_scaling(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares coefficient ``c`` in ``y = c * sqrt(x)``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 1:
        raise ValueError("need matching non-empty x/y arrays")
    roots = np.sqrt(xs)
    return float((roots @ ys) / (roots @ roots))


def autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0 .. max_lag``.

    Completion-gap series from the simulator are autocorrelated (the
    chain remembers where the last success landed); the ACF sizes the
    batch lengths and effective sample counts used when attaching error
    bars to latency estimates.
    """
    data = np.asarray(series, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples")
    if not 0 <= max_lag < data.size:
        raise ValueError("max_lag must lie in [0, len(series))")
    centered = data - data.mean()
    denominator = float(centered @ centered)
    if denominator == 0:
        raise ValueError("series is constant; autocorrelation undefined")
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = float(centered[: data.size - lag] @ centered[lag:]) / denominator
    return out


def effective_sample_size(
    series: Sequence[float], *, max_lag: Optional[int] = None
) -> float:
    """Effective number of independent samples in a correlated series.

    ``n / (1 + 2 sum_k rho_k)`` with the sum truncated at the first
    non-positive autocorrelation (Geyer's initial positive sequence,
    simplified).
    """
    data = np.asarray(series, dtype=float)
    if max_lag is None:
        max_lag = min(data.size // 4, 200)
    rho = autocorrelation(data, max_lag)
    total = 0.0
    for lag in range(1, max_lag + 1):
        if rho[lag] <= 0:
            break
        total += rho[lag]
    return float(data.size / (1.0 + 2.0 * total))
