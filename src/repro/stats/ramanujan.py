"""Ramanujan's Q-function and the counter chain's return-time recurrence.

Lemma 12's remark: the expected return time ``Z(n-1)`` of the augmented-
CAS counter's winning state "is the Ramanujan Q function", studied by
Knuth and by Flajolet et al. in relation to linear probing, with
asymptotics ``Z(n-1) = sqrt(pi n / 2) (1 + o(1))``.

Definitions used here:

* ``Q(n) = sum_{k=1}^{n-1} n! / ((n - k)! n^k)`` — the classical
  Ramanujan Q-function (Knuth; Flajolet et al.).  The expected number of
  uniform throws into ``n`` bins until some bin receives a second ball
  is ``Q(n) + 1``.
* ``Z(i)`` — the paper's recurrence ``Z(0) = 1``, ``Z(i) = 1 + (i/n)
  Z(i-1)``; the return time of the global chain's state 1 is ``Z(n-1)``.

Closed-form identity (verified in the tests): ``Z(n-1) = Q(n)`` exactly —
the paper's remark "this is the Ramanujan Q function" is literal.
"""

from __future__ import annotations

import math

import numpy as np


def ramanujan_q(n: int) -> float:
    """Ramanujan's Q-function, computed exactly by its product-sum.

    ``Q(n) = 1 + (n-1)/n + (n-1)(n-2)/n^2 + ...`` — the ``k``-th term is
    ``n! / ((n-k)! n^k)`` for ``k = 1 .. n`` (the ``k = 1`` term is
    ``n/n = 1``; terms with ``k > n`` vanish).
    """
    if n < 1:
        raise ValueError("n must be positive")
    total = 0.0
    term = 1.0  # k = 1 term: n/n
    for k in range(1, n + 1):
        total += term
        term *= (n - k) / n
        if term < 1e-18:
            break
    return total


def ramanujan_q_asymptotic(n: int, *, order: int = 2) -> float:
    """Flajolet et al.'s asymptotic expansion of ``Q(n)``.

    ``Q(n) ~ sqrt(pi n / 2) - 1/3 + (1/12) sqrt(pi / (2n)) - 4/(135 n)``.
    ``order`` selects how many correction terms to include (0-3).
    """
    if n < 1:
        raise ValueError("n must be positive")
    terms = [
        math.sqrt(math.pi * n / 2.0),
        -1.0 / 3.0,
        math.sqrt(math.pi / (2.0 * n)) / 12.0,
        -4.0 / (135.0 * n),
    ]
    if not 0 <= order <= 3:
        raise ValueError("order must be in 0..3")
    return sum(terms[: order + 1])


def counter_return_times(n: int) -> np.ndarray:
    """The paper's ``Z`` recurrence: ``Z(0) = 1``, ``Z(i) = 1 + (i/n) Z(i-1)``.

    Returns ``Z(0), ..., Z(n-1)``; ``Z(i)`` is the expected number of
    steps for the global counter chain to hit state 1 when ``n - i``
    processes currently hold the register's value.  ``Z(n-1)`` is the
    system latency ``W`` (and is at most ``2 sqrt(n)``, Lemma 12).
    """
    if n < 1:
        raise ValueError("n must be positive")
    z = np.empty(n, dtype=float)
    z[0] = 1.0
    for i in range(1, n):
        z[i] = 1.0 + (i / n) * z[i - 1]
    return z


def birthday_expected_collision(n: int) -> float:
    """Expected number of uniform throws into ``n`` bins until some bin
    receives a second ball: ``Q(n) + 1`` (Knuth).

    The quantity Claim 1 of the paper concentrates around ``sqrt(a_i)``.
    """
    return ramanujan_q(n) + 1.0
