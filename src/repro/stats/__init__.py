"""Statistical helpers: the Ramanujan Q-function, estimators, and
distribution-comparison utilities used by the empirical experiments."""

from repro.stats.compare import (
    chi_square_uniformity,
    empirical_threshold,
    total_variation,
)
from repro.stats.estimators import (
    MeanEstimate,
    StreamingMeanEstimator,
    autocorrelation,
    batch_means,
    effective_sample_size,
    fit_power_law,
    fit_sqrt_scaling,
    mean_confidence_interval,
)
from repro.stats.ramanujan import (
    birthday_expected_collision,
    counter_return_times,
    ramanujan_q,
    ramanujan_q_asymptotic,
)

__all__ = [
    "MeanEstimate",
    "StreamingMeanEstimator",
    "autocorrelation",
    "batch_means",
    "birthday_expected_collision",
    "chi_square_uniformity",
    "counter_return_times",
    "effective_sample_size",
    "empirical_threshold",
    "fit_power_law",
    "fit_sqrt_scaling",
    "mean_confidence_interval",
    "ramanujan_q",
    "ramanujan_q_asymptotic",
    "total_variation",
]
