"""Distribution comparison utilities for the scheduler experiments.

Figures 3-4 of the paper argue real schedulers look uniform over long
executions; these helpers quantify "looks uniform" for our synthetic
recordings: total-variation distance, a chi-square uniformity test, and
an empirical weak-fairness threshold (Definition 1's ``theta``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.stats


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions on the same
    finite support: ``0.5 * sum |p_i - q_i|``."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    for name, vec in (("p", p), ("q", q)):
        if np.any(vec < -1e-12) or abs(vec.sum() - 1.0) > 1e-6:
            raise ValueError(f"{name} is not a probability vector")
    return float(0.5 * np.abs(p - q).sum())


def chi_square_uniformity(counts: np.ndarray) -> Tuple[float, float]:
    """Chi-square test of uniformity over observed category counts.

    Returns ``(statistic, p_value)``.  A large p-value is consistent with
    the uniform stochastic scheduler hypothesis.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("counts must be a 1-D array with >= 2 categories")
    if counts.sum() <= 0:
        raise ValueError("counts must not be all zero")
    statistic, p_value = scipy.stats.chisquare(counts)
    return float(statistic), float(p_value)


def empirical_threshold(schedule: np.ndarray, n_processes: int) -> float:
    """Empirical weak-fairness threshold: the smallest per-process step
    share observed in a schedule.

    For a uniform stochastic scheduler this converges to ``1/n``; a
    starvation adversary drives it to 0.
    """
    schedule = np.asarray(schedule)
    if schedule.size == 0:
        raise ValueError("empty schedule")
    counts = np.bincount(schedule, minlength=n_processes).astype(float)
    return float(counts.min() / schedule.size)


def step_share_spread(schedule: np.ndarray, n_processes: int) -> float:
    """Max-minus-min per-process step share — Figure 3's "how flat is the
    bar chart" statistic."""
    schedule = np.asarray(schedule)
    if schedule.size == 0:
        raise ValueError("empty schedule")
    shares = np.bincount(schedule, minlength=n_processes) / schedule.size
    return float(shares.max() - shares.min())
