"""Sequential specifications for linearizability checking.

A :class:`SequentialSpec` models an object as a pure transition function
over hashable states: ``apply(state, method, argument) -> (new_state,
result)``.  The checker asks whether a concurrent history can be
explained by *some* sequential execution of the spec consistent with
real-time order.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Tuple


class SequentialSpec(abc.ABC):
    """A deterministic sequential object with hashable states."""

    @abc.abstractmethod
    def initial_state(self) -> Hashable:
        """The object's state before any operation."""

    @abc.abstractmethod
    def apply(
        self, state: Hashable, method: str, argument: Any
    ) -> Tuple[Hashable, Any]:
        """Apply one operation; return ``(new_state, result)``.

        Must be pure: no mutation of ``state``.
        """


class CounterSpec(SequentialSpec):
    """Fetch-and-increment: returns the pre-increment value."""

    def __init__(self, initial: int = 0) -> None:
        self.initial = initial

    def initial_state(self) -> int:
        return self.initial

    def apply(self, state: int, method: str, argument: Any) -> Tuple[int, int]:
        if method not in ("fetch_and_inc", "inc"):
            raise ValueError(f"unknown counter method {method!r}")
        return state + 1, state


class RegisterSpec(SequentialSpec):
    """A read/write register."""

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def apply(self, state: Any, method: str, argument: Any) -> Tuple[Any, Any]:
        if method == "read":
            return state, state
        if method == "write":
            return argument, None
        raise ValueError(f"unknown register method {method!r}")


#: Sentinel result for pops/dequeues on an empty container, matching the
#: algorithms' EMPTY sentinels structurally (the checker compares via a
#: caller-provided normaliser, see ``check_linearizable``).
EMPTY = "__empty__"


class StackSpec(SequentialSpec):
    """LIFO stack: ``push(v) -> v`` and ``pop() -> v | EMPTY``."""

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state: tuple, method: str, argument: Any) -> Tuple[tuple, Any]:
        if method == "push":
            return (argument,) + state, argument
        if method == "pop":
            if not state:
                return state, EMPTY
            return state[1:], state[0]
        raise ValueError(f"unknown stack method {method!r}")


class SetSpec(SequentialSpec):
    """An ordered set: ``insert(k) -> bool``, ``remove(k) -> bool``,
    ``contains(k) -> bool``."""

    def initial_state(self) -> frozenset:
        return frozenset()

    def apply(
        self, state: frozenset, method: str, argument: Any
    ) -> Tuple[frozenset, Any]:
        if method == "insert":
            if argument in state:
                return state, False
            return state | {argument}, True
        if method == "remove":
            if argument not in state:
                return state, False
            return state - {argument}, True
        if method == "contains":
            return state, argument in state
        raise ValueError(f"unknown set method {method!r}")


class QueueSpec(SequentialSpec):
    """FIFO queue: ``enqueue(v) -> v`` and ``dequeue() -> v | EMPTY``."""

    def initial_state(self) -> tuple:
        return ()

    def apply(self, state: tuple, method: str, argument: Any) -> Tuple[tuple, Any]:
        if method in ("enqueue", "enq"):
            return state + (argument,), argument
        if method in ("dequeue", "deq"):
            if not state:
                return state, EMPTY
            return state[1:], state[0]
        raise ValueError(f"unknown queue method {method!r}")
