"""A memoised Wing-Gong linearizability checker.

Given a concurrent history — operations with invocation/response times,
arguments and results — decide whether some sequential ordering of the
operations (consistent with real-time precedence) explains every
recorded result under a :class:`~repro.verify.specs.SequentialSpec`.

Pending operations (invoked, never responded) are handled per the
definition: each may either have taken effect (it is linearized, its
unknown result unconstrained) or not (it is omitted).

The search is exponential in the worst case; the ``(linearized-set,
state)`` memo prunes it to practical sizes for the windowed histories
the tests and examples use (tens of operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.sim.history import History
from repro.verify.specs import SequentialSpec


@dataclass(frozen=True)
class OpRecord:
    """One operation of a concurrent history."""

    op_id: int
    pid: int
    method: str
    argument: Any
    result: Any
    invoked: int
    responded: Optional[int]

    @property
    def pending(self) -> bool:
        """Whether the operation never responded."""
        return self.responded is None


@dataclass(frozen=True)
class LinearizationResult:
    """Outcome of a linearizability check.

    Attributes
    ----------
    is_linearizable:
        Whether a witness ordering exists.
    witness:
        A linearization as a list of op_ids (omitted pending operations
        excluded); ``None`` when not linearizable.
    nodes_explored:
        Search-tree nodes visited (a cost/diagnostic metric).
    """

    is_linearizable: bool
    witness: Optional[List[int]]
    nodes_explored: int


def operations_from_history(
    history: History, *, arguments: Optional[Dict[int, Any]] = None
) -> List[OpRecord]:
    """Convert a :class:`~repro.sim.history.History` into op records.

    Responses are matched to invocations per process in order (each
    process is sequential).  ``arguments`` optionally maps op_id (the
    invocation's index in the history) to the operation's argument when
    the algorithm did not record one; by convention the workloads in
    :mod:`repro.algorithms` return the argument as the result of
    mutators (push/enqueue), which the specs mirror.
    """
    per_pid_responses: Dict[int, List] = {}
    for response in history.responses:
        per_pid_responses.setdefault(response.pid, []).append(response)
    cursors: Dict[int, int] = {pid: 0 for pid in per_pid_responses}
    ops = []
    for op_id, invocation in enumerate(history.invocations):
        responses = per_pid_responses.get(invocation.pid, [])
        cursor = cursors.get(invocation.pid, 0)
        if cursor < len(responses):
            response = responses[cursor]
            cursors[invocation.pid] = cursor + 1
            responded: Optional[int] = response.time
            result = response.result
        else:
            responded = None
            result = None
        argument = getattr(invocation, "argument", None)
        if arguments and op_id in arguments:
            argument = arguments[op_id]
        ops.append(
            OpRecord(
                op_id=op_id,
                pid=invocation.pid,
                method=invocation.method,
                argument=argument,
                result=result,
                invoked=invocation.time,
                responded=responded,
            )
        )
    return ops


def check_linearizable(
    ops: Sequence[OpRecord],
    spec: SequentialSpec,
    *,
    normalize_result: Optional[Callable[[Any], Any]] = None,
    max_nodes: int = 2_000_000,
) -> LinearizationResult:
    """Decide linearizability of ``ops`` against ``spec``.

    Parameters
    ----------
    ops:
        The history's operations (see :func:`operations_from_history`).
    spec:
        The sequential specification.
    normalize_result:
        Applied to *recorded* results before comparing with the spec's
        (e.g. map an algorithm's EMPTY sentinel onto the spec's).
    max_nodes:
        Search budget; exceeding it raises :class:`ArithmeticError`
        rather than returning a wrong answer.
    """
    ops = list(ops)
    norm = normalize_result or (lambda r: r)

    # Real-time precedence: a must precede b iff a responded before b's
    # invocation.  Pending operations precede nothing.
    n_ops = len(ops)
    preds: List[Set[int]] = [set() for _ in range(n_ops)]
    for a in ops:
        if a.responded is None:
            continue
        for b in ops:
            if a.op_id != b.op_id and a.responded < b.invoked:
                preds[b.op_id].add(a.op_id)

    memo: Set[Tuple[frozenset, Hashable]] = set()
    nodes = 0
    witness: List[int] = []

    def dfs(chosen: frozenset, state: Hashable) -> bool:
        nonlocal nodes
        if len(chosen) == n_ops:
            return True
        key = (chosen, state)
        if key in memo:
            return False
        nodes += 1
        if nodes > max_nodes:
            raise ArithmeticError(
                f"linearizability search exceeded {max_nodes} nodes"
            )
        for op in ops:
            if op.op_id in chosen:
                continue
            if not preds[op.op_id] <= chosen:
                continue
            if op.pending:
                # Branch 1: the pending op took effect (result unknown).
                new_state, _ = spec.apply(state, op.method, op.argument)
                witness.append(op.op_id)
                if dfs(chosen | {op.op_id}, new_state):
                    return True
                witness.pop()
                # Branch 2: it never took effect.
                if dfs(chosen | {op.op_id}, state):
                    return True
            else:
                new_state, expected = spec.apply(state, op.method, op.argument)
                if norm(op.result) == expected:
                    witness.append(op.op_id)
                    if dfs(chosen | {op.op_id}, new_state):
                        return True
                    witness.pop()
        memo.add(key)
        return False

    ok = dfs(frozenset(), spec.initial_state())
    return LinearizationResult(
        is_linearizable=ok,
        witness=list(witness) if ok else None,
        nodes_explored=nodes,
    )


def check_history(
    history: History,
    spec: SequentialSpec,
    *,
    normalize_result: Optional[Callable[[Any], Any]] = None,
    max_nodes: int = 2_000_000,
) -> LinearizationResult:
    """Convenience: convert a history and check it in one call."""
    ops = operations_from_history(history)
    return check_linearizable(
        ops, spec, normalize_result=normalize_result, max_nodes=max_nodes
    )
