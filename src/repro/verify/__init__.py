"""Safety verification: linearizability checking of recorded histories.

The paper concerns *progress*; a library someone would adopt also needs
the complementary *safety* story (Section 2's "safety properties, which
guarantee their correctness").  This package provides a small
Wing-Gong-style linearizability checker over the simulator's recorded
histories, with sequential specifications for the objects implemented in
:mod:`repro.algorithms`.
"""

from repro.verify.linearize import LinearizationResult, check_linearizable
from repro.verify.linearize import check_history, operations_from_history
from repro.verify.specs import (
    CounterSpec,
    QueueSpec,
    RegisterSpec,
    SequentialSpec,
    SetSpec,
    StackSpec,
)

__all__ = [
    "CounterSpec",
    "LinearizationResult",
    "QueueSpec",
    "RegisterSpec",
    "SequentialSpec",
    "SetSpec",
    "StackSpec",
    "check_history",
    "check_linearizable",
    "operations_from_history",
]
