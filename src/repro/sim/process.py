"""Simulated processes.

A process is a Python generator yielding :mod:`repro.sim.ops` operations —
one per step — interleaved with zero-cost markers:

* :class:`Invoke` marks the start of a method call,
* :class:`Completion` marks a method call returning.

Markers cost nothing because, in the paper's model, a step is a shared
memory access; invocation and response are bookkeeping on the history
(Section 2.1: "a history can be the image of several schedules").

The executor keeps each process *one operation ahead*: immediately after a
process's step is applied, its generator is resumed (consuming any markers
at the current time) until it produces the next operation.  This pins
completion events to the exact time step of the operation that caused them
— a successful CAS completes the method call at the CAS's own step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.ops import Operation


@dataclass(frozen=True)
class Invoke:
    """Zero-cost marker: a method call begins.

    ``argument`` is recorded into the history so safety checkers
    (:mod:`repro.verify`) can replay the operation against a sequential
    specification.
    """

    method: str = "method"
    argument: Any = None


@dataclass(frozen=True)
class Completion:
    """Zero-cost marker: the current method call returns ``result``."""

    result: Any = None
    method: str = "method"


Yieldable = Union[Operation, Invoke, Completion]
ProcessGenerator = Generator[Yieldable, Any, None]
ProcessFactory = Callable[[int], ProcessGenerator]


class Process:
    """Runtime state of one simulated process.

    Attributes
    ----------
    pid:
        Process index in ``range(n)``.
    steps:
        Shared-memory steps taken so far.
    completions:
        Method calls completed so far.
    crashed:
        Set by the executor when the process crashes; a crashed process is
        never scheduled again (Definition 1, crash containment).
    done:
        The generator ran out of work (finite workloads).
    """

    def __init__(self, pid: int, factory: ProcessFactory) -> None:
        self.pid = pid
        self._generator: ProcessGenerator = factory(pid)
        self.pending: Optional[Operation] = None
        self._last_result: Any = None
        self.steps = 0
        self.completions = 0
        self.crashed = False
        self.done = False

    @property
    def active(self) -> bool:
        """Whether the process can be scheduled."""
        return not self.crashed and not self.done

    def advance(self, send_value: Any, on_marker: Callable[[Yieldable], None]) -> None:
        """Resume the generator until the next operation is pending.

        ``send_value`` is the result of the previously applied operation
        (``None`` on the priming call).  Zero-cost markers encountered on
        the way are reported through ``on_marker``.
        """
        try:
            item = self._generator.send(send_value)
            while not isinstance(item, Operation):
                if not isinstance(item, (Invoke, Completion)):
                    raise TypeError(
                        f"process {self.pid} yielded {item!r}; expected an "
                        "Operation, Invoke or Completion"
                    )
                on_marker(item)
                item = self._generator.send(None)
        except StopIteration:
            self.pending = None
            self.done = True
            return
        self.pending = item

    def take_step(self, apply: Callable[[Operation], Any]) -> Operation:
        """Apply the pending operation and remember its result.

        Returns the operation that was applied.  The caller must follow up
        with :meth:`refill` to line up the next operation.
        """
        if self.pending is None:
            raise RuntimeError(f"process {self.pid} has no pending operation")
        op = self.pending
        self._last_result = apply(op)
        self.steps += 1
        self.pending = None
        return op

    def refill(self, on_marker: Callable[[Yieldable], None]) -> None:
        """Advance the generator past the just-applied operation."""
        self.advance(self._last_result, on_marker)

    def crash(self) -> None:
        """Mark the process crashed; it takes no further steps."""
        self.crashed = True


def repeat_method(
    method_call: Callable[[int], Generator[Yieldable, Any, Any]],
    *,
    method: str = "method",
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Wrap a single-method-call generator into an infinite (or ``calls``-
    bounded) sequence of invocations with history markers.

    ``method_call(pid)`` yields the operations of *one* method call and may
    ``return`` a result; the wrapper brackets each call with
    :class:`Invoke`/:class:`Completion` markers.  This matches the paper's
    workload: "Each thread executes an infinite number of such operations."
    """

    def factory(pid: int) -> ProcessGenerator:
        count = 0
        while calls is None or count < calls:
            yield Invoke(method)
            result = yield from method_call(pid)
            yield Completion(result, method)
            count += 1

    return factory
