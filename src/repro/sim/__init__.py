"""Discrete-time shared-memory simulator.

This package implements the paper's system model (Section 2.1): ``n``
processes communicate through atomic registers supporting ``read``,
``write`` and ``compare-and-swap``; at every discrete time step exactly one
process — chosen by a pluggable scheduler — performs one shared-memory
operation (local computation is free).

Algorithms are Python generators that ``yield`` operation objects
(:mod:`repro.sim.ops`); the executor applies each operation atomically and
sends the result back into the generator.  This substitutes for the paper's
real multicore testbed: Python's GIL rules out genuine lock-free execution,
but the paper's analysis is stated entirely in this discrete-time model, so
simulating the model directly exercises exactly the behaviour the paper
predicts (see DESIGN.md, "Hardware / data substitutions").
"""

from repro.sim.ensemble import (
    EnsembleReplicate,
    EnsembleResult,
    EnsembleSimulator,
    ReplicateOutcome,
)
from repro.sim.executor import SimulationResult, Simulator
from repro.sim.history import History, Invocation, Response
from repro.sim.memory import Memory, Register
from repro.sim.ops import (
    CAS,
    FetchAndIncrement,
    Nop,
    Operation,
    Read,
    ReadModifyWrite,
    Write,
    augmented_cas,
)
from repro.sim.process import Completion, Invoke, Process, repeat_method
from repro.sim.recording import ScheduleRecording, record_schedule
from repro.sim.trace import ScheduleTrace, TraceRecorder

__all__ = [
    "CAS",
    "Completion",
    "EnsembleReplicate",
    "EnsembleResult",
    "EnsembleSimulator",
    "FetchAndIncrement",
    "History",
    "Invocation",
    "Invoke",
    "Memory",
    "Nop",
    "Operation",
    "Process",
    "Read",
    "ReadModifyWrite",
    "Register",
    "ReplicateOutcome",
    "Response",
    "ScheduleRecording",
    "ScheduleTrace",
    "SimulationResult",
    "Simulator",
    "TraceRecorder",
    "Write",
    "augmented_cas",
    "record_schedule",
    "repeat_method",
]
