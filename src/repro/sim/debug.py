"""Human-readable timelines of small simulation runs.

A teaching/debugging aid: render who was scheduled at each step, what
operation they performed, and where invocations/responses fall — the
kind of diagram the paper's Figure 1 discussion reasons over.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.executor import Simulator
from repro.sim.history import History
from repro.sim.ops import CAS, FetchAndIncrement, Nop, Operation, Read, ReadModifyWrite, Write


def describe_operation(op: Operation, result=None) -> str:
    """One-line description of an applied operation."""
    if isinstance(op, Read):
        return f"read {op.register} -> {result!r}"
    if isinstance(op, Write):
        return f"write {op.register} <- {op.value!r}"
    if isinstance(op, CAS):
        outcome = "ok" if result else "fail"
        return f"CAS {op.register} {op.expected!r}->{op.new!r} [{outcome}]"
    if isinstance(op, FetchAndIncrement):
        return f"F&I {op.register} -> {result!r}"
    if isinstance(op, ReadModifyWrite):
        return f"RMW {op.register} -> {result!r}"
    if isinstance(op, Nop):
        return "nop"
    return repr(op)


class TimelineRecorder:
    """Wraps a simulator to record a per-step, per-process timeline.

    Usage::

        sim = Simulator(...)
        timeline = TimelineRecorder(sim)
        timeline.run(30)
        print(timeline.render())
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.rows: List[tuple] = []

    def step(self) -> Optional[int]:
        """One simulator step, recorded."""
        sim = self.simulator
        if not sim._primed:  # observe the op about to run
            sim._prime()
        # Peek: we cannot know who is scheduled before stepping, so we
        # reconstruct from the per-process pending ops after the fact.
        before = {p.pid: p.pending for p in sim.processes}
        completions_before = {p.pid: p.completions for p in sim.processes}
        pid = sim.step()
        if pid is None:
            return None
        op = before[pid]
        completed = sim.processes[pid].completions > completions_before[pid]
        self.rows.append((sim.time, pid, op, completed))
        return pid

    def run(self, steps: int) -> None:
        """Record ``steps`` steps (stops early if nothing is active)."""
        for _ in range(steps):
            if self.step() is None:
                break

    def render(self, *, width: int = 72) -> str:
        """The timeline as aligned text, one line per step."""
        lines = []
        for time, pid, op, completed in self.rows:
            marker = "  <-- completes" if completed else ""
            body = describe_operation(op)
            lines.append(f"t={time:>4}  p{pid}: {body}{marker}"[:width + 24])
        return "\n".join(lines)


def render_history(history: History, *, limit: int = 50) -> str:
    """Render a history's events, interleaved and time-ordered."""
    events = []
    for invocation in history.invocations:
        events.append((invocation.time, 0,
                       f"t={invocation.time:>4}  p{invocation.pid} invokes "
                       f"{invocation.method}"
                       + (f"({invocation.argument!r})"
                          if invocation.argument is not None else "")))
    for response in history.responses:
        events.append((response.time, 1,
                       f"t={response.time:>4}  p{response.pid} returns "
                       f"{response.method} -> {response.result!r}"))
    events.sort(key=lambda e: (e[0], e[1]))
    lines = [text for _, _, text in events[:limit]]
    if len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines)
