"""Shared memory: a set of named atomic registers.

Atomicity is by construction: the executor applies exactly one operation per
discrete time step, so no interleaving can occur inside an operation.  The
memory keeps per-register access statistics so tests can assert on step
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.sim.ops import (
    CAS,
    FetchAndIncrement,
    Nop,
    Operation,
    Read,
    ReadModifyWrite,
    Write,
)


@dataclass
class Register:
    """A single atomic register.

    Attributes
    ----------
    name:
        The register's name within its :class:`Memory`.
    value:
        Current contents.
    reads, writes, cas_attempts, cas_successes, rmws:
        Access counters, maintained by :meth:`Memory.apply`.
    """

    name: str
    value: Any = None
    reads: int = 0
    writes: int = 0
    cas_attempts: int = 0
    cas_successes: int = 0
    rmws: int = 0


class Memory:
    """A collection of named atomic registers.

    Registers are created explicitly with :meth:`register` or implicitly on
    first access (initialised to ``None``); explicit creation is preferred
    in library code so initial values are visible at the call site.
    """

    def __init__(self) -> None:
        self._registers: Dict[str, Register] = {}
        self.total_operations = 0
        # Operation class -> bound handler, filled lazily on first use so
        # the hot path is one dict lookup instead of an isinstance cascade.
        self._handlers: Dict[type, Any] = {}

    def register(self, name: str, initial: Any = None) -> Register:
        """Create (or re-initialise) a register with an initial value."""
        reg = self._registers.get(name)
        if reg is None:
            reg = Register(name, initial)
            self._registers[name] = reg
        else:
            reg.value = initial
        return reg

    def __contains__(self, name: str) -> bool:
        return name in self._registers

    def __getitem__(self, name: str) -> Register:
        reg = self._registers.get(name)
        if reg is None:
            reg = Register(name)
            self._registers[name] = reg
        return reg

    def read(self, name: str) -> Any:
        """Peek at a register's value without counting an access.

        For assertions and measurements only — algorithm code must go
        through the executor by yielding operations.
        """
        return self[name].value

    def registers(self) -> Dict[str, Register]:
        """Snapshot of the name -> register map."""
        return dict(self._registers)

    def apply(self, op: Operation) -> Any:
        """Apply one operation atomically and return its result.

        This is the single point through which the executor touches memory;
        it dispatches on the operation type (cached per concrete class) and
        maintains access counters.
        """
        self.total_operations += 1
        handler = self._handlers.get(op.__class__)
        if handler is None:
            handler = self._resolve_handler(op)
        return handler(op)

    def _resolve_handler(self, op: Operation):
        # Checked in the same order as the original isinstance cascade, so
        # subclasses of the built-in operations resolve identically.
        if isinstance(op, Nop):
            handler = self._apply_nop
        elif isinstance(op, Read):
            handler = self._apply_read
        elif isinstance(op, Write):
            handler = self._apply_write
        elif isinstance(op, CAS):
            handler = self._apply_cas
        elif isinstance(op, FetchAndIncrement):
            handler = self._apply_fai
        elif isinstance(op, ReadModifyWrite):
            handler = self._apply_rmw
        else:
            raise TypeError(f"unknown operation type {type(op).__name__}")
        self._handlers[op.__class__] = handler
        return handler

    def _apply_nop(self, op: Nop) -> None:
        return None

    def _apply_read(self, op: Read) -> Any:
        reg = self._registers.get(op.register)
        if reg is None:
            reg = self[op.register]
        reg.reads += 1
        return reg.value

    def _apply_write(self, op: Write) -> None:
        reg = self._registers.get(op.register)
        if reg is None:
            reg = self[op.register]
        reg.writes += 1
        reg.value = op.value
        return None

    def _apply_cas(self, op: CAS) -> bool:
        reg = self._registers.get(op.register)
        if reg is None:
            reg = self[op.register]
        reg.cas_attempts += 1
        if reg.value == op.expected:
            reg.cas_successes += 1
            reg.value = op.new
            return True
        return False

    def _apply_fai(self, op: FetchAndIncrement) -> int:
        reg = self._registers.get(op.register)
        if reg is None:
            reg = self[op.register]
        reg.rmws += 1
        old = reg.value
        if old is None:
            old = 0
        reg.value = old + op.amount
        return old

    def _apply_rmw(self, op: ReadModifyWrite) -> Any:
        reg = self._registers.get(op.register)
        if reg is None:
            reg = self[op.register]
        reg.rmws += 1
        old = reg.value
        reg.value = op.update(old)
        return old
