"""Shared memory: a set of named atomic registers.

Atomicity is by construction: the executor applies exactly one operation per
discrete time step, so no interleaving can occur inside an operation.  The
memory keeps per-register access statistics so tests can assert on step
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.sim.ops import (
    CAS,
    FetchAndIncrement,
    Nop,
    Operation,
    Read,
    ReadModifyWrite,
    Write,
)


@dataclass
class Register:
    """A single atomic register.

    Attributes
    ----------
    name:
        The register's name within its :class:`Memory`.
    value:
        Current contents.
    reads, writes, cas_attempts, cas_successes, rmws:
        Access counters, maintained by :meth:`Memory.apply`.
    """

    name: str
    value: Any = None
    reads: int = 0
    writes: int = 0
    cas_attempts: int = 0
    cas_successes: int = 0
    rmws: int = 0


class Memory:
    """A collection of named atomic registers.

    Registers are created explicitly with :meth:`register` or implicitly on
    first access (initialised to ``None``); explicit creation is preferred
    in library code so initial values are visible at the call site.
    """

    def __init__(self) -> None:
        self._registers: Dict[str, Register] = {}
        self.total_operations = 0

    def register(self, name: str, initial: Any = None) -> Register:
        """Create (or re-initialise) a register with an initial value."""
        reg = self._registers.get(name)
        if reg is None:
            reg = Register(name, initial)
            self._registers[name] = reg
        else:
            reg.value = initial
        return reg

    def __contains__(self, name: str) -> bool:
        return name in self._registers

    def __getitem__(self, name: str) -> Register:
        reg = self._registers.get(name)
        if reg is None:
            reg = Register(name)
            self._registers[name] = reg
        return reg

    def read(self, name: str) -> Any:
        """Peek at a register's value without counting an access.

        For assertions and measurements only — algorithm code must go
        through the executor by yielding operations.
        """
        return self[name].value

    def registers(self) -> Dict[str, Register]:
        """Snapshot of the name -> register map."""
        return dict(self._registers)

    def apply(self, op: Operation) -> Any:
        """Apply one operation atomically and return its result.

        This is the single point through which the executor touches memory;
        it dispatches on the operation type and maintains access counters.
        """
        self.total_operations += 1
        if isinstance(op, Nop):
            return None
        reg = self[op.register]
        if isinstance(op, Read):
            reg.reads += 1
            return reg.value
        if isinstance(op, Write):
            reg.writes += 1
            reg.value = op.value
            return None
        if isinstance(op, CAS):
            reg.cas_attempts += 1
            if reg.value == op.expected:
                reg.cas_successes += 1
                reg.value = op.new
                return True
            return False
        if isinstance(op, FetchAndIncrement):
            reg.rmws += 1
            old = reg.value
            if old is None:
                old = 0
            reg.value = old + op.amount
            return old
        if isinstance(op, ReadModifyWrite):
            reg.rmws += 1
            old = reg.value
            reg.value = op.update(old)
            return old
        raise TypeError(f"unknown operation type {type(op).__name__}")
