"""Shared-memory operations.

Each operation object names a register and carries the operation's
arguments.  An algorithm generator ``yield``s one of these per *step* — a
step being a single shared-memory access, matching the paper's cost model
(Section 2.1).  The executor applies the operation atomically and sends the
result back as the value of the ``yield`` expression.

Operation results:

=====================  =======================================================
``Read``               the register's current value
``Write``              ``None``
``CAS``                ``True`` on success, ``False`` on failure (classic CAS)
``ReadModifyWrite``    the register's *previous* value (covers the paper's
                       "augmented CAS" of Section 7 via :func:`augmented_cas`,
                       and atomic fetch-and-increment)
``FetchAndIncrement``  the register's previous value
``Nop``                ``None`` (a step with no semantic effect — models
                       preamble memory traffic that does not touch the
                       analysed registers)
=====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Operation:
    """Base class for all shared-memory operations."""

    register: str


@dataclass(frozen=True)
class Read(Operation):
    """Atomic read of a register."""


@dataclass(frozen=True)
class Write(Operation):
    """Atomic write of ``value`` to a register."""

    value: Any = None


@dataclass(frozen=True)
class CAS(Operation):
    """Classic compare-and-swap: succeed iff the register holds ``expected``.

    The result sent back is ``True``/``False`` — the boolean-returning CAS
    of Section 2.1 ("The operation returns true if it successful, and false
    otherwise").
    """

    expected: Any = None
    new: Any = None


@dataclass(frozen=True)
class ReadModifyWrite(Operation):
    """General atomic read-modify-write: ``register <- update(old)``.

    The result sent back is the *previous* value.  This models the richer
    primitives the paper mentions: augmented CAS (Section 7) and the
    hardware fetch-and-increment used for schedule recording (Appendix A.2).
    """

    update: Callable[[Any], Any] = lambda old: old


@dataclass(frozen=True)
class FetchAndIncrement(Operation):
    """Atomic fetch-and-increment; returns the previous value."""

    amount: int = 1


@dataclass(frozen=True)
class Nop(Operation):
    """A step that performs no semantic update.

    Still consumes one scheduling slot and one shared-memory access, so it
    is the right model for preamble work (local allocations, updates to
    registers outside the scan set) whose only analytical role is costing
    ``q`` steps.
    """

    register: str = "__nop__"


def augmented_cas(register: str, expected: Any, new: Any) -> ReadModifyWrite:
    """Augmented CAS (Section 7): atomically install ``new`` iff the register
    holds ``expected``; the step's result is the register's previous value
    either way.

    The caller detects success by comparing the returned value with
    ``expected``, exactly as Algorithm 5 in the paper does.
    """

    def update(old: Any) -> Any:
        return new if old == expected else old

    return ReadModifyWrite(register, update)
