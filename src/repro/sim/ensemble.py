"""The ensemble engine: many replicates resolved as array operations.

The paper's quantitative claims (Theorems 4-5, Corollary 2, Figure 5) are
statements about *expectations* under the uniform stochastic scheduler, so
sweeps and benchmarks run many independent replicates of the same small
``SCU(q, s)`` or CAS-counter simulation.  Replicates are embarrassingly
parallel and structurally identical, which makes them the textbook
candidate for struct-of-arrays vectorization: :class:`EnsembleSimulator`
holds the per-replicate process state as integer arrays (per-process phase
counters, attempt sequence numbers, step counts) and resolves whole
replicates with numpy passes instead of per-process generator resumption.

The engine exploits a structural property of ``SCU(q, s)`` workloads: the
schedule is drawn up front (via the same ``select_batch`` protocol and RNG
consumption as :meth:`repro.sim.Simulator.run_batched`), and once the
schedule is fixed, the only data-dependent events are the validating CAS
steps.  A CAS by process ``p`` at time ``c`` whose decision-register read
happened at time ``r`` succeeds **iff no other CAS succeeded in the open
interval** ``(r, c)`` — proposals are globally unique (timestamped), so
the decision register acts as a version counter.  Resolution therefore
reduces to a greedy scan over (read, CAS) event pairs:

* ``q == 0`` (the counter, scan-validate, and every ``SCU(0, s)`` member):
  attempt boundaries are schedule-deterministic — every ``s + 1`` local
  steps regardless of outcomes — so all event pairs are precomputed with
  counting-sort passes (times are unique integers, so sorting is O(steps)
  scatter/cumsum work, not a comparison sort), and the successes are
  extracted by following a vectorized-precomputed successor pointer:
  after a success at time ``L``, the next success is the attempt with the
  smallest CAS time among attempts whose read happened after ``L`` — a
  suffix-argmin over CAS times in read order, looked up in O(1).
* ``q > 0``: a success inserts ``q`` preamble steps before the process's
  next attempt, so event times are outcome-dependent; a heap-driven scan
  pops CAS events in time order and lazily schedules each process's next
  attempt.  Same greedy, same results, linear in the number of CAS events.

Both paths reconstruct the final shared memory (values *and* access
counters) in closed form from the per-process end state, so each
replicate's schedule, completion times and final memory are **bit-identical**
to what ``Simulator.run_batched`` produces for the same seed — enforced
replicate-by-replicate in ``tests/sim/test_ensemble_equivalence.py``.

Resolution runs **fused** by default: replicates with the same resolver
shape (same ``q``, ``s``, resolver kind — process counts may differ) are
stacked into one long schedule, with each replicate's pids offset into a
private range and its steps occupying a private time window, and the
whole stack is resolved in a single pass of the very same resolvers.
Concatenation preserves the greedy semantics exactly — reads in a later
replicate are strictly after every earlier CAS, so the successor chain
(and the heap pop order) cross replicate boundaries precisely at each
replicate's first success — making the fused outputs the per-replicate
outputs concatenated, bit for bit (``tests/sim/test_ensemble_fused.py``).
The two sequential inner loops (chain walk, heap scan) are delegated to
pluggable kernels (:mod:`repro.sim.kernels`): a compiled C/numba backend
when available, the pure-numpy oracle otherwise.

Crash schedules (halting failures, Corollary 2) are handled by **segmented
whole-schedule execution**: the horizon is split at the replicate's crash
boundaries, each segment's schedule is drawn with one ``select_batch``
call over the segment's active set (the same blocks — and therefore the
same RNG and scheduler-state consumption — that ``run_batched`` uses,
whose blocks never span a crash time), and the concatenated schedule is
resolved exactly as in the crash-free case.  That works because a crash
is pure schedule truncation: a crashed process simply stops appearing, so
its pending attempt never reaches its CAS (the pending CAS is dropped),
and the event-scan resolvers already treat an attempt cut short by the
horizon and one cut short by a crash identically; survivors' staleness
keeps being recomputed from the last committed value by the same greedy
scan.  Heterogeneous ensembles freely mix crashing and crash-free
replicates — equivalence is enforced across every scheduler family in
``tests/sim/test_ensemble_crash_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.executor import SimulationResult, validate_crash_times
from repro.sim.kernels import (
    NumpyKernel,
    get_kernel,
    resolve_flat,
    resolve_flat_stacked,
    resolve_heap,
    resolve_heap_stacked,
)
from repro.sim.memory import Memory
from repro.sim.trace import TraceRecorder

RngLike = Union[int, Tuple[int, ...], np.random.Generator, None]

_EMPTY = np.empty(0, dtype=np.int64)

#: ``fuse="auto"`` threshold for the numpy backend: below this many steps
#: per replicate, stacking wins (fewer python-level resolver passes);
#: above it, per-replicate arrays already amortize the pass overhead and
#: the stack's larger working set costs more than it saves (measured
#: crossover ~2-5k steps on the FIG5 shapes; see BENCH_PR7.json's
#: fused_sweep regression).  Compiled backends always profit from fusion
#: — their per-pass overhead is a single ctypes/jit call.
_AUTO_FUSE_NUMPY_MAX_STEPS = 4096


def _shard_block_worker(
    block_ids: Sequence[int],
    spec: Tuple,
    metas: Tuple,
    kernel_name: str,
) -> List[int]:
    """Resolve one chunk of fused schedule blocks in a shard worker.

    Task keys are *block indices* into the shared schedule segment (see
    :class:`repro.core.shm.ShardBlockBuffers`); ``metas[b]`` carries
    block ``b``'s resolver shape ``(use_flat, q, s, pid_base)``.  The
    worker attaches both segments, resolves each block with the stacked
    resolvers, and writes the fixed-layout outcome slab in place — only
    block indices ever cross the pickle pipe.  Retries rewrite identical
    bytes (resolution is a pure function of the schedule bytes), so the
    executor's retry/poison-split recovery is idempotent.
    """
    from repro.core.shm import ShardBlockBuffers

    schedule, outcomes = ShardBlockBuffers.attach(spec)
    _, _, sched_base, out_base, caps, ns = spec
    kernel = get_kernel(kernel_name)
    done: List[int] = []
    for block in block_ids:
        use_flat, q, s, pid_base = metas[block]
        pid_base = np.asarray(pid_base, dtype=np.int64)
        stacked = schedule[sched_base[block] : sched_base[block + 1]]
        if use_flat:
            resolved = resolve_flat_stacked(stacked, pid_base, s, kernel)
        else:
            resolved = resolve_heap_stacked(stacked, pid_base, q, s, kernel)
        succ_cols, succ_pids, succ_seqs, seq, phase, counts = resolved
        wins = int(succ_cols.shape[0])
        views = ShardBlockBuffers.block_views(
            outcomes, out_base[block], caps[block], ns[block]
        )
        views[0][0] = wins
        views[1][:wins] = succ_cols
        views[2][:wins] = succ_pids
        views[3][:wins] = succ_seqs
        views[4][:] = seq
        views[5][:] = phase
        views[6][:] = counts
        done.append(block)
    return done


def _resolve_flat(
    sched: np.ndarray, n: int, s: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Back-compat wrapper: :func:`repro.sim.kernels.resolve_flat` on the
    numpy oracle kernel (the resolvers moved to :mod:`repro.sim.kernels`
    so the fused path and the compiled backends can share them)."""
    return resolve_flat(sched, n, s, NumpyKernel())


def _resolve_heap(
    sched: np.ndarray, n: int, q: int, s: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Back-compat wrapper: :func:`repro.sim.kernels.resolve_heap` on the
    numpy oracle kernel."""
    return resolve_heap(sched, n, q, s, NumpyKernel())


@dataclass
class EnsembleReplicate:
    """One member of an ensemble: a workload plus its independent state.

    ``kernel`` is an array-encodable step kernel — an object exposing
    ``q`` (preamble steps), ``s`` (scan steps) and ``commit(memory, *,
    seq, phase, success_pids, success_seqs)`` — see
    :class:`repro.algorithms.counter.CounterStepKernel` and
    :class:`repro.algorithms.scu.ScuStepKernel`.  Factories built with
    ``cas_counter()`` / ``scu_algorithm()`` carry their kernel as a
    ``vector_kernel`` attribute.

    Replicates are fully independent: each brings its own process count,
    scheduler instance (stateful schedulers must not be shared), memory
    and RNG seed, so heterogeneous ensembles (mixed ``n``, mixed
    ``(q, s)``, crashing next to crash-free) are just lists of these.
    ``crash_times`` is the executor's ``{pid: time}`` halting-failure map:
    the process crashes just before the step at that time would be taken
    (times outside ``[1, max_steps]`` never fire, exactly as in
    :class:`repro.sim.Simulator`).
    """

    kernel: Any
    n_processes: int
    scheduler: Any
    memory: Optional[Memory] = None
    rng: RngLike = None
    crash_times: Optional[Dict[int, int]] = None


@dataclass
class ReplicateOutcome:
    """Resolved results of one replicate — the ensemble-side analogue of
    :class:`repro.sim.SimulationResult`, with arrays instead of lists."""

    n_processes: int
    steps_executed: int
    completion_times: np.ndarray  # int64, 1-based step times, ascending
    completion_pids: np.ndarray  # int64, aligned with completion_times
    step_counts: np.ndarray  # (n,) steps taken per process
    memory: Memory
    schedule: Optional[np.ndarray] = None  # int32 pid sequence, if recorded
    #: True when the run ended before its step budget because every
    #: process crashed (the executor's no-active-process early stop).
    stopped_early: bool = False
    #: The ``max_steps`` the replicate was asked for; differs from
    #: ``steps_executed`` only when the run stopped early.  ``None`` on
    #: outcomes built by hand — treated as ``steps_executed``.
    horizon: Optional[int] = None

    @property
    def total_completions(self) -> int:
        return int(self.completion_times.shape[0])

    def completions_of(self, pid: int) -> int:
        return int(np.count_nonzero(self.completion_pids == pid))

    def recorder(self) -> TraceRecorder:
        """Materialize a :class:`TraceRecorder` equal to what the serial
        engines would have produced, so every existing estimator
        (``system_latency`` and friends) applies unchanged."""
        recorder = TraceRecorder(
            self.n_processes,
            record_schedule=self.schedule is not None,
            record_completion_times=True,
        )
        if self.schedule is not None and self.schedule.size:
            recorder.schedule.extend(self.schedule)
        recorder.completion_times = self.completion_times.tolist()
        recorder.completion_pids = self.completion_pids.tolist()
        completions = np.bincount(
            self.completion_pids, minlength=self.n_processes
        )
        recorder.completions = {
            pid: int(completions[pid]) for pid in range(self.n_processes)
        }
        recorder.steps = {
            pid: int(self.step_counts[pid]) for pid in range(self.n_processes)
        }
        recorder.total_steps = self.steps_executed
        return recorder

    def to_simulation_result(self) -> SimulationResult:
        """Repackage as a :class:`SimulationResult` (no history support)."""
        return SimulationResult(
            steps_executed=self.steps_executed,
            recorder=self.recorder(),
            memory=self.memory,
            history=None,
            stopped_early=self.stopped_early,
            steps_this_run=self.steps_executed,
            completions_this_run=self.total_completions,
        )

    def measurement(self, *, burn_in: Optional[int] = None) -> Any:
        """A :class:`~repro.core.latency.LatencyMeasurement` computed
        straight from the outcome arrays — no recorder materialization.

        Bit-identical to feeding :meth:`recorder` through the estimator
        functions: completion times are ascending int64, so the
        post-burn-in window is one ``searchsorted`` slice, per-pid
        first/last completions are two scatter passes, and every latency
        is the same ``int64 / int`` division the scalar estimators
        perform.  Raises the same errors in the same cases.
        """
        from repro.core.latency import (
            LatencyMeasurement,
            _no_repeat_completion_error,
        )

        if burn_in is None:
            # measure_latencies defaults its burn-in from the *requested*
            # step budget, before knowing whether the run stops early.
            requested = (
                self.horizon if self.horizon is not None else self.steps_executed
            )
            drop = requested // 10
        else:
            drop = burn_in
        times = self.completion_times
        pids = self.completion_pids
        cut = int(np.searchsorted(times, drop, side="right"))
        times = times[cut:]
        pids = pids[cut:]
        n = self.n_processes
        counts = np.bincount(pids, minlength=n)
        first = np.zeros(n, dtype=np.int64)
        last = np.zeros(n, dtype=np.int64)
        # Reverse scatter: the earliest occurrence wins the `first` slot.
        first[pids[::-1]] = times[::-1]
        last[pids] = times
        individual = {
            pid: float((last[pid] - first[pid]) / (int(counts[pid]) - 1))
            for pid in range(n)
            if counts[pid] >= 2
        }
        if not individual:
            raise _no_repeat_completion_error(n, self.steps_executed, drop)
        return LatencyMeasurement(
            n_processes=n,
            steps=self.steps_executed,
            burn_in=drop,
            total_completions=self.total_completions,
            system_latency=float(
                (times[-1] - times[0]) / (times.shape[0] - 1)
            ),
            individual=individual,
            completion_rate=self.total_completions / self.steps_executed,
        )


@dataclass
class EnsembleResult:
    """Results of an ensemble run, with vectorized metric accessors.

    The per-metric methods return ``(R,)`` arrays aligned with the
    replicate order; ``measurements`` reproduces
    :func:`repro.core.latency.measure_latencies` bit-for-bit by feeding
    each materialized recorder through the very same estimator functions.
    """

    replicates: List[ReplicateOutcome]

    def __len__(self) -> int:
        return len(self.replicates)

    def __iter__(self) -> Iterator[ReplicateOutcome]:
        return iter(self.replicates)

    def __getitem__(self, index: int) -> ReplicateOutcome:
        return self.replicates[index]

    def recorders(self) -> List[TraceRecorder]:
        return [outcome.recorder() for outcome in self.replicates]

    def total_completions(self) -> np.ndarray:
        return np.asarray(
            [outcome.total_completions for outcome in self.replicates],
            dtype=np.int64,
        )

    def completion_rates(self) -> np.ndarray:
        """Completions per step, per replicate (Appendix B's metric)."""
        return self.total_completions() / np.asarray(
            [outcome.steps_executed for outcome in self.replicates], dtype=np.int64
        )

    def system_latencies(self, *, burn_in: int = 0) -> np.ndarray:
        from repro.core.latency import system_latency

        return np.asarray(
            [
                system_latency(outcome.recorder(), burn_in=burn_in)
                for outcome in self.replicates
            ]
        )

    def fairness_ratios(self, *, burn_in: int = 0) -> np.ndarray:
        """Per-replicate ``max individual / (n * system)`` (Lemma 7)."""
        from repro.core.latency import individual_latencies, system_latency

        ratios = []
        for outcome in self.replicates:
            recorder = outcome.recorder()
            individual = individual_latencies(recorder, burn_in=burn_in)
            ratios.append(
                max(individual.values())
                / (outcome.n_processes * system_latency(recorder, burn_in=burn_in))
            )
        return np.asarray(ratios)

    def measurements(self, *, burn_in: Optional[int] = None) -> List[Any]:
        """One :class:`~repro.core.latency.LatencyMeasurement` per
        replicate, bit-identical to ``measure_latencies(..., batched=True)``
        with the same seed (``burn_in`` defaults to ``steps // 10``, as
        there).  Computed array-side (:meth:`ReplicateOutcome.measurement`)
        — no recorders are materialized."""
        return [
            outcome.measurement(burn_in=burn_in) for outcome in self.replicates
        ]


class EnsembleSimulator:
    """Runs R independent replicates of SCU-shaped workloads as array
    operations, bit-identical to ``Simulator.run_batched`` per replicate.

    Parameters
    ----------
    replicates:
        The ensemble members (:class:`EnsembleReplicate`).  Heterogeneous
        ensembles are fine — each replicate brings its own kernel,
        process count, scheduler and seed.
    record_schedule:
        Keep each replicate's full schedule (memory proportional to
        ``R * steps``).
    telemetry:
        Optional metrics registry (see :mod:`repro.core.telemetry`).
        ``None`` (the default) keeps the engine entirely
        telemetry-free; when given, per-replicate counters settle once
        per replicate after resolution — the array passes never see it
        and results are bit-identical either way.
    fuse:
        Stack same-shape replicates (same ``q``, ``s``, resolver kind)
        into one schedule and resolve the whole block in a single pass.
        ``"auto"`` (the default) fuses whenever the backend profits:
        compiled backends always, the numpy backend only below
        ``_AUTO_FUSE_NUMPY_MAX_STEPS`` steps per replicate — above that
        crossover the stack's larger working set costs numpy more than
        the saved passes (the BENCH_PR7 fused_sweep regression).
        ``True`` always fuses; ``False`` resolves replicates one at a
        time — the pre-fusion behavior, kept as the comparison
        baseline.  Results are bit-identical in every mode (see the
        module docstring).
    engine_kernel:
        Backend for the sequential inner loops — one of ``"auto"``
        (fastest available, the default), ``"compiled"`` (require
        numba/C, warn and fall back to numpy when absent), ``"numpy"``,
        ``"numba"``, ``"cc"`` or ``"numba-parallel"``.  See
        :mod:`repro.sim.kernels`.
    fuse_block_steps:
        Cap on the stacked schedule length per fused block.  It bounds
        the resolver's working-set memory for very large ensembles, and
        the default (1M steps) keeps a block's arrays inside the cache
        sizes where the vectorized passes are fastest — larger blocks
        amortize no further, they just stream more memory.  A single
        replicate longer than the cap still resolves (in a block of its
        own).
    max_workers:
        Shard fused blocks across a process pool.  ``None`` (the
        default) and ``1`` resolve in-process; an int ``> 1`` fans the
        stacked blocks out over that many workers through shared-memory
        segments (:class:`repro.core.shm.ShardBlockBuffers` — array
        payloads never cross the pickle pipe), reassembling outcomes in
        canonical replicate order so results stay bit-identical to the
        single-core fused path, crash segmentation included.
        ``"auto"`` uses every available CPU — except inside an existing
        pool worker, where it resolves to 1
        (:func:`repro.core.runner.default_shard_workers`) so nested
        ensembles cannot oversubscribe the machine.  Sharding requires
        fusion: ``fuse=False`` with ``max_workers > 1`` is rejected.
    shard_pool_factory / shard_retry:
        Pool factory and :class:`~repro.core.runner.RetryPolicy` for
        the shard executor — fault-injection and tuning hooks
        (see :mod:`repro.testing.chaos`); defaults build a
        ``ProcessPoolExecutor`` with the standard policy.  Worker
        faults ride the executor's recovery ladder per block: retry
        with backoff, poison isolation, pool rebuild, serial fallback.

    The engine is **one-shot**: :meth:`run` may be called once (the
    resolution consumes the drawn schedules; there is no incremental
    process state to resume, unlike ``Simulator.run``).  Validation and
    planning errors inside :meth:`run` reset the guard — nothing has
    consumed RNG yet, so a failed build does not poison a retried
    ensemble.  Crash schedules are supported by segmented execution (see
    the module docstring); crash maps naming unknown pids are rejected
    at construction, exactly as :class:`repro.sim.Simulator` rejects
    them.
    """

    def __init__(
        self,
        replicates: Sequence[EnsembleReplicate],
        *,
        record_schedule: bool = False,
        telemetry: Optional[Any] = None,
        fuse: Union[bool, str] = "auto",
        engine_kernel: str = "auto",
        fuse_block_steps: int = 1_000_000,
        max_workers: Union[int, str, None] = None,
        shard_pool_factory: Optional[Any] = None,
        shard_retry: Optional[Any] = None,
        _resolver: str = "auto",
    ) -> None:
        members = list(replicates)
        if not members:
            raise ValueError("at least one replicate is required")
        if _resolver not in ("auto", "flat", "heap"):
            raise ValueError(f"unknown resolver {_resolver!r}")
        if fuse_block_steps < 1:
            raise ValueError("fuse_block_steps must be positive")
        if fuse not in (True, False, "auto"):
            raise ValueError(
                f"fuse must be True, False or 'auto', got {fuse!r}"
            )
        if max_workers is None:
            workers = 1
        elif max_workers == "auto":
            from repro.core.runner import default_shard_workers

            workers = default_shard_workers()
        elif isinstance(max_workers, int) and not isinstance(max_workers, bool):
            if max_workers < 1:
                raise ValueError("max_workers must be >= 1")
            workers = max_workers
        else:
            raise ValueError(
                f"max_workers must be None, 'auto' or a positive int, "
                f"got {max_workers!r}"
            )
        if fuse is False and workers > 1:
            raise ValueError(
                "max_workers > 1 shards fused schedule blocks, but "
                "fuse=False resolves replicates one at a time — pass "
                "fuse=True or fuse='auto', or drop max_workers"
            )
        for index, member in enumerate(members):
            if member.crash_times:
                # Crash schedules over known pids are fully supported (the
                # segmented draw handles them); what remains rejected is
                # exactly what Simulator rejects — crash maps naming
                # processes the replicate does not have.
                try:
                    validate_crash_times(member.crash_times, member.n_processes)
                except ValueError as error:
                    raise ValueError(
                        f"replicate {index}: {error} "
                        f"(n_processes={member.n_processes}); crash schedules "
                        "over known pids run on the ensemble engine — fall "
                        "back to Simulator.run_batched only for workloads "
                        "without a vector kernel"
                    ) from None
            if member.n_processes < 1:
                raise ValueError(
                    f"replicate {index}: n_processes must be positive"
                )
            kernel = member.kernel
            for attr in ("q", "s", "commit"):
                if not hasattr(kernel, attr):
                    raise TypeError(
                        f"replicate {index}: kernel {kernel!r} does not expose "
                        f"{attr!r}; pass a step kernel such as "
                        "CounterStepKernel or ScuStepKernel (factories from "
                        "cas_counter()/scu_algorithm() carry one as "
                        "`.vector_kernel`)"
                    )
            if kernel.q < 0 or kernel.s < 1:
                raise ValueError(
                    f"replicate {index}: kernel needs q >= 0 and s >= 1, "
                    f"got q={kernel.q}, s={kernel.s}"
                )
        self.replicates = members
        self.record_schedule = record_schedule
        self.telemetry = telemetry
        self._resolver = _resolver
        self._fuse = fuse
        self._fuse_block_steps = fuse_block_steps
        self._workers = workers
        self._shard_pool_factory = shard_pool_factory
        self._shard_retry = shard_retry
        self._kernel = get_kernel(engine_kernel)
        self._ran = False

    def run(self, max_steps: int) -> EnsembleResult:
        """Resolve ``max_steps`` steps of every replicate."""
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if self._ran:
            raise RuntimeError(
                f"EnsembleSimulator.run is one-shot and this "
                f"{len(self.replicates)}-replicate ensemble has already "
                "run; build a new EnsembleSimulator for another pass "
                "(construction is cheap — the fused path resolves whole "
                "replicate blocks in one vectorized pass) or use "
                "Simulator.run for incremental runs"
            )
        # Claim the guard before any RNG is consumed, but let pure
        # planning/validation failures release it: a plan error leaves
        # every replicate's RNG and scheduler state untouched, so
        # retrying the same ensemble is safe.  Once schedule drawing
        # starts, failures keep the guard — a partial draw has consumed
        # RNG, and a silent retry would produce different replicates.
        self._ran = True
        try:
            plan = self._plan_resolvers()
        except Exception:
            self._ran = False
            raise
        fuse = self._fuse
        if fuse == "auto":
            # Sharding is only expressible over stacked blocks, so a
            # multi-worker run always fuses; otherwise defer to the
            # per-backend crossover.
            fuse = self._workers > 1 or self._auto_fuse(
                self._kernel.name, max_steps
            )
        if not fuse:
            return EnsembleResult(
                [
                    self._run_replicate(member, max_steps, use_flat)
                    for member, use_flat in zip(self.replicates, plan)
                ]
            )
        return self._run_fused(plan, max_steps)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _auto_fuse(kernel_name: str, max_steps: int) -> bool:
        """The ``fuse="auto"`` decision, pinned by the fused test suite.

        Numpy pays per *pass*, not per call, so stacking only wins while
        replicates are small; compiled backends always profit (their
        per-call overhead is one ctypes/jit entry).  The boundary is the
        measured FIG5-shape crossover (see ``_AUTO_FUSE_NUMPY_MAX_STEPS``).
        """
        if kernel_name == "numpy":
            return max_steps < _AUTO_FUSE_NUMPY_MAX_STEPS
        return True

    def _plan_resolvers(self) -> List[bool]:
        """Pick the resolver per replicate; pure validation, no RNG."""
        plan = []
        for member in self.replicates:
            kernel = member.kernel
            use_flat = (
                kernel.q == 0
                if self._resolver == "auto"
                else self._resolver == "flat"
            )
            if use_flat and kernel.q != 0:
                raise ValueError("the flat resolver requires q == 0")
            plan.append(use_flat)
        return plan

    def _run_replicate(
        self, member: EnsembleReplicate, max_steps: int, use_flat: bool
    ) -> ReplicateOutcome:
        n = member.n_processes
        rng = (
            member.rng
            if isinstance(member.rng, np.random.Generator)
            else np.random.default_rng(member.rng)
        )
        schedule, stopped_early, segments = self._draw_schedule(
            member.scheduler, n, rng, max_steps, member.crash_times
        )
        kernel = member.kernel
        if use_flat:
            resolved = resolve_flat(schedule, n, kernel.s, self._kernel)
        else:
            resolved = resolve_heap(schedule, n, kernel.q, kernel.s, self._kernel)
        return self._finish_replicate(
            member, max_steps, schedule, resolved, stopped_early, segments
        )

    def _run_fused(self, plan: List[bool], max_steps: int) -> EnsembleResult:
        """Group same-shape replicates and resolve them block by block.

        Schedules are drawn first, in replicate order — the identical
        RNG/scheduler consumption as the per-replicate path (replicates
        sharing a Generator instance stay bit-identical).  Resolution
        then proceeds group-major: every replicate with the same
        ``(resolver, q, s)`` shape lands in the same group, split into
        blocks of at most ``fuse_block_steps`` stacked steps.
        """
        members = self.replicates
        draws = [
            self._draw_schedule(
                member.scheduler,
                member.n_processes,
                (
                    member.rng
                    if isinstance(member.rng, np.random.Generator)
                    else np.random.default_rng(member.rng)
                ),
                max_steps,
                member.crash_times,
            )
            for member in members
        ]
        blocks = self._pack_blocks(plan, draws)
        outcomes: List[Optional[ReplicateOutcome]] = [None] * len(members)
        total_steps = sum(draw[0].shape[0] for draw in draws)
        if self._workers > 1 and len(blocks) > 1 and total_steps > 0:
            self._run_sharded(blocks, draws, max_steps, outcomes)
        else:
            for indices, use_flat, q, s in blocks:
                self._resolve_block(
                    indices, draws, use_flat, q, s, max_steps, outcomes
                )
        return EnsembleResult(outcomes)  # type: ignore[arg-type]

    def _pack_blocks(
        self,
        plan: List[bool],
        draws: List[Tuple[np.ndarray, bool, int]],
    ) -> List[Tuple[List[int], bool, int, int]]:
        """Group same-shape replicates and greedy-pack them into blocks.

        Returns ``(indices, use_flat, q, s)`` per block, each block at
        most ``fuse_block_steps`` stacked steps.  When sharding, the cap
        additionally shrinks toward ~4 blocks per worker so small
        ensembles still spread across the pool (a single replicate
        larger than the cap still forms a block of its own — blocks
        never split a replicate).
        """
        cap = self._fuse_block_steps
        if self._workers > 1:
            total = sum(draw[0].shape[0] for draw in draws)
            cap = max(1, min(cap, -(-total // (self._workers * 4))))
        groups: Dict[Tuple[bool, int, int], List[int]] = {}
        for index, (member, use_flat) in enumerate(zip(self.replicates, plan)):
            key = (use_flat, int(member.kernel.q), int(member.kernel.s))
            groups.setdefault(key, []).append(index)
        blocks: List[Tuple[List[int], bool, int, int]] = []
        for (use_flat, q, s), indices in groups.items():
            start = 0
            while start < len(indices):
                stop = start + 1
                block_steps = draws[indices[start]][0].shape[0]
                while stop < len(indices) and (
                    block_steps + draws[indices[stop]][0].shape[0] <= cap
                ):
                    block_steps += draws[indices[stop]][0].shape[0]
                    stop += 1
                blocks.append((indices[start:stop], use_flat, q, s))
                start = stop
        return blocks

    def _run_sharded(
        self,
        blocks: List[Tuple[List[int], bool, int, int]],
        draws: List[Tuple[np.ndarray, bool, int]],
        max_steps: int,
        outcomes: List[Optional[ReplicateOutcome]],
    ) -> None:
        """Shard fused blocks across a worker pool over shared memory.

        The parent draws every schedule (so RNG/scheduler consumption is
        identical to the in-process fused path), writes the stacked
        blocks into a shared schedule segment, and fans block indices
        out through the :class:`~repro.core.runner.ResilientExecutor` —
        one block per chunk, so retry, poison isolation, pool rebuild
        and serial fallback all apply at block granularity.  Workers
        write fixed-layout outcome slabs in place; the parent splits and
        commits replicates from the slabs, so results are bit-identical
        to the single-core fused path, replicate for replicate, with
        crash segmentation (applied at draw time) preserved.  The
        segments are unlinked in ``finally`` — worker kills, hangs and
        poison blocks cannot leak ``/dev/shm`` entries.
        """
        from repro.core.runner import ResilientExecutor
        from repro.core.shm import ShardBlockBuffers, segment_digest

        members = self.replicates
        sizes: List[int] = []
        ns: List[int] = []
        caps: List[int] = []
        metas: List[Tuple] = []
        pid_bases: List[np.ndarray] = []
        time_bases: List[np.ndarray] = []
        for indices, use_flat, q, s in blocks:
            n_values = [members[i].n_processes for i in indices]
            pid_base = np.concatenate(([0], np.cumsum(n_values))).astype(np.int64)
            time_base = np.concatenate(
                ([0], np.cumsum([draws[i][0].shape[0] for i in indices]))
            ).astype(np.int64)
            steps = int(time_base[-1])
            n = int(pid_base[-1])
            sizes.append(steps)
            ns.append(n)
            # Upper bound on the block's successes: every completed
            # operation costs its process q + s + 1 steps.
            caps.append(steps // (q + s + 1) + n + 1)
            metas.append((use_flat, q, s, tuple(int(x) for x in pid_base)))
            pid_bases.append(pid_base)
            time_bases.append(time_base)
        digest = segment_digest(
            {
                "kind": "ensemble-shard",
                "replicates": len(members),
                "blocks": len(blocks),
                "steps": int(sum(sizes)),
                "max_steps": max_steps,
            }
        )
        telemetry = self.telemetry
        buffers = ShardBlockBuffers(
            sizes, ns, caps, digest, telemetry=telemetry
        )
        try:
            for b, (indices, _, _, _) in enumerate(blocks):
                offset = int(buffers.sched_base[b])
                pid_base = pid_bases[b]
                for k, index in enumerate(indices):
                    sched = draws[index][0]
                    stop = offset + sched.shape[0]
                    buffers.schedule[offset:stop] = sched + pid_base[k]
                    offset = stop
            executor = ResilientExecutor(
                _shard_block_worker,
                max_workers=self._workers,
                policy=self._shard_retry,
                pool_factory=self._shard_pool_factory,
                telemetry=telemetry,
            )
            executor.run(
                list(range(len(blocks))),
                (buffers.spec(), tuple(metas), self._kernel.name),
                chunk_size=1,
                collect=False,
            )
            if telemetry is not None and telemetry.enabled:
                telemetry.set_gauge("ensemble.shard_workers", self._workers)
                telemetry.inc("ensemble.shard_blocks", len(blocks))
                telemetry.inc(
                    "ensemble.shard_replicates",
                    sum(len(indices) for indices, _, _, _ in blocks),
                )
                telemetry.inc("ensemble.shard_steps", int(sum(sizes)))
                telemetry.inc(
                    "ensemble.shard_bytes",
                    int(buffers._sched_shm.size + buffers._out_shm.size),
                )
            for b, (indices, use_flat, q, s) in enumerate(blocks):
                views = ShardBlockBuffers.block_views(
                    buffers.outcomes,
                    int(buffers.out_base[b]),
                    int(caps[b]),
                    int(ns[b]),
                )
                wins = int(views[0][0])
                resolved = (
                    views[1][:wins].copy(),
                    views[2][:wins].copy(),
                    views[3][:wins].copy(),
                    views[4].copy(),
                    views[5].copy(),
                    views[6].copy(),
                )
                self._split_block(
                    indices,
                    draws,
                    resolved,
                    pid_bases[b],
                    time_bases[b],
                    max_steps,
                    outcomes,
                )
        finally:
            buffers.close()

    def _resolve_block(
        self,
        indices: List[int],
        draws: List[Tuple[np.ndarray, bool, int]],
        use_flat: bool,
        q: int,
        s: int,
        max_steps: int,
        outcomes: List[Optional[ReplicateOutcome]],
    ) -> None:
        """Stack one block of same-shape replicates, resolve, split back.

        Replicate ``k`` of the block occupies pids ``[pid_base[k],
        pid_base[k+1])`` and schedule positions ``[time_base[k],
        time_base[k+1])`` of the stack.  Successes come out ordered by
        (global) CAS position, so a ``searchsorted`` on the time bases
        splits them back per replicate; per-pid end state splits by the
        pid bases.
        """
        members = self.replicates
        scheds = [draws[i][0] for i in indices]
        n_values = [members[i].n_processes for i in indices]
        pid_base = np.concatenate(([0], np.cumsum(n_values))).astype(np.int64)
        time_base = np.concatenate(
            ([0], np.cumsum([sched.shape[0] for sched in scheds]))
        ).astype(np.int64)
        if len(indices) == 1:
            stacked = scheds[0]
        else:
            stacked = np.concatenate(
                [sched + base for sched, base in zip(scheds, pid_base[:-1])]
            )
        if use_flat:
            resolved = resolve_flat_stacked(stacked, pid_base, s, self._kernel)
        else:
            resolved = resolve_heap_stacked(stacked, pid_base, q, s, self._kernel)

        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("ensemble.fused_blocks")
            telemetry.inc("ensemble.fused_replicates", len(indices))
            telemetry.inc("ensemble.fused_steps", int(time_base[-1]))

        self._split_block(
            indices, draws, resolved, pid_base, time_base, max_steps, outcomes
        )

    def _split_block(
        self,
        indices: List[int],
        draws: List[Tuple[np.ndarray, bool, int]],
        resolved: Tuple[
            np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
        ],
        pid_base: np.ndarray,
        time_base: np.ndarray,
        max_steps: int,
        outcomes: List[Optional[ReplicateOutcome]],
    ) -> None:
        """Split one resolved stack back into per-replicate outcomes."""
        members = self.replicates
        succ_cols, succ_pids, succ_seqs, seq, phase, counts = resolved
        bounds = np.searchsorted(succ_cols, time_base)
        for k, index in enumerate(indices):
            member = members[index]
            span = slice(int(bounds[k]), int(bounds[k + 1]))
            pids = slice(int(pid_base[k]), int(pid_base[k + 1]))
            local = (
                succ_cols[span] - time_base[k],
                succ_pids[span] - pid_base[k],
                succ_seqs[span],
                seq[pids],
                phase[pids],
                counts[pids],
            )
            schedule, stopped_early, segments = draws[index]
            outcomes[index] = self._finish_replicate(
                member, max_steps, schedule, local, stopped_early, segments
            )

    def _finish_replicate(
        self,
        member: EnsembleReplicate,
        max_steps: int,
        schedule: np.ndarray,
        resolved: Tuple[
            np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
        ],
        stopped_early: bool,
        segments: int,
    ) -> ReplicateOutcome:
        """Commit a resolved replicate: memory, telemetry, outcome."""
        n = member.n_processes
        executed = int(schedule.shape[0])
        succ_cols, succ_pids, succ_seqs, seq, phase, counts = resolved
        memory = member.memory if member.memory is not None else Memory()
        member.kernel.commit(
            memory,
            seq=seq,
            phase=phase,
            success_pids=succ_pids,
            success_seqs=succ_seqs,
        )
        memory.total_operations += executed
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            wins = int(succ_cols.shape[0])
            crashes_fired = sum(
                1
                for crash_time in (member.crash_times or {}).values()
                if 1 <= crash_time <= max_steps
            )
            telemetry.inc("ensemble.replicates")
            telemetry.inc("ensemble.steps", executed)
            telemetry.inc("ensemble.completions", wins)
            telemetry.inc("ensemble.cas_wins", wins)
            telemetry.inc("ensemble.cas_losses", int(seq.sum()) - wins)
            telemetry.inc("ensemble.segments", segments)
            telemetry.inc("ensemble.crashes", crashes_fired)
            telemetry.emit(
                "sim.run",
                {
                    "engine": "ensemble",
                    "n_processes": n,
                    "steps": executed,
                    "completions": wins,
                    "step_counts": counts.astype(np.int64).tolist(),
                },
            )
        return ReplicateOutcome(
            n_processes=n,
            steps_executed=executed,
            completion_times=succ_cols + 1,  # executor time is 1-based
            completion_pids=np.ascontiguousarray(succ_pids, dtype=np.int64),
            step_counts=counts.astype(np.int64),
            memory=memory,
            schedule=schedule.astype(np.int32) if self.record_schedule else None,
            stopped_early=stopped_early,
            horizon=max_steps,
        )

    @staticmethod
    def _draw_schedule(
        scheduler: Any,
        n: int,
        rng: np.random.Generator,
        max_steps: int,
        crash_times: Optional[Dict[int, int]] = None,
    ) -> Tuple[np.ndarray, bool, int]:
        """Draw the whole schedule through the ``select_batch`` protocol.

        Element ``k`` of a batch corresponds to absolute time ``start + k``,
        and batched draws consume the RNG stream element-wise identically
        to sequential ``select`` calls, so one full-length draw matches
        ``run_batched``'s chunked draws bit for bit (chunk-size
        independence is part of the PR 1 protocol contract).

        With crashes the horizon is split at the crash boundaries and each
        segment is drawn over its own active set — exactly the block
        structure ``run_batched`` uses, whose blocks never span a crash
        time.  Returns the concatenated schedule, a flag that is True
        when the run ended early because every process crashed, and the
        number of segments drawn.
        """
        if max_steps == 0:
            return np.empty(0, dtype=np.int64), False, 0
        if getattr(scheduler, "observe_pending", None) is not None:
            raise ValueError(
                f"{type(scheduler).__name__} consumes per-step contention "
                "state (observe_pending); a whole-schedule draw cannot "
                "honour it — use the serial or batched engine"
            )
        select_batch = getattr(scheduler, "select_batch", None)

        def draw(start: int, active: List[int], length: int) -> np.ndarray:
            if select_batch is not None:
                pids = np.asarray(select_batch(start, active, rng, length))
            else:
                pids = np.asarray(
                    [
                        scheduler.select(start + k, active, rng)
                        for k in range(length)
                    ],
                    dtype=np.int64,
                )
            if pids.shape != (length,):
                raise RuntimeError(
                    f"scheduler returned {pids.shape} selections for a "
                    f"{length}-step block"
                )
            if len(active) == n:
                invalid = (pids < 0) | (pids >= n)
            else:
                invalid = ~np.isin(pids, np.asarray(active, dtype=np.int64))
            if invalid.any():
                position = int(np.argmax(invalid))
                raise RuntimeError(
                    f"scheduler selected inactive process "
                    f"{int(pids[position])} at t={start + position} "
                    f"(active: {active[:10]}"
                    f"{'...' if len(active) > 10 else ''})"
                )
            return pids.astype(np.int64)

        # A crash fires just before the step at its time would be taken;
        # times outside [1, max_steps] never fire (Simulator semantics).
        crashes: Dict[int, List[int]] = {}
        for pid, crash_time in (crash_times or {}).items():
            if 1 <= crash_time <= max_steps:
                crashes.setdefault(crash_time, []).append(pid)
        if not crashes:
            return draw(1, list(range(n)), max_steps), False, 1

        alive = set(range(n))
        active = sorted(alive)
        chunks: List[np.ndarray] = []
        time = 1
        stopped_early = False
        for boundary in sorted(crashes):
            if boundary > time:
                chunks.append(draw(time, active, boundary - time))
                time = boundary
            alive.difference_update(crashes[boundary])
            active = sorted(alive)
            if not active:
                # Crash containment emptied A_tau: the run ends with the
                # boundary - 1 steps already drawn, matching run_batched's
                # no-active-process early stop.
                stopped_early = True
                break
        else:
            chunks.append(draw(time, active, max_steps - time + 1))
        if not chunks:
            return np.empty(0, dtype=np.int64), stopped_early, 0
        return np.concatenate(chunks), stopped_early, len(chunks)
