"""Schedule recording via atomic fetch-and-increment (Appendix A.2).

The paper records hardware schedules like this: "each process repeatedly
calls [an atomic fetch-and-increment] operation, and records the values
received.  We then sort the values of each process to recover the total
order of steps."  This module reproduces that *methodology* on the
simulator, so the recording pipeline itself is exercised — and, unlike
on hardware, the recovered schedule can be compared with the truth.

It also reproduces the paper's observation about their second method
(timestamping): an instrument that delays its caller *perturbs* the
measured schedule ("a process is less likely to be scheduled twice in
succession" — with a per-record delay, consecutive self-selections are
invisible to the recording).  ``delay > 0`` adds that instrumentation
cost so the bias is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.ops import FetchAndIncrement, Nop
from repro.sim.process import ProcessFactory, ProcessGenerator

TICKET_REGISTER = "schedule_ticket"


@dataclass
class ScheduleRecording:
    """The outcome of a fetch-and-increment schedule recording.

    Attributes
    ----------
    recovered:
        The schedule reconstructed by sorting each process's received
        ticket values — what the paper's hardware method yields.  Only
        recording steps appear; instrumentation steps are invisible.
    actual:
        The true schedule as the executor saw it (every step).
    """

    recovered: np.ndarray
    actual: np.ndarray

    def agreement(self) -> float:
        """Fraction of recovered entries equal to the true schedule's
        recording steps, in order.  1.0 means perfect recovery."""
        if self.recovered.size == 0:
            raise ValueError("empty recording")
        limit = min(self.recovered.size, self.actual.size)
        return float(np.mean(self.recovered[:limit] == self.actual[:limit]))


def record_schedule(
    scheduler,
    n_processes: int,
    steps: int,
    *,
    delay: int = 0,
    register: str = TICKET_REGISTER,
    rng=None,
) -> ScheduleRecording:
    """Record a schedule with the paper's fetch-and-increment method.

    Each process repeatedly performs an atomic F&I and locally records
    the values it receives; ``delay`` extra steps after each record
    model instrumentation cost (the paper's timer method).  With
    ``delay == 0`` every step is a recording step and recovery is exact.
    """
    if delay < 0:
        raise ValueError("delay must be non-negative")
    received: List[List[int]] = [[] for _ in range(n_processes)]

    def factory(pid: int) -> ProcessGenerator:
        while True:
            ticket = yield FetchAndIncrement(register)
            received[pid].append(ticket)
            for _ in range(delay):
                yield Nop()

    memory = Memory()
    memory.register(register, 0)
    simulator = Simulator(
        factory,
        scheduler,
        n_processes=n_processes,
        memory=memory,
        record_schedule=True,
        rng=rng,
    )
    simulator.run(steps)

    total = sum(len(values) for values in received)
    recovered = np.full(total, -1, dtype=np.int64)
    for pid, values in enumerate(received):
        for ticket in values:
            if 0 <= ticket < total:
                recovered[ticket] = pid
    # Tickets issued whose result has not yet been recorded (the
    # one-op-ahead pipeline may hold the last result in flight) show as
    # -1 at the tail; trim them.
    valid = recovered >= 0
    if not valid.all():
        first_bad = int(np.argmin(valid))
        recovered = recovered[:first_bad]
    return ScheduleRecording(
        recovered=recovered,
        actual=simulator.recorder.schedule.as_array(),
    )
