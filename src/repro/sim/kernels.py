"""Pluggable CAS-resolution kernels for the ensemble engine.

The ensemble engine (:mod:`repro.sim.ensemble`) reduces a replicate to a
greedy scan over (read, CAS) event pairs.  Almost all of that work is
numpy array passes, but two inner loops are inherently sequential:

* the ``q == 0`` successor-pointer **chain walk** (each success is found
  by one pointer lookup from the previous success — pure pointer
  chasing, no SIMD formulation beats a tight scalar loop), and
* the ``q > 0`` **heap scan** (a success inserts ``q`` preamble steps
  before the process's next attempt, so event times are outcome
  dependent and must be scheduled lazily).

This module isolates exactly those two loops behind a small kernel
interface so they can be swapped for compiled implementations:

``numpy``
    The pure-Python reference loops (list-based walk, ``heapq`` scan).
    Always available; serves as the bit-identity *oracle* in tests.
``cc``
    A tiny C library compiled on first use with the system C compiler
    (``cc``/``gcc``) and loaded through :mod:`ctypes`.  No third-party
    packages required; the shared object is cached on disk keyed by a
    hash of the C source.
``numba``
    ``@njit``-compiled versions of the same loops, used when numba is
    importable (it is an optional dependency — CI has a dedicated job
    for it).
``numba-parallel``
    The numba loops plus ``parallel=True`` *stacked* entry points
    (``chain_walk_stacked`` / ``heap_scan_stacked``): the fused
    multi-replicate path hands them one independent walk/scan per
    stacked replicate, resolved under ``numba.prange`` — every
    replicate writes a disjoint output slice, so thread scheduling
    cannot change a bit.

The compiled heap scans (cc and both numba variants) store the heap as
a *single* packed ``int64`` array — ``(CAS column << shift) | pid`` —
instead of parallel key/pid arrays, and sift with a branchless child
select.  CAS columns are unique, so packed comparisons order exactly
like ``(key, pid)`` tuples and the numpy ``heapq`` oracle.

Every backend implements the *same* greedy scan: CAS keys are unique
schedule positions, so pop order — and therefore every output array —
is deterministic and bit-identical across backends.  Equivalence is
enforced in ``tests/sim/test_kernels.py`` with the numpy backend as
oracle.

Selection goes through :func:`get_kernel`:

* ``"auto"`` — fastest available backend (numba, then cc, then numpy).
* ``"compiled"`` — require a compiled backend; warn once and fall back
  to numpy when none can be built.
* ``"numpy"`` / ``"numba"`` / ``"cc"`` / ``"numba-parallel"`` — that
  backend exactly (:class:`KernelUnavailable` when it cannot be
  provided).

The full resolvers (:func:`resolve_flat`, :func:`resolve_heap`) also
live here — they are shared verbatim by the per-replicate path and the
fused multi-replicate path, which calls their stacked variants
(:func:`resolve_flat_stacked`, :func:`resolve_heap_stacked`) on
concatenated schedules (see ``EnsembleSimulator``).
"""

from __future__ import annotations

import ctypes
import hashlib
import heapq
import os
import shutil
import subprocess
import tempfile
import warnings
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "KernelUnavailable",
    "NumpyKernel",
    "CcKernel",
    "NumbaKernel",
    "NumbaParallelKernel",
    "KERNEL_NAMES",
    "get_kernel",
    "available_backends",
    "kernel_diagnostics",
    "resolve_flat",
    "resolve_heap",
    "resolve_flat_stacked",
    "resolve_heap_stacked",
]

KERNEL_NAMES = ("auto", "compiled", "numpy", "numba", "cc", "numba-parallel")

#: Explicitly selectable backends (everything but the meta names).
_EXPLICIT_BACKENDS = ("numpy", "numba", "cc", "numba-parallel")

_EMPTY = np.empty(0, dtype=np.int64)


class KernelUnavailable(RuntimeError):
    """Raised when an explicitly requested backend cannot be provided."""


# ---------------------------------------------------------------------------
# numpy (pure-Python) backend — the oracle
# ---------------------------------------------------------------------------


class NumpyKernel:
    """Reference implementation of the two sequential loops.

    ``chain_walk`` follows successor pointers through a Python list (a
    ``tolist`` round-trip beats repeated array indexing at these sizes);
    ``heap_scan`` is the original ``heapq``-driven greedy.  Both are the
    bit-identity oracle for the compiled backends.
    """

    name = "numpy"

    @staticmethod
    def chain_walk(successor: np.ndarray, start: int) -> np.ndarray:
        successor_list = successor.tolist()
        chain: List[int] = []
        append = chain.append
        event = start
        while event != -1:
            append(event)
            event = successor_list[event]
        return np.asarray(chain, dtype=np.intp)

    @staticmethod
    def heap_scan(
        order: np.ndarray, offsets: np.ndarray, n: int, q: int, s: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        order_list = order.tolist()
        bounds = offsets.tolist()
        next_read = [q] * n  # local index of the pending attempt's first read
        seq_list = [0] * n
        heap: List[Tuple[int, int]] = []
        for pid in range(n):
            if bounds[pid] + q + s < bounds[pid + 1]:
                heap.append((order_list[bounds[pid] + q + s], pid))
        heapq.heapify(heap)
        push, pop = heapq.heappush, heapq.heappop

        last = -1
        succ_cols: List[int] = []
        succ_pids: List[int] = []
        succ_seqs: List[int] = []
        while heap:
            cas_col, pid = pop(heap)
            base = bounds[pid]
            read_local = next_read[pid]
            sequence = seq_list[pid]
            seq_list[pid] = sequence + 1
            if order_list[base + read_local] > last:
                last = cas_col
                succ_cols.append(cas_col)
                succ_pids.append(pid)
                succ_seqs.append(sequence)
                advanced = read_local + s + 1 + q  # completion: fresh preamble
            else:
                advanced = read_local + s + 1  # failed CAS: rescan immediately
            next_read[pid] = advanced
            if base + advanced + s < bounds[pid + 1]:
                push(heap, (order_list[base + advanced + s], pid))
        return (
            np.asarray(succ_cols, dtype=np.int64),
            np.asarray(succ_pids, dtype=np.int64),
            np.asarray(succ_seqs, dtype=np.int64),
            np.asarray(seq_list, dtype=np.int64),
            np.asarray(next_read, dtype=np.int64),
        )


# ---------------------------------------------------------------------------
# cc backend — build a tiny C library with the system compiler at first use
# ---------------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>

/* Follow successor pointers from `start`; -1 terminates.  Returns the
 * number of events written to `out` (caller sizes it to len(successor)). */
int64_t repro_chain_walk(const int64_t *successor, int64_t start,
                         int64_t *out) {
    int64_t count = 0;
    int64_t event = start;
    while (event != -1) {
        out[count++] = event;
        event = successor[event];
    }
    return count;
}

/* Array binary min-heap over packed (key << shift) | pid entries — one
 * contiguous int64 array instead of parallel key/pid arrays, so the
 * sift touches a single cache stream.  Keys are unique schedule
 * positions, so packed comparisons order exactly like (key, pid) and
 * pop order matches any other correct heap (Python's heapq included).
 * The child select is branchless: the buffer is sized size + 1, so
 * heap[child + 1] is always a readable (if logically dead) slot and
 * the comparison folds into an unpredictable-branch-free index bump. */
static void sift_down(int64_t *heap, int64_t size, int64_t pos) {
    int64_t item = heap[pos];
    for (;;) {
        int64_t child = 2 * pos + 1;
        if (child >= size)
            break;
        child += (int64_t)((child + 1 < size) & (heap[child + 1] < heap[child]));
        if (heap[child] >= item)
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

/* Heap-driven greedy CAS resolution; mirrors the heapq reference loop
 * exactly (success iff the pending read position exceeds the last
 * success; a success costs q extra preamble steps).  `shift` is the
 * pid bit width of the packed heap entries.  Returns the number of
 * successes written. */
int64_t repro_heap_scan(const int64_t *order, const int64_t *offsets,
                        int64_t n, int64_t q, int64_t s, int64_t shift,
                        int64_t *succ_cols, int64_t *succ_pids,
                        int64_t *succ_seqs, int64_t *seq, int64_t *next_read,
                        int64_t *heap) {
    const int64_t mask = ((int64_t)1 << shift) - 1;
    int64_t size = 0;
    for (int64_t pid = 0; pid < n; pid++) {
        seq[pid] = 0;
        next_read[pid] = q;
        if (offsets[pid] + q + s < offsets[pid + 1]) {
            heap[size] = (order[offsets[pid] + q + s] << shift) | pid;
            size++;
        }
    }
    for (int64_t i = size / 2 - 1; i >= 0; i--)
        sift_down(heap, size, i);

    int64_t last = -1;
    int64_t wins = 0;
    while (size > 0) {
        int64_t cas_col = heap[0] >> shift;
        int64_t pid = heap[0] & mask;
        int64_t base = offsets[pid];
        int64_t read_local = next_read[pid];
        int64_t sequence = seq[pid];
        seq[pid] = sequence + 1;
        int64_t advanced;
        if (order[base + read_local] > last) {
            last = cas_col;
            succ_cols[wins] = cas_col;
            succ_pids[wins] = pid;
            succ_seqs[wins] = sequence;
            wins++;
            advanced = read_local + s + 1 + q;
        } else {
            advanced = read_local + s + 1;
        }
        next_read[pid] = advanced;
        if (base + advanced + s < offsets[pid + 1]) {
            /* pop + push fused: replace the root, sift down */
            heap[0] = (order[base + advanced + s] << shift) | pid;
            sift_down(heap, size, 0);
        } else {
            size--;
            if (size > 0) {
                heap[0] = heap[size];
                sift_down(heap, size, 0);
            }
        }
    }
    return wins;
}
"""

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")


def _kernel_cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro-kernels")
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _build_cc_library() -> ctypes.CDLL:
    """Compile (or reuse) the C kernels and load them via ctypes.

    The shared object is cached keyed by a hash of the source, so the
    compiler runs at most once per source revision per machine; the
    build is crash-safe (compile to a temp name, ``os.replace`` into
    place) so concurrent workers never load a torn file.
    """
    compiler = (
        os.environ.get("REPRO_CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None:
        raise KernelUnavailable("no C compiler found (cc/gcc/clang)")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _kernel_cache_dir()
    so_path = os.path.join(cache_dir, f"resolve_{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache_dir, exist_ok=True)
        tag = f".{os.getpid()}.tmp"
        c_path = so_path + tag + ".c"
        tmp_so = so_path + tag
        try:
            with open(c_path, "w") as handle:
                handle.write(_C_SOURCE)
            result = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if result.returncode != 0:
                raise KernelUnavailable(
                    f"C kernel build failed ({compiler}): "
                    f"{result.stderr.strip()[:500]}"
                )
            os.replace(tmp_so, so_path)
        except (OSError, subprocess.SubprocessError) as error:
            raise KernelUnavailable(f"C kernel build failed: {error}") from None
        finally:
            for leftover in (c_path, tmp_so):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    try:
        library = ctypes.CDLL(so_path)
    except OSError as error:
        raise KernelUnavailable(f"cannot load {so_path}: {error}") from None
    library.repro_chain_walk.argtypes = [_I64, ctypes.c_int64, _I64]
    library.repro_chain_walk.restype = ctypes.c_int64
    library.repro_heap_scan.argtypes = [
        _I64,
        _I64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        _I64,
        _I64,
        _I64,
        _I64,
        _I64,
        _I64,
    ]
    library.repro_heap_scan.restype = ctypes.c_int64
    return library


def _pid_shift(n_pids: int, max_key: int) -> int:
    """Bit width reserved for the pid in a packed ``(key << shift) | pid``
    heap entry, validated against int64 overflow.

    Keys are schedule columns, so ``max_key`` is the stacked schedule
    length; overflow would need ``steps * pids`` beyond ``2**62`` —
    unreachable for any storable schedule, but checked loudly anyway.
    """
    shift = max(1, (n_pids - 1).bit_length()) if n_pids > 1 else 1
    if max_key > 0 and max_key.bit_length() + shift > 62:
        raise ValueError(
            f"schedule of {max_key} steps over {n_pids} processes cannot "
            "pack into int64 heap entries"
        )
    return shift


class _CompiledKernelBase:
    """Shared buffer management for compiled backends.

    Subclasses provide ``_chain_walk_impl`` / ``_heap_scan_impl`` with
    the fill-the-caller's-buffers signature; this base allocates exactly
    sized outputs.  Success counts are bounded a priori: every success
    consumes ``q + s + 1`` local steps of its process, so a schedule of
    ``T`` steps over ``n`` processes yields at most ``T // (q + s + 1) + n``
    successes.
    """

    name = "compiled"

    def chain_walk(self, successor: np.ndarray, start: int) -> np.ndarray:
        successor = np.ascontiguousarray(successor, dtype=np.int64)
        out = np.empty(successor.shape[0], dtype=np.int64)
        count = self._chain_walk_impl(successor, start, out)
        return out[: int(count)]

    def heap_scan(
        self, order: np.ndarray, offsets: np.ndarray, n: int, q: int, s: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        order = np.ascontiguousarray(order, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        cap = order.shape[0] // (q + s + 1) + n + 1
        succ_cols = np.empty(cap, dtype=np.int64)
        succ_pids = np.empty(cap, dtype=np.int64)
        succ_seqs = np.empty(cap, dtype=np.int64)
        seq = np.empty(n, dtype=np.int64)
        next_read = np.empty(n, dtype=np.int64)
        # One packed entry per pid, plus a readable slot past the end for
        # the branchless child select.
        heap = np.empty(n + 1, dtype=np.int64)
        shift = _pid_shift(n, int(order.shape[0]))
        wins = int(
            self._heap_scan_impl(
                order,
                offsets,
                n,
                q,
                s,
                shift,
                succ_cols,
                succ_pids,
                succ_seqs,
                seq,
                next_read,
                heap,
            )
        )
        return (
            succ_cols[:wins].copy(),
            succ_pids[:wins].copy(),
            succ_seqs[:wins].copy(),
            seq,
            next_read,
        )


class CcKernel(_CompiledKernelBase):
    """C implementations built with the system compiler, via ctypes."""

    name = "cc"

    def __init__(self, library: Optional[ctypes.CDLL] = None) -> None:
        self._library = library if library is not None else _build_cc_library()

    def _chain_walk_impl(
        self, successor: np.ndarray, start: int, out: np.ndarray
    ) -> int:
        return self._library.repro_chain_walk(successor, start, out)

    def _heap_scan_impl(self, *args: Any) -> int:
        return self._library.repro_heap_scan(*args)


def _build_numba_impls() -> Tuple[Any, Any]:
    import numba  # noqa: F401 — optional dependency

    @numba.njit(cache=False)
    def chain_walk(successor, start, out):  # pragma: no cover — needs numba
        count = 0
        event = start
        while event != -1:
            out[count] = event
            count += 1
            event = successor[event]
        return count

    @numba.njit(cache=False)
    def heap_scan(
        order,
        offsets,
        n,
        q,
        s,
        shift,
        succ_cols,
        succ_pids,
        succ_seqs,
        seq,
        next_read,
        heap,
    ):  # pragma: no cover — needs numba
        # Packed (key << shift) | pid heap with a branchless child
        # select — mirrors the C implementation entry for entry.  The
        # heap buffer holds n + 1 slots, so heap[child + 1] is always a
        # readable (if logically dead) slot.
        mask = (np.int64(1) << shift) - 1
        size = 0
        for pid in range(n):
            seq[pid] = 0
            next_read[pid] = q
            if offsets[pid] + q + s < offsets[pid + 1]:
                heap[size] = (order[offsets[pid] + q + s] << shift) | pid
                size += 1
        for root in range(size // 2 - 1, -1, -1):
            pos = root
            item = heap[pos]
            while True:
                child = 2 * pos + 1
                if child >= size:
                    break
                child += 1 * ((child + 1 < size) & (heap[child + 1] < heap[child]))
                if heap[child] >= item:
                    break
                heap[pos] = heap[child]
                pos = child
            heap[pos] = item

        last = np.int64(-1)
        wins = 0
        while size > 0:
            cas_col = heap[0] >> shift
            pid = heap[0] & mask
            base = offsets[pid]
            read_local = next_read[pid]
            sequence = seq[pid]
            seq[pid] = sequence + 1
            if order[base + read_local] > last:
                last = cas_col
                succ_cols[wins] = cas_col
                succ_pids[wins] = pid
                succ_seqs[wins] = sequence
                wins += 1
                advanced = read_local + s + 1 + q
            else:
                advanced = read_local + s + 1
            next_read[pid] = advanced
            if base + advanced + s < offsets[pid + 1]:
                heap[0] = (order[base + advanced + s] << shift) | pid
            else:
                size -= 1
                if size > 0:
                    heap[0] = heap[size]
                else:
                    continue
            pos = 0
            item = heap[0]
            while True:
                child = 2 * pos + 1
                if child >= size:
                    break
                child += 1 * ((child + 1 < size) & (heap[child + 1] < heap[child]))
                if heap[child] >= item:
                    break
                heap[pos] = heap[child]
                pos = child
            heap[pos] = item
        return wins

    return chain_walk, heap_scan


def _build_numba_parallel_impls() -> Tuple[Any, Any]:
    """The ``parallel=True`` stacked variants: one prange iteration per
    stacked replicate, each running the very same scalar loop over its
    own pid/rank range and writing a disjoint output slice."""
    import numba  # noqa: F401 — optional dependency

    @numba.njit(parallel=True, cache=False)
    def chain_walk_many(
        successor, starts, rank_base, out, counts_out
    ):  # pragma: no cover — needs numba
        for k in numba.prange(starts.shape[0]):
            count = 0
            event = starts[k]
            stop = rank_base[k + 1]
            base = rank_base[k]
            while event != -1 and event < stop:
                out[base + count] = event
                count += 1
                event = successor[event]
            counts_out[k] = count

    @numba.njit(parallel=True, cache=False)
    def heap_scan_many(
        order,
        offsets,
        pid_base,
        q,
        s,
        shift,
        succ_cols,
        succ_pids,
        succ_seqs,
        seq,
        next_read,
        cap_base,
        wins_out,
    ):  # pragma: no cover — needs numba
        mask = (np.int64(1) << shift) - 1
        for k in numba.prange(pid_base.shape[0] - 1):
            lo = pid_base[k]
            hi = pid_base[k + 1]
            # Replicates are time-partitioned, so a per-replicate scan
            # starting from last = -1 pops exactly this replicate's
            # slice of the fused pop sequence (see resolve_heap's
            # docstring); pids pack relative to lo so `shift` only needs
            # the widest replicate, not the whole stack.
            heap = np.empty(hi - lo + 1, dtype=np.int64)
            size = 0
            for pid in range(lo, hi):
                seq[pid] = 0
                next_read[pid] = q
                if offsets[pid] + q + s < offsets[pid + 1]:
                    heap[size] = (order[offsets[pid] + q + s] << shift) | (
                        pid - lo
                    )
                    size += 1
            for root in range(size // 2 - 1, -1, -1):
                pos = root
                item = heap[pos]
                while True:
                    child = 2 * pos + 1
                    if child >= size:
                        break
                    child += 1 * (
                        (child + 1 < size) & (heap[child + 1] < heap[child])
                    )
                    if heap[child] >= item:
                        break
                    heap[pos] = heap[child]
                    pos = child
                heap[pos] = item

            last = np.int64(-1)
            wins = 0
            out = cap_base[k]
            while size > 0:
                cas_col = heap[0] >> shift
                pid = lo + (heap[0] & mask)
                base = offsets[pid]
                read_local = next_read[pid]
                sequence = seq[pid]
                seq[pid] = sequence + 1
                if order[base + read_local] > last:
                    last = cas_col
                    succ_cols[out + wins] = cas_col
                    succ_pids[out + wins] = pid
                    succ_seqs[out + wins] = sequence
                    wins += 1
                    advanced = read_local + s + 1 + q
                else:
                    advanced = read_local + s + 1
                next_read[pid] = advanced
                if base + advanced + s < offsets[pid + 1]:
                    heap[0] = (order[base + advanced + s] << shift) | (pid - lo)
                else:
                    size -= 1
                    if size > 0:
                        heap[0] = heap[size]
                    else:
                        continue
                pos = 0
                item = heap[0]
                while True:
                    child = 2 * pos + 1
                    if child >= size:
                        break
                    child += 1 * (
                        (child + 1 < size) & (heap[child + 1] < heap[child])
                    )
                    if heap[child] >= item:
                        break
                    heap[pos] = heap[child]
                    pos = child
                heap[pos] = item
            wins_out[k] = wins

    return chain_walk_many, heap_scan_many


class NumbaKernel(_CompiledKernelBase):
    """``@njit`` implementations; importable only when numba is present."""

    name = "numba"

    def __init__(self) -> None:
        try:
            chain_walk, heap_scan = _build_numba_impls()
        except ImportError:
            raise KernelUnavailable("numba is not installed") from None
        self._chain_walk_jit = chain_walk
        self._heap_scan_jit = heap_scan

    def _chain_walk_impl(
        self, successor: np.ndarray, start: int, out: np.ndarray
    ) -> int:
        return self._chain_walk_jit(successor, start, out)

    def _heap_scan_impl(self, *args: Any) -> int:
        return self._heap_scan_jit(*args)


class NumbaParallelKernel(NumbaKernel):
    """Numba backend with ``parallel=True`` stacked entry points.

    The scalar ``chain_walk`` / ``heap_scan`` are inherited (the unfused
    and single-replicate paths), while the fused resolvers detect the
    ``*_stacked`` methods and hand over one independent walk/scan per
    stacked replicate, executed under ``numba.prange``.  Every replicate
    writes a disjoint slice of the preallocated outputs, so thread
    scheduling cannot change a bit — results stay identical to the
    sequential fused pass, which tests enforce against the numpy oracle.
    """

    name = "numba-parallel"

    def __init__(self) -> None:
        super().__init__()
        chain_walk_many, heap_scan_many = _build_numba_parallel_impls()
        self._chain_walk_many_jit = chain_walk_many
        self._heap_scan_many_jit = heap_scan_many

    def chain_walk_stacked(
        self, successor: np.ndarray, starts: np.ndarray, rank_base: np.ndarray
    ) -> np.ndarray:
        """Per-replicate chain walks over a fused successor array.

        ``starts[k]`` is replicate ``k``'s first success (or -1), and its
        walk is cut at ``rank_base[k + 1]`` — exactly where the global
        fused chain crosses into replicate ``k + 1`` — so concatenating
        the per-replicate walks reproduces the global walk bit for bit.
        """
        successor = np.ascontiguousarray(successor, dtype=np.int64)
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        rank_base = np.ascontiguousarray(rank_base, dtype=np.int64)
        out = np.empty(max(1, successor.shape[0]), dtype=np.int64)
        counts = np.empty(starts.shape[0], dtype=np.int64)
        self._chain_walk_many_jit(successor, starts, rank_base, out, counts)
        lengths = rank_base[1:] - rank_base[:-1]
        total = int(rank_base[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            rank_base[:-1], lengths
        )
        return out[:total][within < np.repeat(counts, lengths)]

    def heap_scan_stacked(
        self,
        order: np.ndarray,
        offsets: np.ndarray,
        pid_base: np.ndarray,
        q: int,
        s: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-replicate heap scans over a fused stack, prange-parallel.

        Output contract matches ``heap_scan`` on the whole stack: the
        per-replicate success slices concatenate in replicate (= time)
        order, which is exactly the global pop order.
        """
        order = np.ascontiguousarray(order, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        pid_base = np.ascontiguousarray(pid_base, dtype=np.int64)
        n = int(pid_base[-1])
        n_of = pid_base[1:] - pid_base[:-1]
        steps_of = offsets[pid_base[1:]] - offsets[pid_base[:-1]]
        caps = steps_of // (q + s + 1) + n_of + 1
        cap_base = np.concatenate(([0], np.cumsum(caps))).astype(np.int64)
        shift = _pid_shift(int(n_of.max()), int(order.shape[0]))
        succ_cols = np.empty(int(cap_base[-1]), dtype=np.int64)
        succ_pids = np.empty(int(cap_base[-1]), dtype=np.int64)
        succ_seqs = np.empty(int(cap_base[-1]), dtype=np.int64)
        seq = np.empty(n, dtype=np.int64)
        next_read = np.empty(n, dtype=np.int64)
        wins = np.empty(pid_base.shape[0] - 1, dtype=np.int64)
        self._heap_scan_many_jit(
            order,
            offsets,
            pid_base,
            q,
            s,
            shift,
            succ_cols,
            succ_pids,
            succ_seqs,
            seq,
            next_read,
            cap_base,
            wins,
        )
        within = np.arange(int(cap_base[-1]), dtype=np.int64) - np.repeat(
            cap_base[:-1], caps
        )
        keep = within < np.repeat(wins, caps)
        return (
            succ_cols[keep],
            succ_pids[keep],
            succ_seqs[keep],
            seq,
            next_read,
        )


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

_KERNELS: Dict[str, Any] = {}
_FAILURES: Dict[str, str] = {}
_WARNED_FALLBACK = False


def _try_backend(name: str) -> Optional[Any]:
    if name in _KERNELS:
        return _KERNELS[name]
    if name in _FAILURES:
        return None
    try:
        if name == "numpy":
            kernel: Any = NumpyKernel()
        elif name == "cc":
            kernel = CcKernel()
        elif name == "numba":
            kernel = NumbaKernel()
        elif name == "numba-parallel":
            kernel = NumbaParallelKernel()
        else:  # pragma: no cover — guarded by get_kernel
            raise ValueError(f"unknown backend {name!r}")
    except KernelUnavailable as error:
        _FAILURES[name] = str(error)
        return None
    _KERNELS[name] = kernel
    return kernel


def get_kernel(name: str = "auto") -> Any:
    """Return a resolution kernel for ``name`` (see module docstring).

    ``"auto"`` silently picks the fastest available backend;
    ``"compiled"`` warns (once) and falls back to numpy when no compiled
    backend can be provided; explicit names raise
    :class:`KernelUnavailable` with the recorded reason.
    """
    global _WARNED_FALLBACK
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown engine kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if name in _EXPLICIT_BACKENDS:
        kernel = _try_backend(name)
        if kernel is None:
            raise KernelUnavailable(
                f"kernel backend {name!r} unavailable: {_FAILURES[name]}"
            )
        return kernel
    for candidate in ("numba", "cc"):
        kernel = _try_backend(candidate)
        if kernel is not None:
            return kernel
    if name == "compiled" and not _WARNED_FALLBACK:
        _WARNED_FALLBACK = True
        reasons = "; ".join(
            f"{key}: {_FAILURES[key]}" for key in ("numba", "cc") if key in _FAILURES
        )
        warnings.warn(
            "engine_kernel='compiled' requested but no compiled backend is "
            f"available ({reasons}); falling back to the numpy kernel",
            RuntimeWarning,
            stacklevel=2,
        )
    return _try_backend("numpy")


def available_backends() -> Tuple[str, ...]:
    """Names of backends that can actually be provided on this machine."""
    return tuple(
        name
        for name in ("numpy", "cc", "numba", "numba-parallel")
        if _try_backend(name) is not None
    )


def kernel_diagnostics() -> Dict[str, str]:
    """Per-backend availability map (``"available"`` or the failure)."""
    report = {}
    for name in ("numpy", "cc", "numba", "numba-parallel"):
        report[name] = (
            "available" if _try_backend(name) is not None else _FAILURES[name]
        )
    return report


# ---------------------------------------------------------------------------
# resolvers (shared by the per-replicate and fused ensemble paths)
# ---------------------------------------------------------------------------


def _flat_prep(sched: np.ndarray, n: int, s: int):
    """Shared vectorized preparation for the ``q == 0`` resolvers.

    Returns ``(seq, phase, counts, pairs)`` where ``pairs`` is ``None``
    when the schedule admits no attempts, else ``(c_r, pid_r, seq_r,
    successor, suffix_argmin, attempt_base)`` — the attempt tables in
    read order, the successor pointers, and the per-pid attempt offsets
    (``(n + 1,)``, int64) that locate each pid's attempts in read-rank
    space.
    """
    steps = sched.shape[0]
    counts = np.bincount(sched, minlength=n)
    attempts = counts // (s + 1)
    total = int(attempts.sum())
    seq = attempts.astype(np.int64)
    phase = (counts - attempts * (s + 1)).astype(np.int64)
    if total == 0:
        return seq, phase, counts, None
    # Index dtypes: times/positions fit int32 for any practical run; the
    # grouping key uses the narrowest dtype numpy's radix sort is fastest on.
    idx = np.int32 if steps < 2**31 - 2 else np.int64
    key_dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int32
    order = np.argsort(sched.astype(key_dtype), kind="stable").astype(idx)

    offsets = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(idx)
    aoff = np.concatenate(([0], np.cumsum(attempts[:-1]))).astype(idx)
    pid_of = np.repeat(np.arange(n, dtype=idx), attempts)
    within = np.arange(total, dtype=idx) - np.repeat(aoff, attempts)
    cas_rank = offsets[pid_of] + s + (s + 1) * within
    c_times = order[cas_rank]
    r_times = order[cas_rank - s]

    # Counting sort of the attempts by read time (times are unique column
    # indices): one scatter + cumsum instead of a comparison sort.  The
    # same cumsum answers "how many reads happened at or before column t",
    # which is exactly the successor-pointer index below.
    mark = np.zeros(steps, idx)
    mark[r_times] = 1
    reads_before = np.cumsum(mark, dtype=idx)
    rpos = reads_before[r_times] - 1  # each attempt's rank in read order
    c_r = np.empty(total, idx)
    c_r[rpos] = c_times
    pid_r = np.empty(total, idx)
    pid_r[rpos] = pid_of
    seq_r = np.empty(total, idx)
    seq_r[rpos] = within
    succ_at = np.empty(total, idx)
    succ_at[rpos] = reads_before[c_times]  # first read rank strictly after c

    # Suffix argmin of CAS times in read order: position of the earliest
    # CAS among attempts whose read is at or after a given read rank.
    suffix_min = np.minimum.accumulate(c_r[::-1])[::-1]
    candidate = np.where(c_r == suffix_min, np.arange(total, dtype=idx), total)
    suffix_argmin = np.minimum.accumulate(candidate[::-1])[::-1]
    successor = np.concatenate((suffix_argmin, np.asarray([-1], idx)))[succ_at]

    attempt_base = np.concatenate(
        (aoff.astype(np.int64), np.asarray([total], dtype=np.int64))
    )
    return seq, phase, counts, (c_r, pid_r, seq_r, successor, suffix_argmin, attempt_base)


def resolve_flat(
    sched: np.ndarray, n: int, s: int, kernel: Optional[Any] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve a ``q == 0`` schedule, fully vectorized.

    With no preamble, process ``p``'s ``k``-th attempt always occupies its
    local steps ``[k(s+1), k(s+1)+s]`` — read first, CAS last — so every
    (read time, CAS time) pair is a gather from the schedule grouped by
    pid.  The greedy success scan then reduces to following a precomputed
    successor pointer (the only sequential part — delegated to
    ``kernel.chain_walk``).

    Returns ``(success_cols, success_pids, success_seqs, seq, phase,
    counts)`` where columns are 0-based schedule positions, ``seq[p]`` is
    the number of CAS attempts process ``p`` executed, ``phase[p]`` in
    ``[0, s]`` is its position within the current attempt and ``counts[p]``
    its local step count.  The same function resolves a *fused* stack of
    replicates: concatenating schedules in time with per-replicate pid
    offsets makes the successor chain cross replicate boundaries exactly
    at each replicate's first success (reads in later replicates are
    strictly after every earlier CAS), so the output is the per-replicate
    outputs concatenated.
    """
    if kernel is None:
        kernel = NumpyKernel()
    seq, phase, counts, pairs = _flat_prep(sched, n, s)
    if pairs is None:
        return _EMPTY, _EMPTY, _EMPTY, seq, phase, counts
    c_r, pid_r, seq_r, successor, suffix_argmin, _ = pairs

    # The first success is the earliest CAS overall; after a success at
    # time L, the next is the earliest CAS among attempts that read after
    # L.  Walking the successor pointers visits exactly the successes.
    events = kernel.chain_walk(successor, int(suffix_argmin[0]))
    return (
        c_r[events].astype(np.int64),
        pid_r[events].astype(np.int64),
        seq_r[events].astype(np.int64),
        seq,
        phase,
        counts,
    )


def resolve_flat_stacked(
    sched: np.ndarray,
    pid_base: np.ndarray,
    s: int,
    kernel: Optional[Any] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`resolve_flat` on a fused replicate stack.

    ``pid_base`` is the ``(R + 1,)`` per-replicate pid offset table the
    fused path builds (replicate ``k`` owns pids ``[pid_base[k],
    pid_base[k + 1])``).  Bit-identical to ``resolve_flat(sched,
    pid_base[-1], s, kernel)`` — the global successor chain is exactly
    the per-replicate chains concatenated — but kernels exposing
    ``chain_walk_stacked`` (the ``numba-parallel`` backend) get one
    independent walk per replicate: replicate ``k``'s chain starts at
    the suffix argmin of its first read rank and is cut at its rank
    bound, where the global chain crosses into replicate ``k + 1``.
    """
    if kernel is None:
        kernel = NumpyKernel()
    pid_base = np.ascontiguousarray(pid_base, dtype=np.int64)
    n = int(pid_base[-1])
    seq, phase, counts, pairs = _flat_prep(sched, n, s)
    if pairs is None:
        return _EMPTY, _EMPTY, _EMPTY, seq, phase, counts
    c_r, pid_r, seq_r, successor, suffix_argmin, attempt_base = pairs

    walk_many = getattr(kernel, "chain_walk_stacked", None)
    if walk_many is None or pid_base.shape[0] <= 2:
        events = kernel.chain_walk(successor, int(suffix_argmin[0]))
    else:
        total = int(attempt_base[-1])
        rank_base = attempt_base[pid_base]
        padded = np.concatenate(
            (suffix_argmin.astype(np.int64), np.asarray([-1], dtype=np.int64))
        )
        starts = np.where(
            rank_base[:-1] < rank_base[1:], padded[rank_base[:-1]], -1
        )
        events = walk_many(successor, starts, rank_base)
    return (
        c_r[events].astype(np.int64),
        pid_r[events].astype(np.int64),
        seq_r[events].astype(np.int64),
        seq,
        phase,
        counts,
    )


def resolve_heap(
    sched: np.ndarray, n: int, q: int, s: int, kernel: Optional[Any] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve a general ``SCU(q, s)`` schedule with a heap-driven scan.

    Every call starts with ``q`` preamble steps, so a success shifts the
    process's subsequent event times — attempts must be scheduled lazily.
    The heap holds one pending CAS event per process, popped in time
    order (delegated to ``kernel.heap_scan``); the greedy success
    condition is identical to the ``q == 0`` path.  Return contract
    matches :func:`resolve_flat` (``phase`` in ``[0, q + s]``).  Fused
    stacks resolve correctly for the same reason as the flat path: CAS
    keys are globally ordered replicate-major, so the pop sequence is the
    per-replicate pop sequences concatenated.
    """
    if kernel is None:
        kernel = NumpyKernel()
    counts = np.bincount(sched, minlength=n)
    key_dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int32
    order = np.argsort(sched.astype(key_dtype), kind="stable")
    offsets = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))

    succ_cols, succ_pids, succ_seqs, seq, next_read = kernel.heap_scan(
        order, offsets, n, q, s
    )
    phase = q + counts - next_read
    return (succ_cols, succ_pids, succ_seqs, seq, phase, counts)


def resolve_heap_stacked(
    sched: np.ndarray,
    pid_base: np.ndarray,
    q: int,
    s: int,
    kernel: Optional[Any] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`resolve_heap` on a fused replicate stack.

    ``pid_base`` is the ``(R + 1,)`` per-replicate pid offset table.
    Bit-identical to ``resolve_heap(sched, pid_base[-1], q, s, kernel)``
    — replicates are time-partitioned, so the global pop sequence is the
    per-replicate pop sequences concatenated — but kernels exposing
    ``heap_scan_stacked`` (the ``numba-parallel`` backend) scan each
    replicate's pid slice independently with a local heap.
    """
    if kernel is None:
        kernel = NumpyKernel()
    pid_base = np.ascontiguousarray(pid_base, dtype=np.int64)
    n = int(pid_base[-1])
    counts = np.bincount(sched, minlength=n)
    key_dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int32
    order = np.argsort(sched.astype(key_dtype), kind="stable")
    offsets = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))

    scan_many = getattr(kernel, "heap_scan_stacked", None)
    if scan_many is None or pid_base.shape[0] <= 2:
        succ_cols, succ_pids, succ_seqs, seq, next_read = kernel.heap_scan(
            order, offsets, n, q, s
        )
    else:
        succ_cols, succ_pids, succ_seqs, seq, next_read = scan_many(
            order, offsets, pid_base, q, s
        )
    phase = q + counts - next_read
    return (succ_cols, succ_pids, succ_seqs, seq, phase, counts)
