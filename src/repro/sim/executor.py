"""The discrete-time executor.

At every time step ``tau = 1, 2, ...`` the scheduler picks one active
process; that process performs exactly one shared-memory operation
(Section 2.1 of the paper).  Crashes remove processes from the active set
permanently (Definition 1: crash containment, ``A_{tau+1} subset of A_tau``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.history import History
from repro.sim.memory import Memory
from repro.sim.ops import Operation
from repro.sim.process import Completion, Invoke, Process, ProcessFactory
from repro.sim.trace import TraceRecorder

RngLike = Union[int, np.random.Generator, None]


def _cas_totals(memory: Memory) -> Tuple[int, int]:
    """Total CAS ``(attempts, successes)`` across all registers.

    The memory already maintains per-register CAS counters on its normal
    path, so run-level CAS win/loss telemetry is a snapshot-and-diff —
    no extra work per step.
    """
    attempts = 0
    successes = 0
    for register in memory._registers.values():
        attempts += register.cas_attempts
        successes += register.cas_successes
    return attempts, successes


def validate_crash_times(
    crash_times: Optional[Dict[int, int]], n_processes: int
) -> Dict[int, int]:
    """Check a crash map names only known pids; returns a plain dict.

    Shared by :class:`Simulator` and the ensemble engine so both reject
    exactly the same crash configurations.  Crash *times* are not range
    checked on purpose: a time outside ``[1, max_steps]`` simply never
    fires (Definition 1 only constrains which processes may appear).
    """
    crash_map = dict(crash_times or {})
    for pid in crash_map:
        if not 0 <= pid < n_processes:
            raise ValueError(f"crash_times names unknown process {pid}")
    return crash_map


@dataclass
class SimulationResult:
    """Outcome of a (possibly partial) simulation run.

    Attributes
    ----------
    steps_executed:
        Total system steps taken across all calls to :meth:`Simulator.run`
        / :meth:`Simulator.run_batched` (cumulative simulator time).
    recorder:
        The trace recorder with schedules / completion records.
    memory:
        The shared memory in its final state.
    history:
        Invocation/response history, when recorded.
    stopped_early:
        True when the run ended before ``max_steps`` because the stop
        condition fired or no process remained active.
    steps_this_run:
        Steps taken by the call that produced this result — per-call
        accounting, so repeated ``run()`` calls report honest rates.
    completions_this_run:
        Method calls completed during the call that produced this result.
    """

    steps_executed: int
    recorder: TraceRecorder
    memory: Memory
    history: Optional[History]
    stopped_early: bool
    steps_this_run: int = 0
    completions_this_run: int = 0

    @property
    def total_completions(self) -> int:
        """Completed method calls across all processes (all-time)."""
        return self.recorder.total_completions

    @property
    def completion_rate(self) -> float:
        """Completed operations per system step (Appendix B's metric),
        over the steps of *this* run call only.

        Earlier versions divided the all-time completion count by the
        all-time step count, so a result object from a second ``run()``
        call mixed both calls' behaviour; per-call accounting keeps each
        result self-contained.
        """
        if self.steps_this_run == 0:
            return 0.0
        return self.completions_this_run / self.steps_this_run

    def completions_of(self, pid: int) -> int:
        """Completed method calls of one process."""
        return self.recorder.completions[pid]


class Simulator:
    """Drives ``n`` simulated processes under a scheduler.

    Parameters
    ----------
    factories:
        Either one :data:`~repro.sim.process.ProcessFactory` used for all
        processes (the paper's symmetric workload) or a sequence of ``n``
        factories.
    n_processes:
        Number of processes; required when a single factory is given.
    scheduler:
        Any object with ``select(time, active_pids, rng) -> pid``.  See
        :mod:`repro.core.scheduler`.
    memory:
        Shared memory; a fresh empty :class:`Memory` by default.  Pass a
        pre-initialised one to set register initial values.
    crash_times:
        Optional ``{pid: time}``; the process crashes just *before* the
        step at that time would be taken.
    record_schedule, record_completion_times, record_history:
        What the :class:`TraceRecorder` / :class:`History` keep.  Full
        schedules and histories cost memory proportional to the run length.
    rng:
        Seed or generator for the simulator; forwarded to the scheduler's
        ``select``.
    telemetry:
        Optional :class:`repro.core.telemetry.MetricsRegistry`.  Run
        counters (``sim.steps``, ``sim.completions``, ``sim.cas_wins``,
        ``sim.cas_losses``, ``sim.crashes``, ``sim.blocks``) settle once
        per :meth:`run`/:meth:`run_batched` call — never per step — and
        a ``sim.run`` event carries the per-process step counts.  The
        default ``None`` disables all of it behind a single boolean
        test; telemetry never consumes randomness or alters control
        flow, so results are bit-identical either way.
    """

    def __init__(
        self,
        factories: Union[ProcessFactory, Sequence[ProcessFactory]],
        scheduler,
        *,
        n_processes: Optional[int] = None,
        memory: Optional[Memory] = None,
        crash_times: Optional[Dict[int, int]] = None,
        record_schedule: bool = False,
        record_completion_times: bool = True,
        record_history: bool = False,
        rng: RngLike = None,
        telemetry=None,
    ) -> None:
        if callable(factories):
            if n_processes is None:
                raise ValueError("n_processes is required with a single factory")
            factory_list: List[ProcessFactory] = [factories] * n_processes
        else:
            factory_list = list(factories)
            if n_processes is not None and n_processes != len(factory_list):
                raise ValueError(
                    f"n_processes={n_processes} but {len(factory_list)} factories given"
                )
        if not factory_list:
            raise ValueError("at least one process is required")

        self.n_processes = len(factory_list)
        self.scheduler = scheduler
        self.memory = memory if memory is not None else Memory()
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.crash_times = validate_crash_times(crash_times, self.n_processes)

        self.recorder = TraceRecorder(
            self.n_processes,
            record_schedule=record_schedule,
            record_completion_times=record_completion_times,
        )
        self.history: Optional[History] = History() if record_history else None

        self.processes: List[Process] = [
            Process(pid, factory) for pid, factory in enumerate(factory_list)
        ]
        self.time = 0
        self._primed = False
        # Contention hook (ContentionScheduler): when the scheduler wants
        # to see which registers the pending operations target, it is fed
        # before every scheduling decision on both engines.
        self._observe_pending = getattr(scheduler, "observe_pending", None)
        self.telemetry = telemetry
        self._crashes_fired = 0
        # Target of the single reusable marker callback; set just before
        # each refill so no per-step closure is allocated.
        self._cb_pid = 0
        self._cb_time = 0

    # -- internals ---------------------------------------------------------------

    def _on_marker(self, pid: int, time: int, marker) -> None:
        if isinstance(marker, Invoke):
            if self.history is not None:
                self.history.invoke(time, pid, marker.method, marker.argument)
        elif isinstance(marker, Completion):
            self.processes[pid].completions += 1
            self.recorder.on_completion(time, pid)
            if self.history is not None:
                self.history.respond(time, pid, marker.method, marker.result)

    def _marker_cb(self, marker) -> None:
        """Bound-once marker sink; reads the pid/time staged in
        ``_cb_pid``/``_cb_time`` (hoisted out of the per-step hot path)."""
        self._on_marker(self._cb_pid, self._cb_time, marker)

    def _prime(self) -> None:
        for process in self.processes:
            self._cb_pid = process.pid
            self._cb_time = 0
            process.advance(None, self._marker_cb)
        self._primed = True

    def _apply_crashes(self, time: int) -> None:
        for pid, crash_time in self.crash_times.items():
            if crash_time == time:
                self.processes[pid].crash()
                self._crashes_fired += 1

    def _record_run_telemetry(
        self,
        engine: str,
        steps: int,
        completions: int,
        cas_before: Tuple[int, int],
        crashes_before: int,
        steps_before: List[int],
        blocks: Optional[int] = None,
    ) -> None:
        """Settle one run call's counters and emit the ``sim.run`` event.

        Called only when telemetry is enabled, after the run loop — the
        per-step path never sees it.  All quantities are per-call deltas
        so repeated ``run()`` calls report honestly.
        """
        telemetry = self.telemetry
        attempts, successes = _cas_totals(self.memory)
        wins = successes - cas_before[1]
        telemetry.inc("sim.runs")
        telemetry.inc("sim.steps", steps)
        telemetry.inc("sim.completions", completions)
        telemetry.inc("sim.cas_wins", wins)
        telemetry.inc("sim.cas_losses", (attempts - cas_before[0]) - wins)
        telemetry.inc("sim.crashes", self._crashes_fired - crashes_before)
        if blocks is not None:
            telemetry.inc("sim.blocks", blocks)
        telemetry.emit(
            "sim.run",
            {
                "engine": engine,
                "n_processes": self.n_processes,
                "steps": steps,
                "completions": completions,
                "step_counts": [
                    self.recorder.steps[pid] - steps_before[pid]
                    for pid in range(self.n_processes)
                ],
            },
        )

    def _telemetry_snapshot(self):
        """Pre-run state needed to settle per-call telemetry deltas."""
        return (
            _cas_totals(self.memory),
            self._crashes_fired,
            [self.recorder.steps[pid] for pid in range(self.n_processes)],
        )

    def active_pids(self) -> List[int]:
        """Processes currently eligible for scheduling (the set ``A_tau``)."""
        return [p.pid for p in self.processes if p.active]

    # -- driving -------------------------------------------------------------------

    def step(self) -> Optional[int]:
        """Execute one system step; returns the scheduled pid, or ``None``
        when no process is active."""
        if not self._primed:
            self._prime()
        time = self.time + 1
        self._apply_crashes(time)
        active = self.active_pids()
        if not active:
            return None
        if self._observe_pending is not None:
            self._observe_pending(
                {
                    pid: getattr(self.processes[pid].pending, "register", None)
                    for pid in active
                }
            )
        pid = self.scheduler.select(time, active, self.rng)
        if pid not in active:
            raise RuntimeError(
                f"scheduler selected inactive process {pid} at t={time} "
                f"(active: {active[:10]}{'...' if len(active) > 10 else ''})"
            )
        self.time = time
        process = self.processes[pid]
        process.take_step(self.memory.apply)
        self.recorder.on_step(time, pid)
        self._cb_pid = pid
        self._cb_time = time
        process.refill(self._marker_cb)
        return pid

    def run(
        self,
        max_steps: int,
        *,
        stop_after_completions: Optional[int] = None,
        stop_after_completions_by: Optional[int] = None,
    ) -> SimulationResult:
        """Run up to ``max_steps`` further steps.

        Parameters
        ----------
        max_steps:
            Step budget for this call.
        stop_after_completions:
            Stop as soon as the *total* completion count reaches this value.
        stop_after_completions_by:
            Stop as soon as process with this pid completes an operation
            (checked against its count when the run starts).
        """
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        telemetry = self.telemetry
        telemetry_on = telemetry is not None and telemetry.enabled
        if telemetry_on:
            telemetry_before = self._telemetry_snapshot()
        start_time = self.time
        start_completions = self.recorder.total_completions
        target_pid = stop_after_completions_by
        baseline = (
            self.recorder.completions[target_pid] if target_pid is not None else 0
        )
        stopped_early = False
        for _ in range(max_steps):
            if (
                stop_after_completions is not None
                and self.recorder.total_completions >= stop_after_completions
            ):
                stopped_early = True
                break
            if (
                target_pid is not None
                and self.recorder.completions[target_pid] > baseline
            ):
                stopped_early = True
                break
            if self.step() is None:
                stopped_early = True
                break
        else:
            # Budget exhausted; still check trailing stop conditions so the
            # flag reflects whether the condition was met.
            if (
                stop_after_completions is not None
                and self.recorder.total_completions >= stop_after_completions
            ) or (
                target_pid is not None
                and self.recorder.completions[target_pid] > baseline
            ):
                stopped_early = True
        if telemetry_on:
            self._record_run_telemetry(
                "serial",
                self.time - start_time,
                self.recorder.total_completions - start_completions,
                *telemetry_before,
            )
        return SimulationResult(
            steps_executed=self.time,
            recorder=self.recorder,
            memory=self.memory,
            history=self.history,
            stopped_early=stopped_early,
            steps_this_run=self.time - start_time,
            completions_this_run=self.recorder.total_completions
            - start_completions,
        )

    def run_batched(
        self,
        max_steps: int,
        *,
        stop_after_completions: Optional[int] = None,
        stop_after_completions_by: Optional[int] = None,
        batch_size: int = 4096,
    ) -> SimulationResult:
        """Run up to ``max_steps`` further steps on the batched fast path.

        Trace-equivalent to :meth:`run`: given the same initial state and
        seed it produces the identical schedule, completions, history and
        final memory, and leaves the simulator (RNG and scheduler state
        included) exactly where the step-by-step path would — the two can
        even be interleaved.  It is much faster because scheduler choices
        are drawn in blocks between crash boundaries, the active set is
        computed once per block instead of once per step, and process
        steps are dispatched inline without per-step closure allocation.

        Blocks never span a crash time, so the active set handed to
        ``select_batch`` is exact.  When a block is cut short — a process
        finished its (finite) workload or a stop condition fired — the RNG
        and scheduler state are rewound and only the consumed prefix is
        replayed, keeping the stream aligned with the serial path.

        Parameters are those of :meth:`run`, plus ``batch_size``: the
        maximum number of scheduler choices drawn at once.
        """
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not self._primed:
            self._prime()
        telemetry = self.telemetry
        telemetry_on = telemetry is not None and telemetry.enabled
        if telemetry_on:
            telemetry_before = self._telemetry_snapshot()
        blocks_executed = 0

        scheduler = self.scheduler
        rng = self.rng
        bit_generator = rng.bit_generator
        recorder = self.recorder
        history = self.history
        memory = self.memory
        # Dispatch through the memory's per-class handler table directly;
        # ``total_operations`` (one per applied op, i.e. one per step) is
        # settled per block instead of per step.
        handler_of = memory._handlers.get
        resolve_handler = memory._resolve_handler
        processes = self.processes
        record_times = recorder._record_completion_times
        completion_times = recorder.completion_times
        completion_pids = recorder.completion_pids
        completions = recorder.completions
        step_counts = recorder.steps
        schedule = recorder.schedule

        select_batch = getattr(scheduler, "select_batch", None)
        snapshot_state = getattr(scheduler, "state_snapshot", None)
        restore_state = getattr(scheduler, "state_restore", None)
        if select_batch is None:
            # Duck-typed scheduler without the batched protocol: fall back
            # to sequential selection (still trace-equivalent).
            def select_batch(time, active, rng, size):
                return np.array(
                    [scheduler.select(time + k, active, rng) for k in range(size)],
                    dtype=np.int64,
                )

        start_time = self.time
        end_time = start_time + max_steps
        start_completions = recorder.total_completions
        total_completions = start_completions
        target_pid = stop_after_completions_by
        baseline = completions[target_pid] if target_pid is not None else 0
        target_count = baseline
        check_stops = stop_after_completions is not None or target_pid is not None

        # Per-process generator senders and pending operations, resolved
        # once per call; the pending ops live in a local list during a
        # block and are written back to the Process objects at block end.
        senders = [process._generator.send for process in processes]
        pendings = [process.pending for process in processes]

        crash_boundaries = sorted(set(self.crash_times.values()))
        stopped_early = False
        time = self.time

        while time < end_time:
            if (
                stop_after_completions is not None
                and total_completions >= stop_after_completions
            ):
                stopped_early = True
                break
            if target_pid is not None and target_count > baseline:
                stopped_early = True
                break
            next_t = time + 1
            self._apply_crashes(next_t)
            active = self.active_pids()
            if not active:
                stopped_early = True
                break
            block = min(batch_size, end_time - time)
            for boundary in crash_boundaries:
                if boundary > next_t:
                    block = min(block, boundary - next_t)
                    break
            if self._observe_pending is not None:
                # Contention state must be observed before *every*
                # decision, exactly as the serial path does; clamping the
                # block to one step keeps the two engines bit-identical.
                block = 1
                self._observe_pending(
                    {
                        pid: getattr(pendings[pid], "register", None)
                        for pid in active
                    }
                )
            rng_state = bit_generator.state
            scheduler_state = (
                snapshot_state() if snapshot_state is not None else None
            )
            pids = select_batch(next_t, active, rng, block)
            # Validate the whole block at once instead of one membership
            # test per step; an invalid selection truncates the iterated
            # prefix so the error surfaces at the exact offending step,
            # after the valid prefix has executed (as the serial path
            # would have).
            valid = np.isin(pids, np.asarray(active, dtype=np.int64))
            invalid_at = -1 if valid.all() else int(np.argmax(~valid))
            iterated = pids if invalid_at < 0 else pids[:invalid_at]
            executed = 0
            try:
                for pid in iterated.tolist():
                    if check_stops and executed:
                        if (
                            stop_after_completions is not None
                            and total_completions >= stop_after_completions
                        ):
                            stopped_early = True
                            break
                        if target_pid is not None and target_count > baseline:
                            stopped_early = True
                            break
                    time += 1
                    executed += 1
                    # Inlined Process.take_step + refill, with markers
                    # handled in place (no per-step closures).  Per-process
                    # step counters are settled once per block from the
                    # executed pid prefix, not one dict update per step.
                    op = pendings[pid]
                    handler = handler_of(op.__class__)
                    if handler is None:
                        handler = resolve_handler(op)
                    result = handler(op)
                    generator_send = senders[pid]
                    try:
                        item = generator_send(result)
                        while not isinstance(item, Operation):
                            if isinstance(item, Completion):
                                processes[pid].completions += 1
                                completions[pid] += 1
                                total_completions += 1
                                if pid == target_pid:
                                    target_count += 1
                                if record_times:
                                    completion_times.append(time)
                                    completion_pids.append(pid)
                                if history is not None:
                                    history.respond(
                                        time, pid, item.method, item.result
                                    )
                            elif isinstance(item, Invoke):
                                if history is not None:
                                    history.invoke(
                                        time, pid, item.method, item.argument
                                    )
                            else:
                                raise TypeError(
                                    f"process {pid} yielded {item!r}; expected "
                                    "an Operation, Invoke or Completion"
                                )
                            item = generator_send(None)
                        pendings[pid] = item
                    except StopIteration:
                        pendings[pid] = None
                        processes[pid].done = True
                        break
                else:
                    if invalid_at >= 0:
                        # The serial path checks stop conditions before the
                        # scheduler acts, so a stop that fired at the
                        # offending step masks the error there too.
                        if check_stops and (
                            (
                                stop_after_completions is not None
                                and total_completions >= stop_after_completions
                            )
                            or (
                                target_pid is not None
                                and target_count > baseline
                            )
                        ):
                            stopped_early = True
                        else:
                            bad_pid = int(pids[invalid_at])
                            raise RuntimeError(
                                f"scheduler selected inactive process "
                                f"{bad_pid} at t={time + 1} (active: "
                                f"{active[:10]}"
                                f"{'...' if len(active) > 10 else ''})"
                            )
            finally:
                for synced_pid, pending in enumerate(pendings):
                    processes[synced_pid].pending = pending
                memory.total_operations += executed
                recorder.total_steps += executed
                if executed:
                    counts = np.bincount(
                        pids[: executed], minlength=self.n_processes
                    )
                    for counted_pid in np.nonzero(counts)[0].tolist():
                        step_count = int(counts[counted_pid])
                        step_counts[counted_pid] += step_count
                        processes[counted_pid].steps += step_count
                    if schedule is not None:
                        schedule.extend(pids[:executed])
                self.time = time
            if executed:
                blocks_executed += 1
            if executed < block:
                # The block was cut short: rewind RNG and scheduler state,
                # then replay exactly the consumed prefix so both end up
                # where the step-by-step path would be.
                bit_generator.state = rng_state
                if restore_state is not None:
                    restore_state(scheduler_state)
                if executed:
                    select_batch(next_t, active, rng, executed)
            if stopped_early:
                break
        if not stopped_early:
            # Budget exhausted; still check trailing stop conditions so the
            # flag reflects whether the condition was met.
            if (
                stop_after_completions is not None
                and total_completions >= stop_after_completions
            ) or (target_pid is not None and target_count > baseline):
                stopped_early = True
        if telemetry_on:
            self._record_run_telemetry(
                "batched",
                self.time - start_time,
                total_completions - start_completions,
                *telemetry_before,
                blocks=blocks_executed,
            )
        return SimulationResult(
            steps_executed=self.time,
            recorder=self.recorder,
            memory=self.memory,
            history=self.history,
            stopped_early=stopped_early,
            steps_this_run=self.time - start_time,
            completions_this_run=total_completions - start_completions,
        )
