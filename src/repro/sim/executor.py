"""The discrete-time executor.

At every time step ``tau = 1, 2, ...`` the scheduler picks one active
process; that process performs exactly one shared-memory operation
(Section 2.1 of the paper).  Crashes remove processes from the active set
permanently (Definition 1: crash containment, ``A_{tau+1} subset of A_tau``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sim.history import History
from repro.sim.memory import Memory
from repro.sim.process import Completion, Invoke, Process, ProcessFactory
from repro.sim.trace import TraceRecorder

RngLike = Union[int, np.random.Generator, None]


@dataclass
class SimulationResult:
    """Outcome of a (possibly partial) simulation run.

    Attributes
    ----------
    steps_executed:
        Total system steps taken across all calls to :meth:`Simulator.run`.
    recorder:
        The trace recorder with schedules / completion records.
    memory:
        The shared memory in its final state.
    history:
        Invocation/response history, when recorded.
    stopped_early:
        True when the run ended before ``max_steps`` because the stop
        condition fired or no process remained active.
    """

    steps_executed: int
    recorder: TraceRecorder
    memory: Memory
    history: Optional[History]
    stopped_early: bool

    @property
    def total_completions(self) -> int:
        """Completed method calls across all processes."""
        return self.recorder.total_completions

    @property
    def completion_rate(self) -> float:
        """Completed operations per system step (Appendix B's metric)."""
        if self.steps_executed == 0:
            return 0.0
        return self.recorder.total_completions / self.steps_executed

    def completions_of(self, pid: int) -> int:
        """Completed method calls of one process."""
        return self.recorder.completions[pid]


class Simulator:
    """Drives ``n`` simulated processes under a scheduler.

    Parameters
    ----------
    factories:
        Either one :data:`~repro.sim.process.ProcessFactory` used for all
        processes (the paper's symmetric workload) or a sequence of ``n``
        factories.
    n_processes:
        Number of processes; required when a single factory is given.
    scheduler:
        Any object with ``select(time, active_pids, rng) -> pid``.  See
        :mod:`repro.core.scheduler`.
    memory:
        Shared memory; a fresh empty :class:`Memory` by default.  Pass a
        pre-initialised one to set register initial values.
    crash_times:
        Optional ``{pid: time}``; the process crashes just *before* the
        step at that time would be taken.
    record_schedule, record_completion_times, record_history:
        What the :class:`TraceRecorder` / :class:`History` keep.  Full
        schedules and histories cost memory proportional to the run length.
    rng:
        Seed or generator for the simulator; forwarded to the scheduler's
        ``select``.
    """

    def __init__(
        self,
        factories: Union[ProcessFactory, Sequence[ProcessFactory]],
        scheduler,
        *,
        n_processes: Optional[int] = None,
        memory: Optional[Memory] = None,
        crash_times: Optional[Dict[int, int]] = None,
        record_schedule: bool = False,
        record_completion_times: bool = True,
        record_history: bool = False,
        rng: RngLike = None,
    ) -> None:
        if callable(factories):
            if n_processes is None:
                raise ValueError("n_processes is required with a single factory")
            factory_list: List[ProcessFactory] = [factories] * n_processes
        else:
            factory_list = list(factories)
            if n_processes is not None and n_processes != len(factory_list):
                raise ValueError(
                    f"n_processes={n_processes} but {len(factory_list)} factories given"
                )
        if not factory_list:
            raise ValueError("at least one process is required")

        self.n_processes = len(factory_list)
        self.scheduler = scheduler
        self.memory = memory if memory is not None else Memory()
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.crash_times = dict(crash_times or {})
        for pid in self.crash_times:
            if not 0 <= pid < self.n_processes:
                raise ValueError(f"crash_times names unknown process {pid}")

        self.recorder = TraceRecorder(
            self.n_processes,
            record_schedule=record_schedule,
            record_completion_times=record_completion_times,
        )
        self.history: Optional[History] = History() if record_history else None

        self.processes: List[Process] = [
            Process(pid, factory) for pid, factory in enumerate(factory_list)
        ]
        self.time = 0
        self._primed = False

    # -- internals ---------------------------------------------------------------

    def _on_marker(self, pid: int, time: int, marker) -> None:
        if isinstance(marker, Invoke):
            if self.history is not None:
                self.history.invoke(time, pid, marker.method, marker.argument)
        elif isinstance(marker, Completion):
            self.processes[pid].completions += 1
            self.recorder.on_completion(time, pid)
            if self.history is not None:
                self.history.respond(time, pid, marker.method, marker.result)

    def _prime(self) -> None:
        for process in self.processes:
            process.advance(
                None, lambda marker, pid=process.pid: self._on_marker(pid, 0, marker)
            )
        self._primed = True

    def _apply_crashes(self, time: int) -> None:
        for pid, crash_time in self.crash_times.items():
            if crash_time == time:
                self.processes[pid].crash()

    def active_pids(self) -> List[int]:
        """Processes currently eligible for scheduling (the set ``A_tau``)."""
        return [p.pid for p in self.processes if p.active]

    # -- driving -------------------------------------------------------------------

    def step(self) -> Optional[int]:
        """Execute one system step; returns the scheduled pid, or ``None``
        when no process is active."""
        if not self._primed:
            self._prime()
        time = self.time + 1
        self._apply_crashes(time)
        active = self.active_pids()
        if not active:
            return None
        pid = self.scheduler.select(time, active, self.rng)
        if pid not in active:
            raise RuntimeError(
                f"scheduler selected inactive process {pid} at t={time} "
                f"(active: {active[:10]}{'...' if len(active) > 10 else ''})"
            )
        self.time = time
        process = self.processes[pid]
        process.take_step(self.memory.apply)
        self.recorder.on_step(time, pid)
        process.refill(lambda marker: self._on_marker(pid, time, marker))
        return pid

    def run(
        self,
        max_steps: int,
        *,
        stop_after_completions: Optional[int] = None,
        stop_after_completions_by: Optional[int] = None,
    ) -> SimulationResult:
        """Run up to ``max_steps`` further steps.

        Parameters
        ----------
        max_steps:
            Step budget for this call.
        stop_after_completions:
            Stop as soon as the *total* completion count reaches this value.
        stop_after_completions_by:
            Stop as soon as process with this pid completes an operation
            (checked against its count when the run starts).
        """
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        target_pid = stop_after_completions_by
        baseline = (
            self.recorder.completions[target_pid] if target_pid is not None else 0
        )
        stopped_early = False
        for _ in range(max_steps):
            if (
                stop_after_completions is not None
                and self.recorder.total_completions >= stop_after_completions
            ):
                stopped_early = True
                break
            if (
                target_pid is not None
                and self.recorder.completions[target_pid] > baseline
            ):
                stopped_early = True
                break
            if self.step() is None:
                stopped_early = True
                break
        else:
            # Budget exhausted; still check trailing stop conditions so the
            # flag reflects whether the condition was met.
            if (
                stop_after_completions is not None
                and self.recorder.total_completions >= stop_after_completions
            ) or (
                target_pid is not None
                and self.recorder.completions[target_pid] > baseline
            ):
                stopped_early = True
        return SimulationResult(
            steps_executed=self.time,
            recorder=self.recorder,
            memory=self.memory,
            history=self.history,
            stopped_early=stopped_early,
        )
