"""Execution traces: schedules and completion records.

The *schedule* is the sequence of process identifiers chosen by the
scheduler (Section 2.1).  For long runs the recorder can be configured to
keep only aggregate statistics (per-process step counts, completion times)
instead of the full sequence — Figure 3/4 style analyses need the sequence,
latency measurements do not.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class ScheduleTrace:
    """The recorded sequence of scheduled process ids.

    Backed by a growable numpy buffer; exposes the fairness statistics the
    paper's Appendix A computes from hardware recordings.
    """

    def __init__(self, n_processes: int) -> None:
        if n_processes <= 0:
            raise ValueError("n_processes must be positive")
        self.n_processes = n_processes
        self._buffer = np.empty(1024, dtype=np.int32)
        self._length = 0

    def append(self, pid: int) -> None:
        """Record that ``pid`` took the next step."""
        if self._length == self._buffer.shape[0]:
            grown = np.empty(self._buffer.shape[0] * 2, dtype=np.int32)
            grown[: self._length] = self._buffer
            self._buffer = grown
        self._buffer[self._length] = pid
        self._length += 1

    def extend(self, pids) -> None:
        """Record a whole block of scheduled pids at once (batched path)."""
        pids = np.asarray(pids, dtype=np.int32)
        needed = self._length + pids.size
        if needed > self._buffer.shape[0]:
            capacity = self._buffer.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int32)
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
        self._buffer[self._length : needed] = pids
        self._length = needed

    def as_array(self) -> np.ndarray:
        """The schedule as an int array of length ``len(self)``."""
        return self._buffer[: self._length].copy()

    def __len__(self) -> int:
        return self._length

    def step_shares(self) -> np.ndarray:
        """Fraction of steps taken by each process (Figure 3 statistic)."""
        if self._length == 0:
            raise ValueError("empty schedule")
        counts = np.bincount(
            self._buffer[: self._length], minlength=self.n_processes
        ).astype(float)
        return counts / self._length

    def successor_shares(self, pid: int) -> np.ndarray:
        """Distribution of who is scheduled immediately after ``pid`` steps
        (Figure 4 statistic).
        """
        schedule = self._buffer[: self._length]
        positions = np.nonzero(schedule[:-1] == pid)[0]
        if positions.size == 0:
            raise ValueError(f"process {pid} never takes a step before the last one")
        successors = schedule[positions + 1]
        counts = np.bincount(successors, minlength=self.n_processes).astype(float)
        return counts / successors.size

    def successor_matrix(self) -> np.ndarray:
        """Matrix ``M[i, j]`` = fraction of steps by ``j`` right after ``i``."""
        return np.vstack(
            [self.successor_shares(pid) for pid in range(self.n_processes)]
        )

    def longest_consecutive_run(self, pid: int) -> int:
        """Longest run of consecutive steps by ``pid`` (solo interval length)."""
        schedule = self._buffer[: self._length]
        best = run = 0
        for p in schedule:
            run = run + 1 if p == pid else 0
            best = max(best, run)
        return best


class TraceRecorder:
    """Collects per-run measurements from the executor.

    Parameters
    ----------
    n_processes:
        Number of processes in the run.
    record_schedule:
        Keep the full schedule sequence (needed for Figure 3/4 statistics).
    record_completion_times:
        Keep the time step of every completion (needed for latency
        distributions; per-process completion *counts* are always kept).
    """

    def __init__(
        self,
        n_processes: int,
        *,
        record_schedule: bool = False,
        record_completion_times: bool = True,
    ) -> None:
        self.n_processes = n_processes
        self.schedule: Optional[ScheduleTrace] = (
            ScheduleTrace(n_processes) if record_schedule else None
        )
        self._record_completion_times = record_completion_times
        self.completion_times: List[int] = []
        self.completion_pids: List[int] = []
        self.completions: Dict[int, int] = {pid: 0 for pid in range(n_processes)}
        self.steps: Dict[int, int] = {pid: 0 for pid in range(n_processes)}
        self.total_steps = 0

    def on_step(self, time: int, pid: int) -> None:
        """Record one scheduled step."""
        self.total_steps += 1
        self.steps[pid] += 1
        if self.schedule is not None:
            self.schedule.append(pid)

    def on_completion(self, time: int, pid: int) -> None:
        """Record one completed method call."""
        self.completions[pid] += 1
        if self._record_completion_times:
            self.completion_times.append(time)
            self.completion_pids.append(pid)

    @property
    def total_completions(self) -> int:
        """Completed method calls across all processes."""
        return sum(self.completions.values())

    def completion_times_of(self, pid: int) -> np.ndarray:
        """Completion time steps of one process, as an int array."""
        if not self._record_completion_times:
            raise ValueError("completion times were not recorded")
        times = np.asarray(self.completion_times, dtype=np.int64)
        pids = np.asarray(self.completion_pids, dtype=np.int64)
        return times[pids == pid]
