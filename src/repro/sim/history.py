"""Histories: sequences of method invocation and response events.

A history is the object over which the paper's progress guarantees are
stated (Section 2.2): minimal progress requires that in every suffix some
pending active invocation gets a response; maximal progress requires that
every pending active invocation does.  The detectors themselves live in
:mod:`repro.core.progress`; this module only records and queries events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class Invocation:
    """A method invocation event at a given time step."""

    time: int
    pid: int
    method: str = "method"
    argument: Any = None


@dataclass(frozen=True)
class Response:
    """A method response (return) event at a given time step."""

    time: int
    pid: int
    method: str = "method"
    result: Any = None


class History:
    """An ordered record of invocation and response events.

    Events must be appended in non-decreasing time order.  Each process is
    sequential: it cannot invoke a new method while one is pending.
    """

    def __init__(self) -> None:
        self.invocations: List[Invocation] = []
        self.responses: List[Response] = []
        self._pending: Dict[int, Invocation] = {}
        self._last_time = -1

    def invoke(
        self, time: int, pid: int, method: str = "method", argument: Any = None
    ) -> Invocation:
        """Record a method invocation."""
        self._check_time(time)
        if pid in self._pending:
            raise ValueError(
                f"process {pid} invoked {method!r} at t={time} while "
                f"{self._pending[pid].method!r} is still pending"
            )
        event = Invocation(time, pid, method, argument)
        self.invocations.append(event)
        self._pending[pid] = event
        return event

    def respond(
        self, time: int, pid: int, method: str = "method", result: Any = None
    ) -> Response:
        """Record a method response matching the process's pending invocation."""
        self._check_time(time)
        pending = self._pending.pop(pid, None)
        if pending is None:
            raise ValueError(f"process {pid} responded at t={time} with nothing pending")
        if pending.method != method:
            raise ValueError(
                f"process {pid} responded to {method!r} but {pending.method!r} "
                "is pending"
            )
        event = Response(time, pid, method, result)
        self.responses.append(event)
        return event

    def _check_time(self, time: int) -> None:
        if time < self._last_time:
            raise ValueError(
                f"events must be time-ordered; got t={time} after t={self._last_time}"
            )
        self._last_time = time

    # -- queries ---------------------------------------------------------------

    @property
    def end_time(self) -> int:
        """Time of the last recorded event (-1 if empty)."""
        return self._last_time

    def pending_pids(self) -> Set[int]:
        """Processes with a pending (unanswered) invocation at the end."""
        return set(self._pending)

    def response_times(self, pid: Optional[int] = None) -> List[int]:
        """Times of responses, optionally filtered to one process."""
        return [r.time for r in self.responses if pid is None or r.pid == pid]

    def completions_by_process(self) -> Dict[int, int]:
        """Number of responses per process."""
        counts: Dict[int, int] = {}
        for r in self.responses:
            counts[r.pid] = counts.get(r.pid, 0) + 1
        return counts

    def pending_intervals(self, end_time: Optional[int] = None) -> List[tuple]:
        """``(pid, invoke_time, respond_time_or_None)`` for every invocation.

        ``None`` as respond time means the invocation is still pending at
        ``end_time`` (defaults to the history's end).
        """
        if end_time is None:
            end_time = self.end_time
        responded: Dict[int, List[Response]] = {}
        for r in self.responses:
            responded.setdefault(r.pid, []).append(r)
        cursors: Dict[int, int] = {pid: 0 for pid in responded}
        out = []
        for inv in self.invocations:
            rs = responded.get(inv.pid, [])
            cursor = cursors.get(inv.pid, 0)
            if cursor < len(rs):
                out.append((inv.pid, inv.time, rs[cursor].time))
                cursors[inv.pid] = cursor + 1
            else:
                out.append((inv.pid, inv.time, None))
        return out

    def max_response_gap(self, pid: int) -> Optional[int]:
        """Largest gap (in time steps) between consecutive responses of ``pid``.

        ``None`` if the process responded fewer than two times.
        """
        times = self.response_times(pid)
        if len(times) < 2:
            return None
        return max(b - a for a, b in zip(times, times[1:]))

    def __len__(self) -> int:
        return len(self.invocations) + len(self.responses)
