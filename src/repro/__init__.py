"""repro — a reproduction of *"Are Lock-Free Concurrent Algorithms
Practically Wait-Free?"* (Alistarh, Censor-Hillel, Shavit; PODC/STOC 2014).

The library provides:

* a discrete-time shared-memory simulator matching the paper's system
  model (:mod:`repro.sim`),
* the scheduler hierarchy of Definition 1, from the uniform stochastic
  scheduler to encoded adversaries (:mod:`repro.core.scheduler`),
* the lock-free algorithms the paper analyses — CAS counters, the
  ``SCU(q, s)`` skeleton, Treiber stack, Michael-Scott queue, a universal
  construction, and Algorithm 1's unbounded counterexample
  (:mod:`repro.algorithms`),
* the paper's Markov chains with their liftings, built exactly
  (:mod:`repro.chains` on top of :mod:`repro.markov`),
* the iterated balls-into-bins game behind the ``O(sqrt(n))`` bound
  (:mod:`repro.ballsbins`),
* latency/progress measurement and the paper's closed-form predictions
  (:mod:`repro.core`).

Quickstart::

    from repro import SCU, UniformStochasticScheduler

    spec = SCU(q=0, s=1)                         # the CAS counter pattern
    m = spec.measure(n=16, steps=200_000, rng=0)
    print(m.system_latency, spec.predicted_system_latency(16))
"""

from repro.core import (
    SCU,
    AdversarialScheduler,
    DistributionScheduler,
    HardwareLikeScheduler,
    LatencyMeasurement,
    LotteryScheduler,
    Scheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
    measure_latencies,
    measure_latencies_ensemble,
    progress_report,
)
from repro.sim import (
    EnsembleReplicate,
    EnsembleResult,
    EnsembleSimulator,
    Memory,
    SimulationResult,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "SCU",
    "AdversarialScheduler",
    "DistributionScheduler",
    "EnsembleReplicate",
    "EnsembleResult",
    "EnsembleSimulator",
    "HardwareLikeScheduler",
    "LatencyMeasurement",
    "LotteryScheduler",
    "Memory",
    "Scheduler",
    "SimulationResult",
    "Simulator",
    "SkewedStochasticScheduler",
    "UniformStochasticScheduler",
    "__version__",
    "measure_latencies",
    "measure_latencies_ensemble",
    "progress_report",
]
