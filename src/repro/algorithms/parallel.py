"""Parallel code (Section 6.2, Algorithm 4) — ``SCU(q, 0)``.

A method call that completes after the process executes ``q`` steps,
irrespective of what other processes do.  There is no contention at all:
the induced chains (:mod:`repro.chains.parallel`) give system latency
exactly ``q`` and individual latency exactly ``n * q`` (Lemma 11).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.ops import Nop, Write
from repro.sim.process import ProcessFactory, repeat_method


def parallel_method(
    pid: int, q: int, *, touch_register: bool = False
) -> Generator[Any, Any, int]:
    """One parallel-code method call of ``q`` steps; returns ``q``.

    With ``touch_register`` the steps write a per-process scratch register
    instead of being pure no-ops — identical step accounting, but the
    memory traffic is visible to tests asserting on register counters.
    """
    if q < 1:
        raise ValueError("q must be at least 1 for a method call to cost a step")
    for step in range(q):
        if touch_register:
            yield Write(f"scratch{pid}", step)
        else:
            yield Nop()
    return q


def parallel_code(
    q: int,
    *,
    calls: Optional[int] = None,
    touch_register: bool = False,
) -> ProcessFactory:
    """Process factory: an endless stream of ``q``-step parallel calls."""

    def method_call(pid: int) -> Generator[Any, Any, int]:
        return parallel_method(pid, q, touch_register=touch_register)

    return repeat_method(method_call, method=f"parallel({q})", calls=calls)
