"""A Harris-style lock-free ordered set (linked list with logical
deletion).

Included to stress the framework beyond strict ``SCU(q, s)``: removal
needs *two* conceptual CAS targets (mark, then unlink), searches help by
physically unlinking marked nodes, and operations traverse arbitrarily
long prefixes — yet under the uniform stochastic scheduler the structure
still behaves practically wait-free, which is exactly the genre of
empirical claim the paper's framework is meant to support.

Representation on the simulator: each node is a unique integer id; a
node's successor pointer and deletion mark live together in register
``link:{id}`` as an immutable pair ``(next_id, marked)`` — the standard
single-word encoding of Harris's mark bit (on hardware, a tagged
pointer).  Keys are written to ``key:{id}`` before the node is linked.
The list is sorted ascending with integer sentinels ``-inf``/``+inf``
(ids 0 and 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read, Write
from repro.sim.process import Completion, Invoke, ProcessFactory, ProcessGenerator

HEAD = 0
TAIL = 1
HEAD_KEY = float("-inf")
TAIL_KEY = float("inf")


def _link(node: int) -> str:
    return f"link:{node}"


def _key(node: int) -> str:
    return f"key:{node}"


def make_set_memory() -> Memory:
    """Memory with an empty set: head -> tail sentinels."""
    memory = Memory()
    memory.register(_key(HEAD), HEAD_KEY)
    memory.register(_key(TAIL), TAIL_KEY)
    memory.register(_link(HEAD), (TAIL, False))
    memory.register(_link(TAIL), (None, False))
    return memory


def _search(key) -> Generator[Any, Any, Tuple[int, int]]:
    """Harris's search: find adjacent nodes ``(left, right)`` with
    ``key(left) < key <= key(right)``, ``left`` unmarked and pointing at
    ``right``, physically unlinking any marked chain in between.

    A node ``X`` is logically deleted iff its own link word
    ``link:{X} = (successor, marked)`` carries the mark.
    """
    while True:  # try_again
        # Phase 1: walk from head; remember the last unmarked node seen
        # (left) and the link word we read from it (left_next).
        t = HEAD
        t_link = yield Read(_link(t))
        left, left_next = HEAD, t_link[0]
        while True:
            if not t_link[1]:
                left, left_next = t, t_link[0]
            t = t_link[0]
            if t == TAIL:
                break
            t_key = yield Read(_key(t))
            t_link = yield Read(_link(t))
            if not (t_link[1] or t_key < key):
                break
        right = t

        # Phase 2: already adjacent?  (Re-check right is still alive.)
        if left_next == right:
            if right != TAIL:
                r_link = yield Read(_link(right))
                if r_link[1]:
                    continue
            return left, right

        # Phase 3: unlink the marked chain between left and right.
        swung = yield CAS(_link(left), (left_next, False), (right, False))
        if swung:
            if right != TAIL:
                r_link = yield Read(_link(right))
                if r_link[1]:
                    continue
            return left, right


def contains_method(pid: int, key) -> Generator[Any, Any, bool]:
    """Wait-free-ish membership test (read-only traversal)."""
    node = HEAD
    while True:
        link = yield Read(_link(node))
        next_node, _ = link
        if next_node is None:
            return False
        next_key = yield Read(_key(next_node))
        if next_key >= key:
            if next_key != key:
                return False
            next_link = yield Read(_link(next_node))
            return not next_link[1]
        node = next_node


def insert_method(
    pid: int, key, allocator
) -> Generator[Any, Any, bool]:
    """Insert ``key``; returns True if added, False if already present."""
    node: Optional[int] = None
    while True:
        left, right = yield from _search(key)
        right_key = yield Read(_key(right))
        if right_key == key:
            return False
        if node is None:
            node = next(allocator)
            yield Write(_key(node), key)
        yield Write(_link(node), (right, False))
        linked = yield CAS(_link(left), (right, False), (node, False))
        if linked:
            return True


def remove_method(pid: int, key) -> Generator[Any, Any, bool]:
    """Remove ``key``; returns True if removed, False if absent."""
    while True:
        left, right = yield from _search(key)
        right_key = yield Read(_key(right))
        if right_key != key:
            return False
        # Logical deletion: mark right's successor link.
        link = yield Read(_link(right))
        next_node, marked = link
        if marked:
            continue  # someone else is deleting it; retry from search
        did_mark = yield CAS(_link(right), (next_node, False), (next_node, True))
        if not did_mark:
            continue
        # Physical unlink (best effort; searches will help if we fail).
        yield CAS(_link(left), (right, False), (next_node, False))
        return True


@dataclass(frozen=True)
class SetWorkload:
    """Parameters of an ordered-set stress workload."""

    key_range: int = 32
    insert_fraction: float = 0.4
    remove_fraction: float = 0.3
    seed: int = 0


def harris_set_workload(
    workload: Optional[SetWorkload] = None,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory: a seeded mix of insert / remove / contains."""
    if workload is None:
        workload = SetWorkload()
    if workload.insert_fraction + workload.remove_fraction > 1.0:
        raise ValueError("insert + remove fractions must be at most 1")
    allocator = itertools.count(2)  # 0 and 1 are sentinels

    def factory(pid: int) -> ProcessGenerator:
        rng = np.random.default_rng((workload.seed, pid))
        completed = 0
        while calls is None or completed < calls:
            roll = rng.random()
            key = int(rng.integers(workload.key_range))
            if roll < workload.insert_fraction:
                yield Invoke("insert", key)
                result = yield from insert_method(pid, key, allocator)
                yield Completion(result, "insert")
            elif roll < workload.insert_fraction + workload.remove_fraction:
                yield Invoke("remove", key)
                result = yield from remove_method(pid, key)
                yield Completion(result, "remove")
            else:
                yield Invoke("contains", key)
                result = yield from contains_method(pid, key)
                yield Completion(result, "contains")
            completed += 1

    return factory


def set_contents(memory: Memory) -> list:
    """The set's unmarked keys in order (measurement helper)."""
    out = []
    node, _ = memory.read(_link(HEAD))
    while node is not None and node != TAIL:
        next_node, marked = memory.read(_link(node))
        if not marked:
            out.append(memory.read(_key(node)))
        node = next_node
    return out
