"""Lock-based (blocking) counters: the other half of Section 2.2.

The paper's taxonomy pairs each non-blocking progress class with a
blocking one: deadlock-freedom is minimal progress *with* locks,
starvation-freedom is maximal progress with locks.  These two counters
make the pairing executable:

* :func:`tas_lock_counter` — test-and-set spin lock.  Deadlock-free:
  under any crash-free schedule somebody acquires the lock, but a
  specific process can starve (the lock is unfair).
* :func:`ticket_lock_counter` — Lamport-style ticket lock (the paper's
  reference [15] provides starvation-freedom with locks).
  Starvation-free: tickets are served in order, so under any crash-free
  fair schedule every process completes.

Both are *blocking*: crash the lock holder and every other process
spins forever — the experiment
:func:`repro.core.classify.classify_progress` runs to separate blocking
from non-blocking code.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.memory import Memory
from repro.sim.ops import CAS, FetchAndIncrement, Read, Write
from repro.sim.process import ProcessFactory, repeat_method

LOCK = "lock"
COUNTER = "locked_counter"
NEXT_TICKET = "next_ticket"
NOW_SERVING = "now_serving"


def tas_lock_method(pid: int) -> Generator[Any, Any, int]:
    """Acquire a test-and-set lock, increment, release; returns the
    pre-increment value."""
    while True:
        acquired = yield CAS(LOCK, False, True)
        if acquired:
            break
    value = yield Read(COUNTER)
    yield Write(COUNTER, value + 1)
    yield Write(LOCK, False)
    return value


def tas_lock_counter(*, calls: Optional[int] = None) -> ProcessFactory:
    """Process factory for the TAS-lock counter (deadlock-free, blocking)."""
    return repeat_method(tas_lock_method, method="locked_inc", calls=calls)


def make_tas_memory() -> Memory:
    """Memory with the lock free and the counter at 0."""
    memory = Memory()
    memory.register(LOCK, False)
    memory.register(COUNTER, 0)
    return memory


def ticket_lock_method(pid: int) -> Generator[Any, Any, int]:
    """Take a ticket, spin until served, increment, pass the baton."""
    ticket = yield FetchAndIncrement(NEXT_TICKET)
    while True:
        serving = yield Read(NOW_SERVING)
        if serving == ticket:
            break
    value = yield Read(COUNTER)
    yield Write(COUNTER, value + 1)
    yield Write(NOW_SERVING, ticket + 1)
    return value


def ticket_lock_counter(*, calls: Optional[int] = None) -> ProcessFactory:
    """Process factory for the ticket-lock counter (starvation-free,
    blocking)."""
    return repeat_method(ticket_lock_method, method="ticket_inc", calls=calls)


def make_ticket_memory() -> Memory:
    """Memory with tickets at 0 and the counter at 0."""
    memory = Memory()
    memory.register(NEXT_TICKET, 0)
    memory.register(NOW_SERVING, 0)
    memory.register(COUNTER, 0)
    return memory
