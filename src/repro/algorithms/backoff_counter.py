"""A CAS counter with constant local back-off — probing the paper's
closing question.

Section 8 asks "whether there exist concurrent algorithms which avoid
the Theta(sqrt(n)) contention factor in the latency".  The classic
engineering answer is back-off: after a failed CAS, wait before
re-reading so fewer processes hold a pending CAS at once.

In the paper's model a wait is ``k`` no-op *steps* (a process cannot
sleep off the clock — the scheduler keeps scheduling it), so back-off
trades the loser's own progress for reduced invalidation pressure on
everyone else.  The ABL3 benchmark measures the trade across ``k`` and
finds back-off *strictly loses* in this model: the system latency grows
monotonically with ``k`` at every ``n``, and the sqrt(n) shape persists.
The step-counting model charges a waiting process for its steps, unlike
real hardware where a backing-off thread frees the coherence bus — a
concrete boundary of the model, and evidence for the paper's closing
conjecture that the Theta(sqrt(n)) contention factor is intrinsic to
the class.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Nop, Read
from repro.sim.process import ProcessFactory, repeat_method

DEFAULT_REGISTER = "counter"


def backoff_counter_method(
    pid: int, backoff: int, register: str = DEFAULT_REGISTER
) -> Generator[Any, Any, int]:
    """One fetch-and-increment with ``backoff`` no-op steps after each
    failed CAS; returns the fetched value."""
    if backoff < 0:
        raise ValueError("backoff must be non-negative")
    while True:
        value = yield Read(register)
        success = yield CAS(register, value, value + 1)
        if success:
            return value
        for _ in range(backoff):
            yield Nop()


def backoff_counter(
    backoff: int,
    register: str = DEFAULT_REGISTER,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory for the backing-off counter.

    ``backoff = 0`` reduces to :func:`repro.algorithms.counter.cas_counter`.
    """

    def method_call(pid: int) -> Generator[Any, Any, int]:
        return backoff_counter_method(pid, backoff, register)

    return repeat_method(method_call, method="fetch_and_inc_backoff", calls=calls)


def make_backoff_memory(register: str = DEFAULT_REGISTER, initial: int = 0) -> Memory:
    """A memory with the counter register initialised."""
    memory = Memory()
    memory.register(register, initial)
    return memory
