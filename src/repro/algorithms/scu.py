"""The generic ``SCU(q, s)`` skeleton (Section 5, Algorithm 2).

An algorithm in ``SCU(q, s)`` runs a *preamble* of ``q`` steps (auxiliary
work: local updates, allocation — memory traffic that does not touch the
decision register), then loops through a *scan region* of ``s`` reads
(the decision register ``R`` plus ``s - 1`` auxiliary registers) followed
by a *validation* CAS on ``R``.  A successful CAS completes the method
call; a failed CAS restarts the loop.

Per the paper's assumptions, two processes never propose the same value
for ``R`` — here each proposal carries a ``(pid, sequence)`` timestamp,
which is exactly the paper's suggested fix ("this can be easily enforced
by adding a timestamp to each request").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Nop, Read
from repro.sim.process import Completion, Invoke, ProcessFactory

DEFAULT_DECISION = "R"
DEFAULT_AUX_PREFIX = "R_aux"


@dataclass(frozen=True)
class Proposal:
    """A timestamped proposed state for the decision register.

    ``payload`` is the logical new state; the ``(pid, sequence)`` pair
    makes proposals globally unique so CAS comparisons are unambiguous.
    """

    pid: int
    sequence: int
    payload: Any = None


def aux_register(index: int, prefix: str = DEFAULT_AUX_PREFIX) -> str:
    """Name of the ``index``-th auxiliary scan register (1-based)."""
    return f"{prefix}{index}"


@dataclass(frozen=True)
class ScuStepKernel:
    """Array-encodable step kernel for ``SCU(q, s)`` (ensemble engine).

    Proposals are globally unique (``(pid, sequence)`` timestamps), so the
    decision register acts as a version counter: a validating CAS succeeds
    iff no other CAS succeeded between its decision read and itself — the
    event condition :class:`repro.sim.EnsembleSimulator` resolves.
    ``commit`` rebuilds the final decision register from the time-ordered
    success events (each committed proposal's payload is the previous
    register value, per Algorithm 2) and settles the access counters in
    closed form: per completed attempt one read of the decision register
    and of each auxiliary register plus one CAS attempt, plus the partial
    reads of an unfinished attempt (``phase`` past the register's scan
    position).  Preamble steps are ``Nop``s and touch no register.
    """

    q: int
    s: int
    decision: str = DEFAULT_DECISION
    aux_prefix: str = DEFAULT_AUX_PREFIX

    def __post_init__(self) -> None:
        if self.q < 0:
            raise ValueError("q must be non-negative")
        if self.s < 1:
            raise ValueError("s must be at least 1 (the decision register read)")

    def commit(
        self,
        memory: Memory,
        *,
        seq: np.ndarray,
        phase: np.ndarray,
        success_pids: np.ndarray,
        success_seqs: np.ndarray,
    ) -> None:
        attempts = int(seq.sum())
        reg = memory[self.decision]
        reg.reads += attempts + int(np.count_nonzero(phase > self.q))
        reg.cas_attempts += attempts
        reg.cas_successes += int(success_pids.shape[0])
        value = reg.value
        for pid, sequence in zip(success_pids.tolist(), success_seqs.tolist()):
            value = Proposal(pid, sequence, payload=value)
        reg.value = value
        for index in range(1, self.s):
            aux = memory[aux_register(index, self.aux_prefix)]
            aux.reads += attempts + int(np.count_nonzero(phase > self.q + index))


def scu_method(
    pid: int,
    q: int,
    s: int,
    *,
    sequence_start: int = 0,
    decision: str = DEFAULT_DECISION,
    aux_prefix: str = DEFAULT_AUX_PREFIX,
) -> Generator[Any, Any, Proposal]:
    """One ``SCU(q, s)`` method call; returns the committed proposal.

    Parameters mirror Algorithm 2: ``q`` preamble steps and ``s`` scan
    steps (``s >= 1``; the first scan step reads the decision register).
    """
    if q < 0:
        raise ValueError("q must be non-negative")
    if s < 1:
        raise ValueError("s must be at least 1 (the decision register read)")
    # Operations are immutable values, so the loop-invariant ones are
    # built once up front instead of on every yield (hot-path allocation).
    nop = Nop()
    read_decision = Read(decision)
    aux_reads = [Read(aux_register(index, aux_prefix)) for index in range(1, s)]
    # Preamble region: q steps of auxiliary memory traffic.  They may
    # update the aux registers but never the decision register.
    for step in range(q):
        yield nop
    sequence = sequence_start
    while True:
        # Scan region: read the decision register, then the s - 1
        # auxiliary registers (the order is irrelevant to the analysis).
        view = yield read_decision
        for aux_read in aux_reads:
            yield aux_read
        proposal = Proposal(pid, sequence, payload=view)
        sequence += 1
        # Validation step.
        success = yield CAS(decision, view, proposal)
        if success:
            return proposal


def scu_algorithm(
    q: int,
    s: int,
    *,
    calls: Optional[int] = None,
    decision: str = DEFAULT_DECISION,
    aux_prefix: str = DEFAULT_AUX_PREFIX,
) -> ProcessFactory:
    """Process factory: an endless stream of ``SCU(q, s)`` method calls.

    Proposal sequence numbers continue across calls so every proposal a
    process ever makes is distinct.
    """
    if q < 0:
        raise ValueError("q must be non-negative")
    if s < 1:
        raise ValueError("s must be at least 1 (the decision register read)")
    sequence_counters = {}
    method = f"scu({q},{s})"

    def factory(pid: int):
        # Flattened fast path: a single generator frame instead of the
        # repeat_method -> method_call -> scu_method delegation chain.
        # The executor pays one ``send`` per frame per step, so nesting
        # depth is a direct per-step cost.  Must stay trace-identical to
        # ``repeat_method`` around :func:`scu_method` — enforced by
        # tests/algorithms/test_scu_generic.py.
        nop = Nop()
        read_decision = Read(decision)
        aux_reads = [Read(aux_register(index, aux_prefix)) for index in range(1, s)]
        invoke = Invoke(method)
        sequence = sequence_counters.get(pid, 0)
        count = 0
        while calls is None or count < calls:
            yield invoke
            for _ in range(q):
                yield nop
            while True:
                view = yield read_decision
                for aux_read in aux_reads:
                    yield aux_read
                proposal = Proposal(pid, sequence, payload=view)
                sequence += 1
                if (yield CAS(decision, view, proposal)):
                    break
            sequence_counters[pid] = sequence
            yield Completion(proposal, method)
            count += 1

    if calls is None:
        # Endless symmetric workloads are ensemble-resolvable; expose the
        # kernel so EnsembleSimulator / latency_sweep(engine="ensemble")
        # can pick it up from the factory.
        factory.vector_kernel = ScuStepKernel(
            q, s, decision=decision, aux_prefix=aux_prefix
        )
    return factory


def make_scu_memory(
    s: int,
    *,
    decision: str = DEFAULT_DECISION,
    aux_prefix: str = DEFAULT_AUX_PREFIX,
    initial: Any = None,
) -> Memory:
    """A memory with the decision and auxiliary registers initialised."""
    memory = Memory()
    memory.register(decision, initial)
    for index in range(1, s):
        memory.register(aux_register(index, aux_prefix), 0)
    return memory
