"""Fetch-and-increment from *augmented* CAS (Section 7, Algorithm 5).

Some architectures return the register's current value from a failed CAS
(x86 ``CMPXCHG`` does).  The paper exploits this to build a one-step-per-
attempt counter: every step is a single augmented CAS, after which the
process always knows the register's current value —

* on success, the process wrote ``v + 1``, so its local value is current;
* on failure, the returned value *is* the current value.

Consequently, in the induced Markov chain a process is always in one of
two extended local states, ``Current`` (its next CAS will succeed if
scheduled) or ``Stale`` — and every step by any process moves that process
to ``Current``, while a success makes everyone else ``Stale``.  These are
exactly the transitions of the individual chain of Section 7.1
(:mod:`repro.chains.counter`).

Each completed operation costs one step in the best case; the expected
number of *system* steps between completions is the Ramanujan-Q return
time ``W = Z(n-1) ~ sqrt(pi n / 2)`` (Lemma 12).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.memory import Memory
from repro.sim.ops import augmented_cas
from repro.sim.process import Completion, Invoke, ProcessGenerator, ProcessFactory

DEFAULT_REGISTER = "counter"


def augmented_cas_counter(
    register: str = DEFAULT_REGISTER,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory for Algorithm 5.

    The local value ``v`` persists *across* method calls (the pseudocode's
    ``v <- 0`` happens once), so the factory wraps the whole loop rather
    than a per-call generator: each successful CAS completes one
    ``fetch_and_inc`` invocation and the next invocation starts
    immediately with the already-current local value.
    """

    def factory(pid: int) -> ProcessGenerator:
        local = 0
        completed = 0
        while calls is None or completed < calls:
            yield Invoke("fetch_and_inc")
            while True:
                previous = yield augmented_cas(register, local, local + 1)
                if previous == local:
                    # Success: we installed local + 1, which is now current.
                    fetched = local
                    local = local + 1
                    break
                # Failure: the augmented CAS told us the current value.
                local = previous
            yield Completion(fetched, "fetch_and_inc")
            completed += 1

    return factory


def make_augmented_counter_memory(
    register: str = DEFAULT_REGISTER, initial: int = 0
) -> Memory:
    """A memory with the counter register initialised."""
    memory = Memory()
    memory.register(register, initial)
    return memory
