"""The workload registry: every algorithm in the zoo as a first-class
measured workload.

The paper's claim is about a *class* — SCU(q, s) is practically
wait-free under a uniform stochastic scheduler — but a measurement
pipeline that only ever runs the CAS counter cannot probe the claim's
boundary.  This module gives each algorithm in
:mod:`repro.algorithms` a uniform handle, a :class:`Workload`, that
flows through :func:`repro.core.latency.measure_latencies`,
:func:`repro.core.sweep.latency_sweep` / ``parallel_sweep`` and the CLI
exactly like the CAS counter: same checkpoint fingerprints (the
workload name is folded into the schema-versioned sweep fingerprint),
same telemetry events, same stores.

Every builder referenced here is a **module-level callable**, so
registry workloads remain picklable for ``parallel_sweep``'s process
pools — the builders, not the factories, cross process boundaries.

Use :func:`get_workload` to resolve a name, :func:`workload_names` to
enumerate, and :func:`register_workload` to add project-local entries
(tests register throwaway workloads this way).

Engine support: the ensemble engine resolves only SCU-shaped symmetric
workloads (the CAS counter exposes a vector kernel); every other zoo
member runs on the serial and batched engines, which are bit-identical
by the PR 1 contract.  Blocking workloads (``blocking=True``) spin
forever if the lock holder crashes — crash sweeps over them measure
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.harris_set import harris_set_workload, make_set_memory
from repro.algorithms.locks import (
    make_tas_memory,
    make_ticket_memory,
    tas_lock_counter,
    ticket_lock_counter,
)
from repro.algorithms.msqueue import make_queue_memory, ms_queue_workload
from repro.algorithms.obstruction import (
    make_obstruction_memory,
    obstruction_free_counter,
)
from repro.algorithms.randomized_lock import (
    make_randomized_lock_memory,
    randomized_tas_counter,
)
from repro.algorithms.treiber import make_stack_memory, treiber_workload
from repro.algorithms.universal import sequential_counter, universal_workload
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory


@dataclass(frozen=True)
class Workload:
    """One registered algorithm, ready for the measurement pipeline.

    Attributes
    ----------
    name:
        Registry key; also the value folded into sweep fingerprints, so
        renaming a workload invalidates its checkpoints on purpose.
    factory_builder:
        Zero-argument callable returning a fresh
        :data:`~repro.sim.process.ProcessFactory` (module-level, hence
        picklable).  Fresh per run: factories may close over shared
        allocators.
    memory_builder:
        Zero-argument callable returning the workload's initial
        :class:`~repro.sim.memory.Memory`.
    description:
        One line for ``repro latency --workload help`` style listings.
    blocking:
        True for lock-based members: a crash of the holder blocks
        everyone else forever (Section 2.2's blocking half).
    scu_shape:
        ``(q, s)`` when the workload is a strict SCU(q, s) member, else
        ``None`` — the paper's bounds only speak to the former.
    """

    name: str
    factory_builder: Callable[[], ProcessFactory]
    memory_builder: Callable[[], Memory]
    description: str = ""
    blocking: bool = False
    scu_shape: Optional[Tuple[int, int]] = None

    @property
    def fingerprint(self) -> str:
        """The value folded into sweep fingerprints for this workload."""
        return self.name


def _universal_counter_factory() -> ProcessFactory:
    return universal_workload(sequential_counter(), _increment_operation)


def _increment_operation(pid: int, k: int):
    return ("inc",)


def _universal_counter_memory() -> Memory:
    return sequential_counter().make_memory()


_REGISTRY: Dict[str, Workload] = {}


def register_workload(workload: Workload, *, replace: bool = False) -> Workload:
    """Add ``workload`` to the registry; returns it for chaining.

    Refuses to shadow an existing name unless ``replace=True`` — a
    silently replaced workload would fingerprint-collide with sweeps
    recorded under the old definition.
    """
    if not replace and workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} is already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Resolve a registered workload by name; KeyError names the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> Tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_workloads() -> Iterator[Workload]:
    """All registered workloads in name order."""
    for name in workload_names():
        yield _REGISTRY[name]


register_workload(
    Workload(
        "cas-counter",
        cas_counter,
        make_counter_memory,
        description="CAS-loop fetch-and-increment (SCU(0,1); Figure 5)",
        scu_shape=(0, 1),
    )
)
register_workload(
    Workload(
        "msqueue",
        ms_queue_workload,
        make_queue_memory,
        description="Michael-Scott lock-free queue (multi-register CAS, helping)",
    )
)
register_workload(
    Workload(
        "treiber",
        treiber_workload,
        make_stack_memory,
        description="Treiber lock-free stack (scan-validate on one top pointer)",
    )
)
register_workload(
    Workload(
        "harris-set",
        harris_set_workload,
        make_set_memory,
        description="Harris ordered set (logical deletion, helping unlinks)",
    )
)
register_workload(
    Workload(
        "universal-counter",
        _universal_counter_factory,
        _universal_counter_memory,
        description="Herlihy universal construction around a counter (SCU(0,1))",
        scu_shape=(0, 1),
    )
)
register_workload(
    Workload(
        "obstruction",
        obstruction_free_counter,
        make_obstruction_memory,
        description="collision-abort counter (obstruction-free, not lock-free)",
    )
)
register_workload(
    Workload(
        "tas-lock",
        tas_lock_counter,
        make_tas_memory,
        description="test-and-set spin-lock counter (deadlock-free, blocking)",
        blocking=True,
    )
)
register_workload(
    Workload(
        "ticket-lock",
        ticket_lock_counter,
        make_ticket_memory,
        description="ticket-lock counter (starvation-free, blocking)",
        blocking=True,
    )
)
register_workload(
    Workload(
        "rtas-lock",
        randomized_tas_counter,
        make_randomized_lock_memory,
        description=(
            "randomized TAS lock counter (Ben-David-Blelloch fairness baseline)"
        ),
        blocking=True,
    )
)
