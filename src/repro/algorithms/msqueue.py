"""The Michael-Scott lock-free queue (the paper's reference [17]).

Unlike the pure scan-validate pattern, the MS queue CASes *different*
registers (a node's ``next`` pointer, then the ``tail``, or the ``head``)
and contains helping (swinging a lagging tail).  It is included to show
the framework handles lock-free algorithms beyond strict ``SCU(q, s)``
and — in the structure ablation — that its latency under the uniform
stochastic scheduler still scales like the model predicts.

Representation: nodes are unique integers from a never-reusing allocator
(so CAS comparisons cannot suffer ABA); a node's ``next`` pointer lives in
register ``next:{id}``; node payloads are written to register
``val:{id}`` *before* the node is published, costing one preamble step,
exactly as a real enqueue initialises the node before linking it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read, Write
from repro.sim.process import Completion, Invoke, ProcessFactory, ProcessGenerator

HEAD = "queue_head"
TAIL = "queue_tail"

#: Sentinel returned by ``dequeue`` on an empty queue.
EMPTY = object()


def _next_register(node: int) -> str:
    return f"next:{node}"


def _value_register(node: int) -> str:
    return f"val:{node}"


def enqueue_method(
    pid: int, node: int, value: Any
) -> Generator[Any, Any, Any]:
    """One lock-free enqueue of a pre-allocated ``node``; returns ``value``.

    The first step initialises the node's payload (preamble); the loop
    then links the node at the tail and swings the tail pointer.
    """
    yield Write(_value_register(node), value)
    while True:
        tail = yield Read(TAIL)
        nxt = yield Read(_next_register(tail))
        if nxt is None:
            linked = yield CAS(_next_register(tail), None, node)
            if linked:
                # Swing the tail; failure means someone helped us already.
                yield CAS(TAIL, tail, node)
                return value
        else:
            # Tail is lagging: help swing it before retrying.
            yield CAS(TAIL, tail, nxt)


def dequeue_method(pid: int) -> Generator[Any, Any, Any]:
    """One lock-free dequeue; returns the value or :data:`EMPTY`."""
    while True:
        head = yield Read(HEAD)
        tail = yield Read(TAIL)
        nxt = yield Read(_next_register(head))
        if head == tail:
            if nxt is None:
                return EMPTY
            # Tail is lagging behind a non-empty queue: help.
            yield CAS(TAIL, tail, nxt)
        elif nxt is not None:
            value = yield Read(_value_register(nxt))
            moved = yield CAS(HEAD, head, nxt)
            if moved:
                return value
        # Otherwise our snapshot was inconsistent; retry the loop.


@dataclass(frozen=True)
class MSQueueWorkload:
    """Parameters of a queue stress workload."""

    enqueue_fraction: float = 0.5
    seed: int = 0


def ms_queue_workload(
    workload: Optional[MSQueueWorkload] = None,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory: an endless seeded mix of enqueues and dequeues.

    All factories returned by one call share a node allocator, so node
    ids are globally unique across processes.
    """
    if workload is None:
        workload = MSQueueWorkload()
    if not 0.0 <= workload.enqueue_fraction <= 1.0:
        raise ValueError("enqueue_fraction must lie in [0, 1]")
    allocator = itertools.count(1)  # node 0 is the dummy

    def factory(pid: int) -> ProcessGenerator:
        rng = np.random.default_rng((workload.seed, pid))
        produced = 0
        completed = 0
        while calls is None or completed < calls:
            if rng.random() < workload.enqueue_fraction:
                value_to_enqueue = (pid, produced)
                yield Invoke("enqueue", value_to_enqueue)
                node = next(allocator)
                value = yield from enqueue_method(pid, node, value_to_enqueue)
                produced += 1
                yield Completion(value, "enqueue")
            else:
                yield Invoke("dequeue")
                value = yield from dequeue_method(pid)
                yield Completion(value, "dequeue")
            completed += 1

    return factory


def make_queue_memory() -> Memory:
    """Memory with an empty queue: a dummy node 0 at both head and tail."""
    memory = Memory()
    memory.register(HEAD, 0)
    memory.register(TAIL, 0)
    memory.register(_next_register(0), None)
    return memory


def queue_contents(memory: Memory) -> list:
    """The queue's values front to back (measurement helper)."""
    out = []
    node = memory.read(_next_register(memory.read(HEAD)))
    while node is not None:
        out.append(memory.read(_value_register(node)))
        node = memory.read(_next_register(node))
    return out
