"""An obstruction-free (but NOT lock-free) counter.

Section 2.2 defines obstruction-freedom as maximal progress in every
*uniformly isolating* execution — a process running long enough alone
completes.  The classic way to be obstruction-free without being
lock-free is a *collision-abort* pattern: announce intent, do the work,
and abort if anyone else announced meanwhile.

``method``: write ``claim <- pid``; read the counter; re-read ``claim``;
if it still names us, commit with a CAS, else abort and restart.  Two
processes in lockstep abort each other forever (no minimal progress —
not lock-free), yet any process given 4 consecutive steps completes
(obstruction-free), and the final CAS keeps the counter safe under any
interleaving.

Under the uniform stochastic scheduler, Section 4's argument applies to
*clash-free / obstruction-free* algorithms too: each process eventually
gets enough consecutive steps, so the algorithm is practically
wait-free — demonstrated in the tests and the progress-classifier
example.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read, Write
from repro.sim.process import ProcessFactory, repeat_method

CLAIM = "of_claim"
COUNTER = "of_counter"


def obstruction_free_method(pid: int) -> Generator[Any, Any, int]:
    """One collision-abort increment; returns the pre-increment value."""
    while True:
        yield Write(CLAIM, pid)
        value = yield Read(COUNTER)
        owner = yield Read(CLAIM)
        if owner != pid:
            continue  # collision: abort and retry
        committed = yield CAS(COUNTER, value, value + 1)
        if committed:
            return value


def obstruction_free_counter(*, calls: Optional[int] = None) -> ProcessFactory:
    """Process factory for the collision-abort counter."""
    return repeat_method(
        obstruction_free_method, method="of_inc", calls=calls
    )


def make_obstruction_memory() -> Memory:
    """Memory with the claim empty and the counter at 0."""
    memory = Memory()
    memory.register(CLAIM, None)
    memory.register(COUNTER, 0)
    return memory
