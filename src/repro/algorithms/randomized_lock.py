"""A randomized test-and-set lock counter (Ben-David & Blelloch flavour).

Ben-David & Blelloch (arXiv:2108.04520) show that *randomization* turns
blocking locks into a fairness story: when contenders randomize their
acquisition attempts, no fixed adversary can starve a particular process
cheaply, and expected acquisition times concentrate.  This module is the
simulator's rendition of that idea as a baseline for the contention-zoo
benchmarks: a test-and-set spin lock where a loser waits a uniformly
random number of no-op steps (drawn from a doubling window) before
retrying, so contenders decorrelate instead of hammering the lock word
in lockstep.

The randomness is *process-local* — each process derives its stream from
``(seed, pid)`` exactly like the queue/stack/set workloads — so the
scheduler's RNG stream is untouched and all engine bit-identity
contracts hold unchanged.

Measured against Theorem 4's ``n × system-latency`` fairness law, this
lock is the "fair blocking" corner of the zoo: still blocking (crash the
holder and everyone spins), but with individual latencies far closer to
``n ×`` the system latency than the bare TAS lock's unbounded skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Nop, Read, Write
from repro.sim.process import Completion, Invoke, ProcessFactory, ProcessGenerator

LOCK = "rtas_lock"
COUNTER = "rtas_counter"


def randomized_tas_method(
    pid: int,
    rng: np.random.Generator,
    max_window: int = 8,
) -> Generator[Any, Any, int]:
    """Acquire the randomized TAS lock, increment, release; returns the
    pre-increment value.

    After each failed acquisition CAS the process waits ``wait`` no-op
    steps with ``wait`` drawn uniformly from ``[0, window]``; the window
    doubles (capped at ``max_window``) while the lock stays contended.
    In the paper's step-counting model the waits are real steps, so the
    fairness gain is priced honestly against throughput.
    """
    if max_window < 0:
        raise ValueError("max_window must be non-negative")
    window = 1
    while True:
        acquired = yield CAS(LOCK, False, True)
        if acquired:
            break
        wait = int(rng.integers(min(window, max_window) + 1))
        for _ in range(wait):
            yield Nop()
        window = min(2 * window, max_window) if max_window else 0
    value = yield Read(COUNTER)
    yield Write(COUNTER, value + 1)
    yield Write(LOCK, False)
    return value


@dataclass(frozen=True)
class RandomizedLockWorkload:
    """Parameters of the randomized-lock counter workload."""

    max_window: int = 8
    seed: int = 0


def randomized_tas_counter(
    workload: Optional[RandomizedLockWorkload] = None,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory for the randomized TAS-lock counter.

    ``max_window = 0`` degenerates to the plain (unfair) TAS lock of
    :func:`repro.algorithms.locks.tas_lock_counter`, modulo register
    names.
    """
    if workload is None:
        workload = RandomizedLockWorkload()
    if workload.max_window < 0:
        raise ValueError("max_window must be non-negative")

    def factory(pid: int) -> ProcessGenerator:
        rng = np.random.default_rng((workload.seed, pid))
        completed = 0
        while calls is None or completed < calls:
            yield Invoke("locked_inc")
            value = yield from randomized_tas_method(
                pid, rng, workload.max_window
            )
            yield Completion(value, "locked_inc")
            completed += 1

    return factory


def make_randomized_lock_memory() -> Memory:
    """Memory with the lock free and the counter at 0."""
    memory = Memory()
    memory.register(LOCK, False)
    memory.register(COUNTER, 0)
    return memory
