"""A Herlihy-style universal construction in SCU form (reference [9]).

Any sequential object — given as a pure ``apply(state, operation) ->
(new_state, result)`` function — becomes a lock-free concurrent object:
a method call reads the current versioned state from the decision
register, computes the new state locally, and installs it with one CAS.
This is exactly the pattern Section 5 calls universal ("every sequential
object has a lock-free implementation in this class"), so it is a member
of ``SCU(0, 1)`` for any sequential object whose state fits one register.

Versioning makes CAS comparisons unambiguous (two installs can never
carry the same ``(version, pid)`` pair), fulfilling the paper's
distinct-proposals assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read
from repro.sim.process import Completion, Invoke, ProcessFactory, ProcessGenerator

DEFAULT_STATE_REGISTER = "object_state"

SequentialApply = Callable[[Any, Any], Tuple[Any, Any]]


@dataclass(frozen=True)
class VersionedState:
    """The decision register's contents: a versioned immutable state."""

    version: int
    state: Any
    installer: int = -1


class UniversalObject:
    """A sequential object lifted to a lock-free concurrent object.

    Parameters
    ----------
    apply:
        Pure function ``(state, operation) -> (new_state, result)``.
        It must not mutate ``state`` — the old state stays visible to
        concurrent scanners.
    initial_state:
        The object's initial sequential state.
    register:
        Name of the decision register.

    Examples
    --------
    A counter: ``UniversalObject(lambda s, _op: (s + 1, s), 0)``.
    """

    def __init__(
        self,
        apply: SequentialApply,
        initial_state: Any,
        register: str = DEFAULT_STATE_REGISTER,
    ) -> None:
        self.apply = apply
        self.initial_state = initial_state
        self.register = register

    def make_memory(self) -> Memory:
        """Memory with the decision register holding version 0."""
        memory = Memory()
        memory.register(self.register, VersionedState(0, self.initial_state))
        return memory

    def method(
        self, pid: int, operation: Any
    ) -> Generator[Any, Any, Any]:
        """One lock-free invocation of ``operation``; returns its result."""
        while True:
            current = yield Read(self.register)
            new_state, result = self.apply(current.state, operation)
            proposed = VersionedState(current.version + 1, new_state, pid)
            success = yield CAS(self.register, current, proposed)
            if success:
                return result

    def current_state(self, memory: Memory) -> Any:
        """The sequential state currently installed (measurement helper)."""
        return memory.read(self.register).state


def universal_workload(
    obj: UniversalObject,
    operations: Callable[[int, int], Any],
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory: each process issues ``operations(pid, k)`` for
    ``k = 0, 1, ...`` against the universal object."""

    def factory(pid: int) -> ProcessGenerator:
        k = 0
        while calls is None or k < calls:
            operation = operations(pid, k)
            yield Invoke("apply", operation)
            result = yield from obj.method(pid, operation)
            yield Completion(result, "apply")
            k += 1

    return factory


def sequential_counter() -> UniversalObject:
    """A fetch-and-increment counter as a universal object."""
    return UniversalObject(lambda state, _op: (state + 1, state), 0)


def sequential_stack() -> UniversalObject:
    """A stack (immutable-tuple representation) as a universal object.

    Operations are ``("push", value)`` and ``("pop",)``; pop on empty
    returns ``None``.
    """

    def apply(state: tuple, operation: Sequence) -> Tuple[tuple, Any]:
        if operation[0] == "push":
            return (operation[1],) + state, operation[1]
        if operation[0] == "pop":
            if not state:
                return state, None
            return state[1:], state[0]
        raise ValueError(f"unknown stack operation {operation!r}")

    return UniversalObject(apply, ())
