"""Lock-free algorithms implemented on the shared-memory simulator.

Every algorithm here is expressed as a generator of shared-memory
operations (see :mod:`repro.sim`), one yield per step, exactly mirroring
the paper's pseudocode:

* :mod:`repro.algorithms.counter` — the CAS-loop fetch-and-increment
  counter, the canonical ``SCU(0, 1)`` member (Algorithm 3 instantiated;
  also the implementation measured in Appendix B / Figure 5).
* :mod:`repro.algorithms.augmented_counter` — Algorithm 5, the
  fetch-and-increment built from augmented CAS (Section 7).
* :mod:`repro.algorithms.scu` — the generic ``SCU(q, s)`` skeleton
  (Algorithm 2): ``q`` preamble steps, then scan ``s`` registers and CAS.
* :mod:`repro.algorithms.parallel` — Algorithm 4, parallel code: ``q``
  steps that always complete (Section 6.2).
* :mod:`repro.algorithms.unbounded` — Algorithm 1, the *unbounded*
  lock-free algorithm that is not wait-free w.h.p. (Lemma 2).
* :mod:`repro.algorithms.treiber` — Treiber's lock-free stack [21].
* :mod:`repro.algorithms.msqueue` — the Michael-Scott lock-free queue [17].
* :mod:`repro.algorithms.universal` — a Herlihy-style universal
  construction in SCU form [9]: any sequential object, lock-free.
* :mod:`repro.algorithms.backoff_counter` — the CAS counter with local
  back-off (the Section 8 open-question probe).
* :mod:`repro.algorithms.locks` — blocking counters: TAS spin lock
  (deadlock-free) and ticket lock (starvation-free, reference [15]).
* :mod:`repro.algorithms.obstruction` — a collision-abort counter that
  is obstruction-free but not lock-free.
* :mod:`repro.algorithms.randomized_lock` — a randomized TAS-lock
  counter (Ben-David & Blelloch flavour), the fairness baseline of the
  contention zoo.
* :mod:`repro.algorithms.registry` — the :class:`Workload` registry that
  makes every algorithm above a first-class measured workload for
  ``measure_latencies`` / ``latency_sweep`` / the CLI.
"""

from repro.algorithms.augmented_counter import augmented_cas_counter
from repro.algorithms.backoff_counter import backoff_counter
from repro.algorithms.counter import cas_counter, cas_counter_method
from repro.algorithms.harris_set import SetWorkload, harris_set_workload
from repro.algorithms.locks import tas_lock_counter, ticket_lock_counter
from repro.algorithms.msqueue import MSQueueWorkload, ms_queue_workload
from repro.algorithms.obstruction import obstruction_free_counter
from repro.algorithms.parallel import parallel_code
from repro.algorithms.randomized_lock import (
    RandomizedLockWorkload,
    randomized_tas_counter,
)
from repro.algorithms.registry import (
    Workload,
    get_workload,
    iter_workloads,
    register_workload,
    workload_names,
)
from repro.algorithms.scu import scu_algorithm, scu_method
from repro.algorithms.treiber import TreiberWorkload, treiber_workload
from repro.algorithms.unbounded import unbounded_lockfree
from repro.algorithms.universal import UniversalObject, universal_workload

__all__ = [
    "MSQueueWorkload",
    "RandomizedLockWorkload",
    "SetWorkload",
    "TreiberWorkload",
    "UniversalObject",
    "Workload",
    "augmented_cas_counter",
    "backoff_counter",
    "cas_counter",
    "cas_counter_method",
    "get_workload",
    "harris_set_workload",
    "iter_workloads",
    "ms_queue_workload",
    "obstruction_free_counter",
    "parallel_code",
    "randomized_tas_counter",
    "register_workload",
    "scu_algorithm",
    "scu_method",
    "tas_lock_counter",
    "ticket_lock_counter",
    "treiber_workload",
    "unbounded_lockfree",
    "universal_workload",
    "workload_names",
]
