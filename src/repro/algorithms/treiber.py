"""Treiber's lock-free stack (the paper's reference [21]).

The canonical ``SCU(q, s)`` data structure: both ``push`` and ``pop`` scan
the ``top`` register and validate with a single CAS on it.  Nodes are
fresh Python objects compared by identity, so the ABA problem cannot
arise (the simulator's CAS uses ``==``, which is identity for these
nodes) — the same effect the paper's timestamping assumption provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read
from repro.sim.process import Completion, Invoke, ProcessFactory, ProcessGenerator

DEFAULT_TOP = "stack_top"

#: Sentinel returned by ``pop`` on an empty stack.
EMPTY = object()


class Node:
    """A stack node; equality is identity, so CAS never confuses nodes."""

    __slots__ = ("value", "next")

    def __init__(self, value: Any, next_node: Optional["Node"]) -> None:
        self.value = value
        self.next = next_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.value!r})"


def push_method(
    pid: int, value: Any, top: str = DEFAULT_TOP
) -> Generator[Any, Any, Any]:
    """One lock-free push; returns the pushed value."""
    while True:
        old = yield Read(top)
        node = Node(value, old)
        success = yield CAS(top, old, node)
        if success:
            return value


def pop_method(pid: int, top: str = DEFAULT_TOP) -> Generator[Any, Any, Any]:
    """One lock-free pop; returns the popped value or :data:`EMPTY`."""
    while True:
        old = yield Read(top)
        if old is None:
            return EMPTY
        success = yield CAS(top, old, old.next)
        if success:
            return old.value


@dataclass(frozen=True)
class TreiberWorkload:
    """Parameters of a stack stress workload.

    Attributes
    ----------
    push_fraction:
        Probability that each operation is a push (the rest are pops).
    top:
        Name of the ``top`` register.
    seed:
        Base seed; each process derives its own stream from it.
    """

    push_fraction: float = 0.5
    top: str = DEFAULT_TOP
    seed: int = 0


def treiber_workload(
    workload: Optional[TreiberWorkload] = None,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory: an endless seeded mix of pushes and pops.

    Pushed values are ``(pid, k)`` pairs, so every value is unique and
    linearisation checks can track elements end to end.
    """
    if workload is None:
        workload = TreiberWorkload()
    if not 0.0 <= workload.push_fraction <= 1.0:
        raise ValueError("push_fraction must lie in [0, 1]")

    def factory(pid: int) -> ProcessGenerator:
        rng = np.random.default_rng((workload.seed, pid))
        pushed = 0
        completed = 0
        while calls is None or completed < calls:
            if rng.random() < workload.push_fraction:
                value_to_push = (pid, pushed)
                yield Invoke("push", value_to_push)
                value = yield from push_method(pid, value_to_push, workload.top)
                pushed += 1
                yield Completion(value, "push")
            else:
                yield Invoke("pop")
                value = yield from pop_method(pid, workload.top)
                yield Completion(value, "pop")
            completed += 1

    return factory


def make_stack_memory(top: str = DEFAULT_TOP) -> Memory:
    """Memory with an empty stack (``top`` register holding ``None``)."""
    memory = Memory()
    memory.register(top, None)
    return memory


def stack_contents(memory: Memory, top: str = DEFAULT_TOP) -> list:
    """The stack's values from top to bottom (measurement helper)."""
    out = []
    node = memory.read(top)
    while node is not None:
        out.append(node.value)
        node = node.next
    return out
