"""The CAS-loop fetch-and-increment counter — ``SCU(0, 1)``.

This is the implementation the paper measures in Appendix B (Figure 5):
"a fetch-and-increment counter implementation which simply reads the value
``v`` of a shared register ``R``, and then attempts to increment the value
using a ``CAS(R, v, v + 1)`` call."

Each attempt costs two steps (one read, one CAS); the method call
completes at the step of the successful CAS.  The predicted completion
rate under the uniform stochastic scheduler is ``Theta(1/sqrt(n))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read
from repro.sim.process import Completion, Invoke, ProcessFactory

DEFAULT_REGISTER = "counter"


@dataclass(frozen=True)
class CounterStepKernel:
    """Array-encodable step kernel for the CAS counter (ensemble engine).

    The counter is the ``q = 0, s = 1`` shape: each attempt is a read
    followed by a validating ``CAS(v, v + 1)``.  The register value is its
    own version counter (it increments exactly on success), so a CAS
    succeeds iff no other CAS succeeded between its read and itself —
    which is the event condition :class:`repro.sim.EnsembleSimulator`
    resolves.  ``commit`` reconstructs the final register (value and
    access counters) in closed form from the per-process end state:
    every attempt contributes one read and one CAS attempt, plus one
    dangling read when a process ends mid-attempt (``phase == 1``).
    """

    register: str = DEFAULT_REGISTER

    q = 0
    s = 1

    def commit(
        self,
        memory: Memory,
        *,
        seq: np.ndarray,
        phase: np.ndarray,
        success_pids: np.ndarray,
        success_seqs: np.ndarray,
    ) -> None:
        reg = memory[self.register]
        attempts = int(seq.sum())
        reg.reads += attempts + int(np.count_nonzero(phase > 0))
        reg.cas_attempts += attempts
        successes = int(success_pids.shape[0])
        reg.cas_successes += successes
        if successes:
            reg.value = reg.value + successes


def cas_counter_method(
    pid: int, register: str = DEFAULT_REGISTER
) -> Generator[Any, Any, int]:
    """One fetch-and-increment method call; returns the fetched value."""
    read = Read(register)
    while True:
        value = yield read
        success = yield CAS(register, value, value + 1)
        if success:
            return value


def cas_counter(
    register: str = DEFAULT_REGISTER,
    *,
    calls: Optional[int] = None,
) -> ProcessFactory:
    """Process factory: an endless (or ``calls``-bounded) stream of
    fetch-and-increment operations on ``register``.

    Initialise the register to 0 with :func:`make_counter_memory` (or any
    integer) before running.
    """

    def factory(pid: int):
        # Flattened fast path: one generator frame instead of the
        # repeat_method -> cas_counter_method delegation, since each
        # executor step pays one ``send`` per frame.  Must stay
        # trace-identical to ``repeat_method`` around
        # :func:`cas_counter_method` — enforced by
        # tests/algorithms/test_counter.py.
        read = Read(register)
        invoke = Invoke("fetch_and_inc")
        count = 0
        while calls is None or count < calls:
            yield invoke
            while True:
                value = yield read
                if (yield CAS(register, value, value + 1)):
                    break
            yield Completion(value, "fetch_and_inc")
            count += 1

    if calls is None:
        # Endless symmetric workloads are ensemble-resolvable; expose the
        # kernel so EnsembleSimulator / latency_sweep(engine="ensemble")
        # can pick it up from the factory.
        factory.vector_kernel = CounterStepKernel(register)
    return factory


def make_counter_memory(register: str = DEFAULT_REGISTER, initial: int = 0) -> Memory:
    """A memory with the counter register initialised."""
    memory = Memory()
    memory.register(register, initial)
    return memory
