"""Algorithm 1: an *unbounded* lock-free algorithm that is not wait-free
with high probability (Lemma 2).

Processes compete to CAS a counter upward.  A process that loses a CAS
adopts the value it observed and then spins for ``n^2 * v`` read steps
(``v`` being the adopted value) before retrying.  The back-off grows with
every lost round, so under the uniform stochastic scheduler the first
winner keeps winning: the probability that the initial winner ever loses
again is at most ``2 e^{-n}``.

The algorithm is lock-free (every CAS failure implies someone else's CAS
succeeded — minimal progress) but provides *unbounded* minimal progress:
there is no fixed ``B`` such that some operation completes in every
``B``-step window, because the spinning stretches without bound.  It is
the witness that Theorem 3's boundedness hypothesis cannot be dropped.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.memory import Memory
from repro.sim.ops import Read, augmented_cas
from repro.sim.process import ProcessFactory, repeat_method

DEFAULT_CAS_REGISTER = "C"
DEFAULT_READ_REGISTER = "Rspin"


def unbounded_method(
    pid: int,
    n_processes: int,
    *,
    initial_v: int = 0,
    backoff_cap: Optional[int] = None,
    cas_register: str = DEFAULT_CAS_REGISTER,
    read_register: str = DEFAULT_READ_REGISTER,
) -> Generator[Any, Any, int]:
    """One method call of Algorithm 1; returns the value it installed.

    ``backoff_cap`` optionally truncates each ``n^2 * v`` spin (the paper's
    algorithm has no cap — pass ``None`` for fidelity; a cap makes bounded
    variants for comparison experiments).
    """
    v = initial_v
    while True:
        val = yield augmented_cas(cas_register, v, v + 1)
        if val == v:
            return v + 1
        v = val
        spins = n_processes * n_processes * v
        if backoff_cap is not None:
            spins = min(spins, backoff_cap)
        for _ in range(spins):
            yield Read(read_register)


def unbounded_lockfree(
    n_processes: int,
    *,
    calls: Optional[int] = None,
    backoff_cap: Optional[int] = None,
    cas_register: str = DEFAULT_CAS_REGISTER,
    read_register: str = DEFAULT_READ_REGISTER,
) -> ProcessFactory:
    """Process factory for Algorithm 1.

    Each method call starts from the process's last observed counter value
    (the pseudocode's ``v`` is local state initialised to 0 once).
    """
    last_seen = {}

    def method_call(pid: int) -> Generator[Any, Any, int]:
        start = last_seen.get(pid, 0)
        installed = yield from unbounded_method(
            pid,
            n_processes,
            initial_v=start,
            backoff_cap=backoff_cap,
            cas_register=cas_register,
            read_register=read_register,
        )
        last_seen[pid] = installed
        return installed

    return repeat_method(method_call, method="unbounded_cas", calls=calls)


def make_unbounded_memory(
    cas_register: str = DEFAULT_CAS_REGISTER,
    read_register: str = DEFAULT_READ_REGISTER,
) -> Memory:
    """Memory with the CAS object at 0 and the spin register present."""
    memory = Memory()
    memory.register(cas_register, 0)
    memory.register(read_register, 0)
    return memory
