"""The iterated balls-into-bins game (Section 6.1.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


@dataclass(frozen=True)
class PhaseRecord:
    """One phase (the interval between two resets).

    Attributes
    ----------
    index:
        Phase number, starting at 0.
    a:
        Bins with exactly one ball at the phase start (``a_i``).
    b:
        Bins with zero balls at the phase start (``b_i``).
    length:
        Number of throws in the phase (the reset throw included).
    winner:
        The bin that reached three balls.
    """

    index: int
    a: int
    b: int
    length: int
    winner: int


class BallsGame:
    """The iterated game: throw, reset on a three-ball bin, repeat.

    The initial configuration is one ball in every bin, matching the
    paper's setup ("each bin already contains one ball") and the system
    chain's initial state ``(n, 0)``.

    The correspondence with the scan-validate system chain (checked by
    tests): ``a`` = processes about to read = chain coordinate ``a``;
    ``b`` = processes about to fail a CAS = chain coordinate ``b``; a
    reset = a successful CAS = a completed operation.
    """

    def __init__(self, n_bins: int, rng: RngLike = None) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be positive")
        self.n_bins = n_bins
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.balls = np.ones(n_bins, dtype=np.int64)
        self.throws = 0
        self.resets = 0
        self._phase_start_counts = self._count_state()
        self._phase_throws = 0

    def _count_state(self):
        a = int(np.count_nonzero(self.balls == 1))
        b = int(np.count_nonzero(self.balls == 0))
        return a, b

    @property
    def a(self) -> int:
        """Bins currently holding exactly one ball."""
        return int(np.count_nonzero(self.balls == 1))

    @property
    def b(self) -> int:
        """Bins currently empty."""
        return int(np.count_nonzero(self.balls == 0))

    def throw(self) -> Optional[PhaseRecord]:
        """Throw one ball; returns a :class:`PhaseRecord` if a reset occurred."""
        bin_index = int(self.rng.integers(self.n_bins))
        self.throws += 1
        self._phase_throws += 1
        self.balls[bin_index] += 1
        if self.balls[bin_index] < 3:
            return None
        # Reset: the full bin drops to one ball, two-ball bins empty.
        a_start, b_start = self._phase_start_counts
        record = PhaseRecord(
            index=self.resets,
            a=a_start,
            b=b_start,
            length=self._phase_throws,
            winner=bin_index,
        )
        self.balls[bin_index] = 1
        self.balls[self.balls == 2] = 0
        self.resets += 1
        self._phase_start_counts = self._count_state()
        self._phase_throws = 0
        return record

    def run_phase(self, *, max_throws: int = 100_000_000) -> PhaseRecord:
        """Throw until the next reset; returns its record."""
        for _ in range(max_throws):
            record = self.throw()
            if record is not None:
                return record
        raise ArithmeticError(f"no reset within {max_throws} throws")

    def set_configuration(self, a: int, b: int, rng_shuffle: bool = False) -> None:
        """Force the start-of-phase configuration to ``a`` one-ball bins and
        ``b`` empty bins (the rest get two balls).

        Lets experiments measure phase-length conditioned on ``(a_i, b_i)``
        as in Lemma 8.  Note a *reachable* phase start has ``a + b = n``;
        arbitrary mixes are allowed for exploration.
        """
        if a < 0 or b < 0 or a + b > self.n_bins:
            raise ValueError("need a, b >= 0 with a + b <= n_bins")
        counts = [1] * a + [0] * b + [2] * (self.n_bins - a - b)
        balls = np.array(counts, dtype=np.int64)
        if rng_shuffle:
            self.rng.shuffle(balls)
        self.balls = balls
        self._phase_start_counts = self._count_state()
        self._phase_throws = 0
