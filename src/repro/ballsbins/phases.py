"""Phase statistics for the iterated balls-into-bins game (Lemmas 8-9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ballsbins.game import BallsGame, PhaseRecord

RngLike = Union[int, np.random.Generator, None]


def phase_length_bound(n: int, a: int, b: int, alpha: float = 4.0) -> float:
    """Lemma 8's expected phase length bound
    ``min(2 alpha n / sqrt(a), 3 alpha n / b^(1/3))``.

    Degenerate coordinates (``a == 0`` or ``b == 0``) drop the
    corresponding term.
    """
    if n < 1:
        raise ValueError("n must be positive")
    candidates = []
    if a > 0:
        candidates.append(2.0 * alpha * n / np.sqrt(a))
    if b > 0:
        candidates.append(3.0 * alpha * n / b ** (1.0 / 3.0))
    if not candidates:
        raise ValueError("a and b cannot both be zero")
    return float(min(candidates))


def range_of(a: int, n: int, c: float = 10.0) -> int:
    """The phase's range per Section 6.1.3: 1 if ``a in [n/3, n]``,
    2 if ``a in [n/c, n/3)``, 3 if ``a in [0, n/c)``."""
    if a >= n / 3.0:
        return 1
    if a >= n / c:
        return 2
    return 3


def run_phases(
    n: int,
    phases: int,
    rng: RngLike = None,
    *,
    game: Optional[BallsGame] = None,
) -> List[PhaseRecord]:
    """Run ``phases`` consecutive phases of a fresh (or given) game."""
    if game is None:
        game = BallsGame(n, rng)
    return [game.run_phase() for _ in range(phases)]


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate statistics over a sequence of phases."""

    n: int
    phases: int
    mean_length: float
    max_length: int
    mean_a: float
    mean_b: float
    range_fractions: Dict[int, float]
    bound_violations: int

    @property
    def latency_like(self) -> float:
        """Mean phase length — the balls-game analogue of system latency."""
        return self.mean_length


def summarize_phases(
    records: List[PhaseRecord], n: int, *, alpha: float = 4.0, c: float = 10.0
) -> PhaseSummary:
    """Summarise phase records against Lemma 8's expected-length bound.

    ``bound_violations`` counts phases longer than the *high-probability*
    bound inflated by ``sqrt(log n)`` — individual phases may exceed the
    expectation bound, so violations of the inflated bound should be rare
    (probability ``<= 1/n^alpha`` each, per Lemma 8).
    """
    if not records:
        raise ValueError("no phase records given")
    lengths = np.array([r.length for r in records], dtype=float)
    a_values = np.array([r.a for r in records], dtype=float)
    b_values = np.array([r.b for r in records], dtype=float)
    ranges = np.array([range_of(r.a, n, c) for r in records])
    range_fractions = {
        rng_id: float(np.mean(ranges == rng_id)) for rng_id in (1, 2, 3)
    }
    log_factor = np.sqrt(max(np.log(n), 1.0))
    violations = 0
    for record in records:
        bound = phase_length_bound(n, record.a, record.b, alpha) * log_factor
        if record.length > bound:
            violations += 1
    return PhaseSummary(
        n=n,
        phases=len(records),
        mean_length=float(lengths.mean()),
        max_length=int(lengths.max()),
        mean_a=float(a_values.mean()),
        mean_b=float(b_values.mean()),
        range_fractions=range_fractions,
        bound_violations=violations,
    )


def conditional_phase_lengths(
    n: int,
    a: int,
    samples: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Sampled lengths of phases started from a forced ``(a, n - a)`` split.

    Used to chart Lemma 8's dependence of the phase length on ``a_i``.
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    game = BallsGame(n, generator)
    lengths = np.empty(samples, dtype=np.int64)
    for i in range(samples):
        game.set_configuration(a, n - a, rng_shuffle=True)
        lengths[i] = game.run_phase().length
    return lengths
