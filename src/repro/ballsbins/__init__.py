"""The iterated balls-into-bins game of Section 6.1.3.

The game models the scan-validate component's system chain: one bin per
process; a bin's ball count encodes how many more steps its process needs
(2 balls = about to CAS successfully, 1 ball = about to read, 0 balls =
about to fail a CAS).  Each step throws one ball into a uniformly random
bin; when a bin reaches *three* balls a **reset** (= a successful CAS)
occurs: the full bin drops to one ball and every two-ball bin empties.

Phases (intervals between resets) have expected length
``O(min(n / sqrt(a_i), n / b_i^{1/3}))`` (Lemma 8), and the process
drifts away from the "third range" ``a_i < n/c`` quickly (Lemma 9) —
together giving the ``O(sqrt(n))`` system latency of Theorem 5.
"""

from repro.ballsbins.game import BallsGame, PhaseRecord
from repro.ballsbins.phases import (
    phase_length_bound,
    range_of,
    run_phases,
    summarize_phases,
)

__all__ = [
    "BallsGame",
    "PhaseRecord",
    "phase_length_bound",
    "range_of",
    "run_phases",
    "summarize_phases",
]
