"""Persistent, fingerprint-keyed memoization for exact chain solves.

The exact-latency solvers in :mod:`repro.chains.scu` are pure functions
of small integer tuples ``(n, q, s)`` whose evaluation can cost seconds
(a stationary solve of the ``n=512`` system chain) — and every sweep,
benchmark and service process used to pay that cost again, because the
only cache was an in-process ``functools.lru_cache``.  This module adds
a second, *machine-wide* layer: a :class:`DiskMemo` keyed by the
canonical JSON of ``(function name, args)``, so an exact chain solution
is computed once per ``(n, q, s)`` ever and every later process warm
starts from disk.

Layout: one file per entry, ``<root>/<name>/<sha256-prefix>.json``,
holding ``{"schema": 1, "key": [name, args], "value": v}``.  Writes are
atomic (temp file in the same directory, fsync, ``os.replace``), so a
crash mid-write can never corrupt an existing entry.  Reads are
corruption-tolerant: an unreadable, truncated, or mismatching entry is
treated as a miss and overwritten by the recomputed value — a corrupt
memo can cost time, never correctness.  JSON round-trips every finite
float exactly (``repr`` semantics), so warm-start values are
bit-identical to cold solves.

The active memo is configured explicitly with :func:`configure_memo`
(the CLI's ``--memo-dir`` flag) or implicitly via the
``REPRO_MEMO_DIR`` environment variable; with neither, the disk layer
is off and behavior is exactly the old in-process ``lru_cache``.
:func:`disk_memoized` stacks both layers; cold/warm activity is
observable through :func:`memo_counters` and, when a telemetry registry
is attached, ``memo.*`` counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from functools import lru_cache, update_wrapper
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

#: Bumped whenever the per-entry payload layout changes incompatibly.
MEMO_SCHEMA_VERSION = 1

#: Environment variable naming the default memo directory.
MEMO_DIR_ENV = "REPRO_MEMO_DIR"

#: Distinguishes "no entry" from any stored value (values are floats).
_MISS = object()

#: Process-wide activity counters, summed over every memo instance and
#: every :func:`disk_memoized` site.  ``computes`` counts actual solver
#: executions — a fully warm start performs zero.
_COUNTERS: Dict[str, int] = {}


#: Warn-once flag for degraded memo writes (ENOSPC, EPERM, ...): the
#: first refused :meth:`DiskMemo.put` is loud, later ones are silent —
#: a cache must never take down the sweep it accelerates.
_warned_put_failure = False


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _valid_value(value: Any) -> bool:
    """Whether a decoded entry value is well-formed.

    Scalars (the exact solvers' floats) and flat lists of numbers (the
    service's per-point latency triples) are both admitted; anything
    else is treated as corruption.
    """
    if _is_number(value):
        return True
    if isinstance(value, list) and value:
        return all(_is_number(item) for item in value)
    return False


def _count(name: str, telemetry=None) -> None:
    _COUNTERS[name] = _COUNTERS.get(name, 0) + 1
    if telemetry is not None and telemetry.enabled:
        telemetry.inc(f"memo.{name}")


def memo_counters() -> Dict[str, int]:
    """A snapshot of the process-wide memo activity counters.

    Keys: ``computes`` (solver actually ran), ``disk_hits``,
    ``disk_misses``, ``disk_writes``, ``disk_corrupt`` (entry unreadable
    and recomputed), ``put_failures`` (write refused by the filesystem;
    degraded to cache-off).  Missing keys mean zero events.
    """
    return dict(_COUNTERS)


def reset_memo_counters() -> None:
    """Zero the process-wide memo activity counters."""
    _COUNTERS.clear()


class DiskMemo:
    """A fingerprint-keyed value store under one root directory.

    Values are JSON scalars (the exact solvers return floats).  All
    reads tolerate corruption; all writes are atomic.  ``telemetry``
    (a :class:`~repro.core.telemetry.MetricsRegistry`) additionally
    receives ``memo.*`` counters.
    """

    def __init__(self, root: Union[str, Path], *, telemetry=None):
        self.root = Path(root)
        self.telemetry = telemetry

    # -- keys --------------------------------------------------------------

    @staticmethod
    def _canonical_key(name: str, args: Tuple) -> list:
        return [str(name), list(args)]

    def entry_path(self, name: str, args: Tuple) -> Path:
        """Where the entry for ``(name, args)`` lives on disk."""
        key = self._canonical_key(name, args)
        blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]
        return self.root / name / f"{digest}.json"

    # -- access ------------------------------------------------------------

    def get(self, name: str, args: Tuple) -> Any:
        """The stored value, or the module-private miss sentinel.

        Corrupt entries (unparseable, wrong schema, key mismatch from a
        hash collision or a partial legacy write, non-numeric value)
        count as misses; the caller recomputes and :meth:`put`
        overwrites them.
        """
        path = self.entry_path(name, args)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            _count("disk_misses", self.telemetry)
            return _MISS
        except (OSError, ValueError, UnicodeDecodeError):
            _count("disk_corrupt", self.telemetry)
            return _MISS
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != MEMO_SCHEMA_VERSION
            or payload.get("key") != self._canonical_key(name, args)
            or not _valid_value(payload.get("value"))
        ):
            _count("disk_corrupt", self.telemetry)
            return _MISS
        _count("disk_hits", self.telemetry)
        value = payload["value"]
        if isinstance(value, list):
            return [float(item) for item in value]
        return float(value)

    def put(self, name: str, args: Tuple, value) -> None:
        """Atomically store ``value`` for ``(name, args)``.

        ``value`` is a number or a flat sequence of numbers.  Written to
        a temp file in the target directory, fsynced, then renamed into
        place — readers see either the old entry or the complete new
        one, never a torn write.  Storage failures (ENOSPC, EPERM, a
        read-only memo) degrade instead of raising: the first is warned
        once and counted (``memo.put_failures``), then the memo simply
        stops warming future starts — it never breaks the solve.
        """
        global _warned_put_failure
        if isinstance(value, (list, tuple)):
            encoded: Any = [float(item) for item in value]
        else:
            encoded = float(value)
        path = self.entry_path(name, args)
        payload = {
            "schema": MEMO_SCHEMA_VERSION,
            "key": self._canonical_key(name, args),
            "value": encoded,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            if not _warned_put_failure:
                _warned_put_failure = True
                warnings.warn(
                    f"disk memo write failed ({exc}); continuing without "
                    f"the cache — entries under {self.root} will be "
                    "recomputed instead of warm-started",
                    RuntimeWarning,
                    stacklevel=2,
                )
            _count("put_failures", self.telemetry)
            return
        _count("disk_writes", self.telemetry)

    def clear(self, name: Optional[str] = None) -> int:
        """Delete stored entries; returns how many files were removed.

        ``name`` limits the purge to one function's entries.
        """
        roots = [self.root / name] if name is not None else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for entry in sorted(root.rglob("*.json")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


#: The configured memo, or the env-var marker before first resolution.
_UNRESOLVED = object()
_active: Any = _UNRESOLVED


def configure_memo(
    root: Union[str, Path, None], *, telemetry=None
) -> Optional[DiskMemo]:
    """Set (or with ``None`` disable) the process-wide active memo.

    Returns the new active :class:`DiskMemo` (or ``None``).  Overrides
    any ``REPRO_MEMO_DIR`` environment default.
    """
    global _active
    _active = DiskMemo(root, telemetry=telemetry) if root is not None else None
    return _active


def active_memo() -> Optional[DiskMemo]:
    """The process-wide memo: configured, env-var default, or ``None``."""
    global _active
    if _active is _UNRESOLVED:
        root = os.environ.get(MEMO_DIR_ENV)
        _active = DiskMemo(root) if root else None
    return _active


def disk_memoized(name: str, *, maxsize: int = 128) -> Callable:
    """Stack an in-process LRU over the machine-wide disk memo.

    Lookup order: in-process LRU (bounded at ``maxsize``), then the
    active :class:`DiskMemo` (if configured), then the wrapped function
    — whose result is written through to both layers.  The wrapper
    keeps ``lru_cache``'s ``cache_clear``/``cache_info`` (the
    *in-process* layer only) and gains ``memo_name`` so cache managers
    such as ``clear_exact_chain_caches`` can clear the disk layer too.

    Positional arguments must be JSON-serialisable scalars (the exact
    solvers take small ints); keyword calls are not supported, matching
    what ``lru_cache`` keys best.
    """

    def decorate(fn: Callable) -> Callable:
        @lru_cache(maxsize=maxsize)
        def cached(*args):
            memo = active_memo()
            if memo is not None:
                stored = memo.get(name, args)
                if stored is not _MISS:
                    return stored
            value = fn(*args)
            _count("computes", memo.telemetry if memo is not None else None)
            if memo is not None:
                memo.put(name, args, value)
            return value

        update_wrapper(cached, fn)
        cached.memo_name = name
        return cached

    return decorate


def clear_disk_entries(names) -> int:
    """Clear the active memo's entries for the given function names.

    No-op (returns 0) when no memo is configured.
    """
    memo = active_memo()
    if memo is None:
        return 0
    return sum(memo.clear(name) for name in names)
