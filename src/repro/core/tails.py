"""Per-invocation latency distributions (tails).

The paper's motivation (Section 1): "most operations complete in a
timely manner, and the impact of long worst-case executions on
performance is negligible" — citing per-operation latency distributions
of a lock-free stack (reference [1, Figure 6]).  These helpers extract
the per-invocation completion-time distribution from a recorded history
so that claim can be measured: under the uniform stochastic scheduler
the tail is light (quantiles grow slowly), under an adversary the tail
carries starvation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.sim.history import History


def invocation_durations(
    history: History,
    *,
    end_time: Optional[int] = None,
    include_pending: bool = False,
) -> np.ndarray:
    """Durations (response − invocation, in system steps) of invocations.

    With ``include_pending``, invocations still pending at ``end_time``
    contribute their elapsed time so far — a *lower bound* on their true
    duration, which is exactly what a starvation-sensitive tail metric
    needs.
    """
    if end_time is None:
        end_time = history.end_time
    durations = []
    for _, invoked, responded in history.pending_intervals(end_time):
        if responded is not None:
            durations.append(responded - invoked)
        elif include_pending:
            durations.append(end_time - invoked)
    return np.asarray(durations, dtype=np.int64)


@dataclass(frozen=True)
class TailSummary:
    """Latency-distribution summary of one run."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: int
    pending: int

    @property
    def p99_over_p50(self) -> float:
        """Tail heaviness: how much worse the 99th percentile is."""
        return self.p99 / self.p50 if self.p50 > 0 else float("inf")


def tail_summary(
    history: History,
    *,
    end_time: Optional[int] = None,
    include_pending: bool = True,
) -> TailSummary:
    """Summarise the per-invocation latency distribution."""
    if end_time is None:
        end_time = history.end_time
    durations = invocation_durations(
        history, end_time=end_time, include_pending=include_pending
    )
    if durations.size == 0:
        raise ValueError("history contains no invocations")
    pending = sum(
        1
        for _, _, responded in history.pending_intervals(end_time)
        if responded is None
    )
    return TailSummary(
        count=int(durations.size),
        mean=float(durations.mean()),
        p50=float(np.percentile(durations, 50)),
        p90=float(np.percentile(durations, 90)),
        p99=float(np.percentile(durations, 99)),
        max=int(durations.max()),
        pending=pending,
    )


def tail_summaries_by_method(
    history: History, *, end_time: Optional[int] = None
) -> Dict[str, TailSummary]:
    """Per-method tail summaries (e.g. push vs pop)."""
    if end_time is None:
        end_time = history.end_time
    per_method: Dict[str, History] = {}
    # Rebuild per-method mini-histories from the events.
    methods = {inv.method for inv in history.invocations}
    out: Dict[str, TailSummary] = {}
    for method in methods:
        durations = []
        pending = 0
        responses_by_pid: Dict[int, list] = {}
        for response in history.responses:
            responses_by_pid.setdefault(response.pid, []).append(response)
        cursors: Dict[int, int] = {pid: 0 for pid in responses_by_pid}
        for invocation in history.invocations:
            rs = responses_by_pid.get(invocation.pid, [])
            cursor = cursors.get(invocation.pid, 0)
            response = rs[cursor] if cursor < len(rs) else None
            if response is not None:
                cursors[invocation.pid] = cursor + 1
            if invocation.method != method:
                continue
            if response is not None:
                durations.append(response.time - invocation.time)
            else:
                durations.append(end_time - invocation.time)
                pending += 1
        arr = np.asarray(durations, dtype=np.int64)
        if arr.size == 0:
            continue
        out[method] = TailSummary(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            max=int(arr.max()),
            pending=pending,
        )
    return out
