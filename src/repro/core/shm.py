"""Zero-copy shared-memory dispatch buffers for parallel sweeps.

:func:`repro.core.sweep.parallel_sweep` ships work to pool workers as
chunks of ``(n, replicate)`` pairs and gets ``(latency, rate, fairness)``
triples back.  With pickle dispatch every chunk pays serialization twice
(task list out, result list back) plus a pipe write per direction; for
small replicates that overhead rivals the work itself.  This module
replaces both directions with two ``multiprocessing.shared_memory``
segments per sweep:

* a **task segment** — one int64 ``(n, replicate)`` row per replicate,
  written once by the parent; workers index it by row number, and
* a **result segment** — one float64 triple row per replicate, written
  in place by whichever worker resolves that row.

The executor's task keys become plain row indices, so the per-chunk
pickle payload shrinks to a handful of ints each way regardless of chunk
size, and results never cross the pipe at all.  Retry/poison-split
semantics are untouched: a retried row rewrites the same deterministic
bytes, so recovery cannot tear or change a result.

**Naming** is deterministic off the sweep fingerprint: segments are
called ``repro-<digest>-<pid>-<counter>-<role>`` where ``digest`` hashes
the fingerprint dict (stable across runs of the same sweep), ``pid`` and
a per-process counter isolate concurrent sweeps, and ``role`` is ``t``
(tasks) or ``r`` (results) — or ``s`` (schedules) and ``o`` (outcomes)
for the :class:`ShardBlockBuffers` pair that ships fused ensemble
schedule blocks to shard workers.  A stale segment left by a killed
previous run (same name) is unlinked and recreated rather than failing.

**Lifetime**: the parent owns both segments and unlinks them in its
``finally`` — worker kills, hangs, poison tasks and parent exceptions
all funnel through the same cleanup, which is what the chaos suite's
"no orphaned ``/dev/shm`` segments" assertion checks.  Workers attaching
a segment suppress the ``resource_tracker`` registration CPython
(< 3.13, no ``track=False``) performs on every attach: a worker's
tracker destroying a segment the parent still owns is the classic
premature-unlink bug, and since forked workers share one tracker whose
cache is a set, attach-then-unregister would instead strip the parent's
own entry.  Never registering attachments keeps the tracker exact.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover — import succeeds on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "sharedmem_available",
    "segment_digest",
    "attach_array",
    "release",
    "SweepTaskBuffers",
    "ShardBlockBuffers",
]

_COUNTER = itertools.count()

#: Worker-side attachment cache: ``name -> (SharedMemory, ndarray)``.
#: One entry per segment per worker process (workers live exactly as
#: long as their pool, i.e. one sweep), so the cache never grows past a
#: few entries; the parent's serial-fallback attachments are evicted
#: explicitly via :func:`release` when the buffers close.
_ATTACHED: Dict[str, Tuple[object, np.ndarray]] = {}


def sharedmem_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this platform."""
    return shared_memory is not None


def segment_digest(fingerprint: Dict[str, object]) -> str:
    """A short stable digest of a sweep fingerprint, for segment names."""
    payload = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def _create_segment(name: str, size: int):
    """Create a segment, steamrolling a stale leftover of the same name.

    A previous run killed between creating and unlinking (e.g. SIGKILL
    on the parent) can leave a same-named segment behind; since names
    embed the pid, a live collision is not possible — unlink the corpse
    and recreate.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        stale = shared_memory.SharedMemory(name=name)
        stale.close()
        stale.unlink()
        return shared_memory.SharedMemory(name=name, create=True, size=size)


def attach_array(
    name: str, shape: Tuple[int, ...], dtype: np.dtype
) -> np.ndarray:
    """Attach (once per process) to a segment and view it as an array.

    The attachment is cached per segment name — pool workers call this
    for every chunk, and repeated ``SharedMemory`` opens would add a
    syscall pair per chunk.  The resource-tracker registration CPython
    performs on attach is suppressed (see the module docstring).
    """
    entry = _ATTACHED.get(name)
    if entry is None:
        # Suppress the resource-tracker registration CPython performs on
        # attach (< 3.13 has no track=False).  Unregistering afterwards
        # is NOT equivalent: the tracker cache is a set shared by every
        # forked process, so a second worker's unregister would strip
        # the parent's creation entry and a third would KeyError in the
        # tracker process.  Never registering keeps the books exact.
        if resource_tracker is not None:
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        else:  # pragma: no cover — platform-dependent
            segment = shared_memory.SharedMemory(name=name)
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        entry = (segment, array)
        _ATTACHED[name] = entry
    return entry[1]


def release(name: str) -> None:
    """Drop this process's cached attachment of ``name``, if any.

    Unmapping matters in long-lived parents: ``unlink`` removes the
    name, but the memory itself is freed only once every mapping closes.
    """
    entry = _ATTACHED.pop(name, None)
    if entry is not None:
        try:
            entry[0].close()
        except Exception:
            pass


class SweepTaskBuffers:
    """The parent-side segment pair for one sweep dispatch.

    Creates both segments, writes the task rows, and exposes the result
    rows; :meth:`close` unlinks both (idempotent, exception-tolerant) —
    call it in a ``finally``.  ``telemetry`` (optional) counts segments,
    bytes and unlinks under the ``shm.*`` metric names.
    """

    def __init__(
        self,
        tasks: Sequence[Tuple[int, int]],
        digest: str,
        *,
        telemetry=None,
    ) -> None:
        if shared_memory is None:  # pragma: no cover — platform-dependent
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if not tasks:
            raise ValueError("shared-memory dispatch needs at least one task")
        count = len(tasks)
        base = f"repro-{digest}-{os.getpid()}-{next(_COUNTER)}"
        self.task_name = f"{base}-t"
        self.result_name = f"{base}-r"
        self.task_count = count
        self._telemetry = telemetry
        self._task_shm = _create_segment(self.task_name, count * 2 * 8)
        try:
            self._result_shm = _create_segment(self.result_name, count * 3 * 8)
        except Exception:
            self._task_shm.close()
            self._task_shm.unlink()
            raise
        self._closed = False
        self.tasks = np.ndarray(
            (count, 2), dtype=np.int64, buffer=self._task_shm.buf
        )
        self.tasks[:] = np.asarray(tasks, dtype=np.int64).reshape(count, 2)
        self.results = np.ndarray(
            (count, 3), dtype=np.float64, buffer=self._result_shm.buf
        )
        self.results.fill(np.nan)
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("shm.segments", 2)
            telemetry.inc(
                "shm.bytes", self._task_shm.size + self._result_shm.size
            )

    def key_of(self, row: int) -> Tuple[int, int]:
        """The ``(n, replicate)`` pair a row index stands for."""
        return (int(self.tasks[row, 0]), int(self.tasks[row, 1]))

    def triple(self, row: int) -> Tuple[float, float, float]:
        """One resolved result row, as plain floats."""
        values = self.results[row]
        return (float(values[0]), float(values[1]), float(values[2]))

    def close(self) -> None:
        """Unlink both segments (idempotent; never raises).

        Also evicts any serial-fallback attachments this process cached,
        so the mappings — not just the names — are released.
        """
        if self._closed:
            return
        self._closed = True
        # Views into the buffers must die before the mmaps can close.
        self.tasks = None  # type: ignore[assignment]
        self.results = None  # type: ignore[assignment]
        release(self.task_name)
        release(self.result_name)
        unlinked = 0
        for segment in (self._task_shm, self._result_shm):
            try:
                segment.close()
            except Exception:
                pass
            # Belt and braces for unlink()'s own unregister: if anything
            # stripped this name from the fork-shared tracker cache, the
            # remove would log a KeyError in the tracker process.
            # Re-registering is a set-add — a no-op when already present.
            if resource_tracker is not None:
                try:
                    resource_tracker.register(segment._name, "shared_memory")
                except Exception:
                    pass
            try:
                segment.unlink()
                unlinked += 1
            except Exception:
                pass
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled and unlinked:
            telemetry.inc("shm.unlinked", unlinked)


class ShardBlockBuffers:
    """The parent-side segment pair for one sharded fused resolution.

    The fused ensemble path stacks same-shape replicates into
    ``fuse_block_steps``-sized schedule blocks; when those blocks are
    sharded across a worker pool the array payloads travel through two
    shared segments instead of the pickle pipe:

    * a **schedule segment** (role ``s``) — every block's stacked int64
      schedule, concatenated; block ``b`` owns
      ``schedule[sched_base[b]:sched_base[b + 1]]``, written once by the
      parent, and
    * an **outcome segment** (role ``o``) — one fixed int64 slab per
      block, laid out as ``[wins | succ_cols(cap) | succ_pids(cap) |
      succ_seqs(cap) | seq(n) | phase(n) | counts(n)]`` and written in
      place by whichever worker resolves the block.

    ``cap`` must bound the block's success count — the fused path uses
    ``steps // (q + s + 1) + n + 1``, safe because every CAS attempt in
    an ``SCU(q, s)`` operation costs its process at least ``q + s + 1``
    schedule steps amortized — so the slab cannot overflow, and a
    retried block rewrites identical bytes, keeping the executor's
    retry/poison-split recovery idempotent.  Naming and lifetime rules
    (deterministic fingerprint names, stale-segment steamroll,
    parent-owned unlink in ``finally``, suppressed attach registration)
    are shared with :class:`SweepTaskBuffers`.
    """

    def __init__(
        self,
        block_sizes: Sequence[int],
        block_ns: Sequence[int],
        block_caps: Sequence[int],
        digest: str,
        *,
        telemetry=None,
    ) -> None:
        if shared_memory is None:  # pragma: no cover — platform-dependent
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        if not len(block_sizes):
            raise ValueError("sharded fused dispatch needs at least one block")
        sizes = np.asarray(block_sizes, dtype=np.int64)
        self.ns = np.asarray(block_ns, dtype=np.int64)
        self.caps = np.asarray(block_caps, dtype=np.int64)
        slabs = 1 + 3 * self.caps + 3 * self.ns
        self.sched_base = np.concatenate(([0], np.cumsum(sizes)))
        self.out_base = np.concatenate(([0], np.cumsum(slabs)))
        base = f"repro-{digest}-{os.getpid()}-{next(_COUNTER)}"
        self.schedule_name = f"{base}-s"
        self.outcome_name = f"{base}-o"
        self._telemetry = telemetry
        total_sched = int(self.sched_base[-1])
        total_out = int(self.out_base[-1])
        self._sched_shm = _create_segment(
            self.schedule_name, max(total_sched, 1) * 8
        )
        try:
            self._out_shm = _create_segment(
                self.outcome_name, max(total_out, 1) * 8
            )
        except Exception:
            self._sched_shm.close()
            self._sched_shm.unlink()
            raise
        self._closed = False
        self.schedule = np.ndarray(
            (total_sched,), dtype=np.int64, buffer=self._sched_shm.buf
        )
        self.outcomes = np.ndarray(
            (total_out,), dtype=np.int64, buffer=self._out_shm.buf
        )
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("shm.segments", 2)
            telemetry.inc(
                "shm.bytes", self._sched_shm.size + self._out_shm.size
            )

    def spec(self) -> Tuple[str, str, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
        """A small picklable handle workers use to attach both segments.

        ``(schedule_name, outcome_name, sched_base, out_base, caps, ns)``
        — a few ints per block, regardless of block size.
        """
        return (
            self.schedule_name,
            self.outcome_name,
            tuple(int(x) for x in self.sched_base),
            tuple(int(x) for x in self.out_base),
            tuple(int(x) for x in self.caps),
            tuple(int(x) for x in self.ns),
        )

    @staticmethod
    def attach(spec) -> Tuple[np.ndarray, np.ndarray]:
        """Attach (cached per process) and view both segments as arrays."""
        sched_name, out_name, sched_base, out_base = spec[:4]
        schedule = attach_array(sched_name, (sched_base[-1],), np.int64)
        outcomes = attach_array(out_name, (out_base[-1],), np.int64)
        return schedule, outcomes

    @staticmethod
    def block_views(
        outcomes: np.ndarray, lo: int, cap: int, n: int
    ) -> Tuple[np.ndarray, ...]:
        """Views into one block's outcome slab.

        Returns ``(wins, succ_cols, succ_pids, succ_seqs, seq, phase,
        counts)`` where ``wins`` is a one-element view holding the
        number of valid leading entries in the three ``cap``-sized
        success columns.
        """
        o = lo + 1
        return (
            outcomes[lo : lo + 1],
            outcomes[o : o + cap],
            outcomes[o + cap : o + 2 * cap],
            outcomes[o + 2 * cap : o + 3 * cap],
            outcomes[o + 3 * cap : o + 3 * cap + n],
            outcomes[o + 3 * cap + n : o + 3 * cap + 2 * n],
            outcomes[o + 3 * cap + 2 * n : o + 3 * cap + 3 * n],
        )

    def close(self) -> None:
        """Unlink both segments (idempotent; never raises)."""
        if self._closed:
            return
        self._closed = True
        self.schedule = None  # type: ignore[assignment]
        self.outcomes = None  # type: ignore[assignment]
        release(self.schedule_name)
        release(self.outcome_name)
        unlinked = 0
        for segment in (self._sched_shm, self._out_shm):
            try:
                segment.close()
            except Exception:
                pass
            if resource_tracker is not None:
                try:
                    resource_tracker.register(segment._name, "shared_memory")
                except Exception:
                    pass
            try:
                segment.unlink()
                unlinked += 1
            except Exception:
                pass
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled and unlinked:
            telemetry.inc("shm.unlinked", unlinked)
