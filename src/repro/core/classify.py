"""Empirical progress classification (Section 2.2, made executable).

Given an algorithm (as a process factory + memory builder), run it under
a battery of schedules and report which progress behaviours it
exhibits.  Infinite-execution properties cannot be *decided* from finite
runs, so the classifier reports evidence, not proofs — but the paper's
algorithm classes separate cleanly on it:

==============================  ========  =========  ===========  =========
observation                     wait-free  lock-free  obstr.-free  blocking
==============================  ========  =========  ===========  =========
survivors progress past a
crashed process                  yes        yes        yes          NO
system progresses under a
lockstep collision schedule      yes        yes        NO           yes*
every process progresses under
the uniform scheduler            yes        yes**      yes**        yes*
every process progresses under
deterministic round-robin        yes        NO(+)      NO(+)        yes*
==============================  ========  =========  ===========  =========

``*``  for deadlock-/starvation-free locks in crash-free runs;
``**`` the paper's point: with probability 1, though not guaranteed;
``(+)`` for the algorithms in this library — round-robin is evidence
against wait-freedom, not a proof (some lock-free algorithms happen to
serve everyone under it).  Note a *starvation* adversary (never
scheduling a victim) distinguishes nothing: even wait-freedom only
promises completion to processes that keep taking steps.

Caveat: the battery observes *finite* windows.  Algorithms with
unbounded retry costs (Algorithm 1's quadratic back-off) can fail the
crash experiment spuriously — survivors recover, but only after
back-offs longer than any practical window.  This is the same
finite-vs-asymptotic gap Theorem 3's (1/theta)^T bound exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory


def collision_lockstep(block: int = 3) -> AdversarialScheduler:
    """Two-process adversary: after one step each, alternate blocks of
    ``block`` steps.  Against collision-abort (obstruction-free)
    algorithms this aborts both processes forever."""

    def strategy(time: int, active: Sequence[int]) -> int:
        if len(active) == 1:
            return active[0]
        if time <= 2:
            return active[time - 1]
        index = (time - 3) // block
        return active[0] if index % 2 == 0 else active[1]

    return AdversarialScheduler(strategy)


@dataclass(frozen=True)
class ProgressClassification:
    """What a battery of schedules observed about an algorithm."""

    tolerates_crash: bool
    progresses_under_collisions: bool
    all_progress_under_uniform: bool
    all_progress_under_round_robin: bool

    @property
    def label(self) -> str:
        """The closest Section 2.2 class consistent with the evidence."""
        if not self.tolerates_crash:
            return "blocking (lock-based)"
        if self.all_progress_under_round_robin:
            return "wait-free"
        if self.progresses_under_collisions:
            return "lock-free (practically wait-free under the uniform scheduler)"
        return "obstruction-free (practically wait-free under the uniform scheduler)"


def classify_progress(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    *,
    n_processes: int = 4,
    steps: int = 40_000,
    crash_when: Optional[Callable[[Simulator, int], bool]] = None,
    rng_seed: int = 0,
) -> ProgressClassification:
    """Run the four schedule experiments and classify.

    Parameters
    ----------
    factory_builder / memory_builder:
        Zero-argument builders so each experiment gets a fresh instance.
    n_processes, steps:
        Sizes for the uniform/starvation experiments (the collision
        experiment always uses 2 processes).
    crash_when:
        Predicate ``(simulator, victim_pid) -> bool`` checked after each
        of the victim's steps; the victim is crashed the first time it
        returns true.  Use it to crash a lock holder *inside* its
        critical section (inspect ``simulator.processes[pid].pending``).
        Default: crash after the victim's first step.
    rng_seed:
        Base seed.
    """
    if crash_when is None:
        crash_when = lambda sim, pid: sim.processes[pid].steps >= 1
    # 1. Crash tolerance: crash one process mid-operation; do the
    #    others keep completing?
    sim = Simulator(
        factory_builder(),
        UniformStochasticScheduler(),
        n_processes=n_processes,
        memory=memory_builder(),
        rng=rng_seed,
    )
    victim = 0
    crashed = False
    for _ in range(steps):
        pid = sim.step()
        if pid is None:
            break
        if not crashed and pid == victim and crash_when(sim, victim):
            sim.processes[victim].crash()
            crashed = True
    others = [p for p in range(n_processes) if p != victim]
    before = {p: sim.processes[p].completions for p in others}
    sim.run(steps)
    tolerates_crash = all(
        sim.processes[p].completions > before[p] for p in others
    )

    # 2. Collision lockstep (2 processes): does the system progress?
    sim = Simulator(
        factory_builder(),
        collision_lockstep(),
        n_processes=2,
        memory=memory_builder(),
        rng=rng_seed + 1,
    )
    result = sim.run(steps)
    progresses_under_collisions = result.total_completions > 0

    # 3. Uniform stochastic scheduler: does everyone progress?
    sim = Simulator(
        factory_builder(),
        UniformStochasticScheduler(),
        n_processes=n_processes,
        memory=memory_builder(),
        rng=rng_seed + 2,
    )
    sim.run(steps)
    all_progress_under_uniform = all(
        sim.processes[p].completions > 0 for p in range(n_processes)
    )

    # 4. Deterministic round-robin: does everyone progress?  A wait-free
    #    algorithm must; scan-validate-style lock-free algorithms
    #    deterministically starve all but one process under lockstep.
    sim = Simulator(
        factory_builder(),
        AdversarialScheduler.round_robin(),
        n_processes=n_processes,
        memory=memory_builder(),
        rng=rng_seed + 3,
    )
    sim.run(steps)
    all_progress_under_round_robin = all(
        sim.processes[p].completions > 0 for p in range(n_processes)
    )

    return ProgressClassification(
        tolerates_crash=tolerates_crash,
        progresses_under_collisions=progresses_under_collisions,
        all_progress_under_uniform=all_progress_under_uniform,
        all_progress_under_round_robin=all_progress_under_round_robin,
    )
