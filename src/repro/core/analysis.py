"""Closed-form predictions from the paper's theorems.

Each function returns what the paper *predicts*; the benchmarks put these
side by side with exact chain computations and simulation measurements
(EXPERIMENTS.md records the comparison for every figure/theorem).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stats.ramanujan import counter_return_times, ramanujan_q_asymptotic


def scu_system_latency_bound(q: int, s: int, n: int, *, alpha: float = 4.0) -> float:
    """Theorem 4's system latency bound for ``SCU(q, s)``: ``q + alpha s sqrt(n)``.

    ``alpha`` is the (unspecified) constant of the O-bound; the paper fixes
    ``alpha >= 4`` in the analysis.
    """
    _check_qsn(q, s, n)
    return q + alpha * s * np.sqrt(n)


def scu_individual_latency_bound(
    q: int, s: int, n: int, *, alpha: float = 4.0
) -> float:
    """Theorem 4's individual latency bound: ``n (q + alpha s sqrt(n))``."""
    return n * scu_system_latency_bound(q, s, n, alpha=alpha)


def scu_worst_case_system_latency(q: int, s: int, n: int) -> float:
    """The adversarial worst case: ``Theta(q + s n)`` steps per completion.

    Under a worst-case schedule every completion can require all ``n``
    processes to run through the scan before one commits.
    """
    _check_qsn(q, s, n)
    return float(q + s * n)


def parallel_system_latency(q: int) -> float:
    """Lemma 11: parallel code's exact system latency ``q``."""
    if q < 1:
        raise ValueError("q must be positive")
    return float(q)


def parallel_individual_latency(q: int, n: int) -> float:
    """Lemma 11: parallel code's exact individual latency ``n q``."""
    if n < 1:
        raise ValueError("n must be positive")
    return float(n * parallel_system_latency(q))


def counter_system_latency(n: int) -> float:
    """Lemma 12's exact value for the augmented-CAS counter: ``W = Z(n-1)``.

    Bounded by ``2 sqrt(n)`` and asymptotically ``sqrt(pi n / 2)``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return float(counter_return_times(n)[-1])


def counter_system_latency_asymptotic(n: int) -> float:
    """Lemma 12's asymptotic ``sqrt(pi n / 2)`` (plus lower-order terms).

    ``W = Z(n-1) = Q(n)`` exactly, so the Flajolet expansion of ``Q``
    applies directly.
    """
    return ramanujan_q_asymptotic(n)


def counter_individual_latency(n: int) -> float:
    """Corollary 3: ``W_i = n W = n Z(n-1) = O(n sqrt(n))``."""
    return n * counter_system_latency(n)


def completion_rate_prediction(
    n_values: Sequence[int], *, measured_first: float
) -> np.ndarray:
    """Figure 5's prediction series: ``Theta(1/sqrt(n))`` scaled so the
    first point matches the first measured completion rate.

    The paper: "Since we do not have precise bounds on the constant in
    front of Theta(1/sqrt(n)) for the prediction, we scaled the
    prediction to the first data point."
    """
    ns = np.asarray(list(n_values), dtype=float)
    if ns.size == 0 or np.any(ns < 1):
        raise ValueError("n_values must be positive")
    if measured_first <= 0:
        raise ValueError("measured_first must be positive")
    raw = 1.0 / np.sqrt(ns)
    return raw * (measured_first / raw[0])


def worst_case_completion_rate(n_values: Sequence[int]) -> np.ndarray:
    """Figure 5's worst-case series: rate ``1/n``."""
    ns = np.asarray(list(n_values), dtype=float)
    if ns.size == 0 or np.any(ns < 1):
        raise ValueError("n_values must be positive")
    return 1.0 / ns


def min_to_max_progress_bound(theta: float, minimal_bound: int) -> float:
    """Theorem 3's expected maximal-progress bound ``(1/theta)**T``.

    ``theta`` is the scheduler's weak-fairness threshold and
    ``minimal_bound`` the algorithm's bounded-minimal-progress constant.
    This is astronomically loose for realistic parameters — the point of
    the paper's Section 6 refinement — but it is finite, which is the
    qualitative content of Theorem 3.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must lie in (0, 1]")
    if minimal_bound < 1:
        raise ValueError("minimal_bound must be positive")
    return float((1.0 / theta) ** minimal_bound)


def unbounded_winner_monopoly_probability(n: int) -> float:
    """Lemma 2's bound: the first CAS winner of Algorithm 1 keeps winning
    forever except with probability at most ``2 e^{-n}``."""
    if n < 1:
        raise ValueError("n must be positive")
    return float(1.0 - 2.0 * np.exp(-n))


def _check_qsn(q: int, s: int, n: int) -> None:
    if q < 0:
        raise ValueError("q must be non-negative")
    if s < 1:
        raise ValueError("s must be at least 1")
    if n < 1:
        raise ValueError("n must be at least 1")
