"""Mapping the uniformity boundary: latency vs. departure-from-uniform.

The paper proves its latency bounds under the *uniform* stochastic
scheduler and observes (Appendix A) that real schedulers are
approximately uniform.  The natural follow-up — where does "practically
wait-free" break as the scheduler departs from uniform? — is what this
module measures.  For each workload in the zoo
(:mod:`repro.algorithms.registry`) and each scheduler in a *departure
family* (the closed-form :class:`~repro.core.scheduler.EpsilonUniformScheduler`
dial, the contention adversary
:class:`~repro.core.scheduler.ContentionScheduler`, or any custom
builder), one run yields a :class:`DeparturePoint`:

* the **measured** total-variation distance from uniform (the
  :class:`~repro.core.telemetry.SchedulerUniformityObserver` statistic,
  computed from the realised schedule — not the scheduler's nominal
  parameter);
* **p50/p99 invocation latency**, from per-process inter-completion
  gaps after burn-in (each gap is the steps one process needed for one
  method call — the per-invocation latency of an endless closed-system
  workload);
* the system latency, completion rate and min/max fairness ratio.

:func:`departure_curve` strings points into one workload's curve;
:func:`zoo_departure_table` runs the whole zoo and returns the
JSON-ready table the ``repro zoo`` CLI command and the ``bench_perf``
zoo benchmark emit — the deliverable "latency vs departure-from-uniform"
figure across the algorithm zoo, with the randomized TAS lock
(arXiv:2108.04520 flavour) as the fairness baseline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.registry import Workload, get_workload
from repro.core.scheduler import (
    ContentionScheduler,
    EpsilonUniformScheduler,
    Scheduler,
    UniformStochasticScheduler,
)
from repro.core.telemetry import SchedulerUniformityObserver
from repro.sim.executor import Simulator

SchedulerBuilder = Callable[[], Scheduler]

#: Default epsilon dial for departure families: uniform to heavily skewed.
DEFAULT_EPSILONS: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)

#: Default contention focus dial (1.0 is exactly uniform).
DEFAULT_FOCUSES: Tuple[float, ...] = (2.0, 4.0, 8.0)


@dataclass(frozen=True)
class DeparturePoint:
    """One (workload, scheduler) measurement on the departure curve."""

    scheduler: str
    tv_distance: float
    fairness_ratio: float
    p50_latency: float
    p99_latency: float
    system_latency: float
    completion_rate: float
    completions: int
    steps: int

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def epsilon_family(
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    *,
    favored: int = 0,
) -> List[Tuple[str, SchedulerBuilder]]:
    """Labelled builders for the epsilon-from-uniform departure dial."""

    def make(eps: float) -> SchedulerBuilder:
        return lambda: EpsilonUniformScheduler(eps, favored=favored)

    return [(f"epsilon({eps:g})", make(float(eps))) for eps in epsilons]


def contention_family(
    focuses: Sequence[float] = DEFAULT_FOCUSES,
) -> List[Tuple[str, SchedulerBuilder]]:
    """Labelled builders for the contention-adversary departure dial."""

    def make(focus: float) -> SchedulerBuilder:
        return lambda: ContentionScheduler(focus=focus)

    return [(f"contention({focus:g})", make(float(focus))) for focus in focuses]


def default_departure_schedulers() -> List[Tuple[str, SchedulerBuilder]]:
    """Uniform anchor + the epsilon dial + the contention dial."""
    schedulers: List[Tuple[str, SchedulerBuilder]] = [
        ("uniform", UniformStochasticScheduler)
    ]
    schedulers.extend(epsilon_family())
    schedulers.extend(contention_family())
    return schedulers


def _completion_gaps(recorder, burn_in: int) -> np.ndarray:
    """Per-process inter-completion gaps, pooled, after ``burn_in``.

    For an endless closed-system workload each process starts its next
    invocation immediately, so the gap between a process's consecutive
    completions is exactly the latency of one method call.
    """
    times = np.asarray(recorder.completion_times, dtype=np.int64)
    pids = np.asarray(recorder.completion_pids, dtype=np.int64)
    gaps: List[np.ndarray] = []
    for pid in range(recorder.n_processes):
        mine = times[pids == pid]
        mine = mine[mine >= burn_in]
        if mine.size >= 2:
            gaps.append(np.diff(mine))
    if not gaps:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(gaps)


def measure_departure_point(
    workload: Workload,
    scheduler_builder: SchedulerBuilder,
    *,
    label: Optional[str] = None,
    n_processes: int,
    steps: int,
    seed: int = 0,
    burn_in: Optional[int] = None,
    batched: bool = True,
) -> DeparturePoint:
    """Run one workload under one scheduler; measure latency and TV distance.

    Seeding follows the sweep convention — the run RNG is
    ``default_rng((seed, n_processes))`` — so a departure point is
    reproducible independently of which curve it belongs to.  ``batched``
    selects the fast engine (bit-identical to serial by the PR 1
    contract; contention schedulers clamp the block size internally).
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    resolved_burn_in = steps // 10 if burn_in is None else burn_in
    if not 0 <= resolved_burn_in < steps:
        raise ValueError(
            f"burn_in={resolved_burn_in} must lie in [0, steps={steps})"
        )
    scheduler = scheduler_builder()
    simulator = Simulator(
        workload.factory_builder(),
        scheduler,
        n_processes=n_processes,
        memory=workload.memory_builder(),
        rng=np.random.default_rng((seed, n_processes)),
        record_completion_times=True,
    )
    result = (
        simulator.run_batched(steps) if batched else simulator.run(steps)
    )
    observer = SchedulerUniformityObserver()
    observer.observe_recorder(simulator.recorder)
    gaps = _completion_gaps(simulator.recorder, resolved_burn_in)
    completions = result.completions_this_run
    if gaps.size:
        p50 = float(np.percentile(gaps, 50))
        p99 = float(np.percentile(gaps, 99))
    else:
        p50 = p99 = float("inf")
    system_latency = (
        result.steps_this_run / completions if completions else float("inf")
    )
    return DeparturePoint(
        scheduler=label if label is not None else type(scheduler).__name__,
        tv_distance=observer.total_variation_distance(),
        fairness_ratio=observer.fairness_ratio(),
        p50_latency=p50,
        p99_latency=p99,
        system_latency=float(system_latency),
        completion_rate=float(result.completion_rate),
        completions=int(completions),
        steps=int(result.steps_this_run),
    )


def departure_curve(
    workload: Workload,
    schedulers: Optional[Sequence[Tuple[str, SchedulerBuilder]]] = None,
    *,
    n_processes: int = 8,
    steps: int = 20_000,
    seed: int = 0,
    burn_in: Optional[int] = None,
    batched: bool = True,
) -> List[DeparturePoint]:
    """One workload's latency-vs-departure curve across a scheduler family."""
    if schedulers is None:
        schedulers = default_departure_schedulers()
    return [
        measure_departure_point(
            workload,
            builder,
            label=label,
            n_processes=n_processes,
            steps=steps,
            seed=seed,
            burn_in=burn_in,
            batched=batched,
        )
        for label, builder in schedulers
    ]


def zoo_departure_table(
    workload_names_or_all: Optional[Sequence[str]] = None,
    schedulers: Optional[Sequence[Tuple[str, SchedulerBuilder]]] = None,
    *,
    n_processes: int = 8,
    steps: int = 20_000,
    seed: int = 0,
    burn_in: Optional[int] = None,
    batched: bool = True,
) -> Dict[str, object]:
    """The full zoo table: every workload's departure curve, JSON-ready.

    ``workload_names_or_all=None`` runs every registered workload.  The
    returned dict is the schema both ``repro zoo --out`` and the
    ``bench_perf`` zoo benchmark write::

        {"n_processes": ..., "steps": ..., "seed": ...,
         "workloads": {name: [point dicts sorted by tv_distance]}}
    """
    from repro.algorithms.registry import workload_names

    names = (
        tuple(workload_names_or_all)
        if workload_names_or_all is not None
        else workload_names()
    )
    table: Dict[str, List[Dict[str, object]]] = {}
    for name in names:
        workload = get_workload(name)
        points = departure_curve(
            workload,
            schedulers,
            n_processes=n_processes,
            steps=steps,
            seed=seed,
            burn_in=burn_in,
            batched=batched,
        )
        table[name] = [
            point.as_dict()
            for point in sorted(points, key=lambda p: p.tv_distance)
        ]
    return {
        "n_processes": int(n_processes),
        "steps": int(steps),
        "seed": int(seed),
        "workloads": table,
    }
