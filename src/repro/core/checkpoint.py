"""Append-only JSONL checkpoints for long-running sweeps.

A :class:`SweepCheckpoint` makes a sweep *resumable*: the first line of
the file is a schema-versioned header carrying the sweep's full
fingerprint (seed, steps, engine, ``n_values``, repeats, burn-in and a
hash of the resolved crash configuration), and every completed
``(n, replicate)`` triple is appended as its own JSON line.  Because
every replicate is pure deterministic work keyed by
``(seed, n, replicate)``, a resumed sweep that re-runs only the missing
replicates is bit-identical to an uninterrupted one — the checkpoint
never has to store partial simulator state, only finished numbers.

Durability model: each record is written as one line and flushed
immediately, with an ``fsync`` every ``fsync_every`` records (and on
:meth:`SweepCheckpoint.flush`/:meth:`SweepCheckpoint.close`).  A crash
can therefore lose at most the tail of the file, and a torn final line
is tolerated on load — and truncated before the resumed sweep appends,
so the next record starts a fresh line rather than gluing onto the
partial one; a corrupt line anywhere *else* is an error.
Resuming against a header whose fingerprint does not match the
requested sweep raises :class:`CheckpointMismatchError` naming every
differing field — silently mixing results from two different sweeps is
the one failure mode a checkpoint must never have.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

try:  # advisory file locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Bumped whenever the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

Triple = Tuple[float, float, float]


class CheckpointError(RuntimeError):
    """A checkpoint file cannot be created, read, or appended to."""


class CheckpointMismatchError(CheckpointError):
    """Resume was attempted against a checkpoint of a *different* sweep."""


@dataclass(frozen=True)
class ResolvedCrashSchedule:
    """A crash schedule resolved once, up front, for every sweep point.

    Callable crash schedules used to be resolved *twice* — once by
    :func:`crash_config_hash` at fingerprint time and once per point at
    run time — so a stateful or nondeterministic callable silently
    diverged the stored fingerprint from the executed crash
    configuration.  :meth:`resolve` calls the schedule exactly once per
    ``n`` and the resulting map feeds both the fingerprint and the
    execution, so they cannot disagree.  The resolved form is a plain
    dict of dicts, hence always picklable — callables shipped to
    :func:`repro.core.sweep.parallel_sweep` workers no longer need to
    be.
    """

    by_n: Dict[int, Dict[int, int]] = field(default_factory=dict)

    @classmethod
    def resolve(
        cls,
        crash_times: "CrashTimesLike",
        n_values: Sequence[int],
    ) -> Optional["ResolvedCrashSchedule"]:
        """Resolve ``crash_times`` for every ``n`` in ``n_values``.

        ``None`` stays ``None``; an already-resolved schedule is
        returned unchanged after checking it covers ``n_values``.
        """
        if crash_times is None:
            return None
        if isinstance(crash_times, cls):
            missing = [n for n in n_values if int(n) not in crash_times.by_n]
            if missing:
                raise ValueError(
                    f"resolved crash schedule has no entry for n={missing}"
                )
            return crash_times
        by_n = {}
        for n in n_values:
            per_point = crash_times(n) if callable(crash_times) else crash_times
            by_n[int(n)] = {int(pid): int(t) for pid, t in per_point.items()}
        return cls(by_n)

    def for_n(self, n: int) -> Dict[int, int]:
        """The ``{pid: time}`` crash map for one sweep point."""
        try:
            return self.by_n[int(n)]
        except KeyError:
            raise ValueError(
                f"crash schedule was resolved for n in "
                f"{sorted(self.by_n)}, not n={n}"
            ) from None


#: Crash schedules accepted by sweeps and fingerprints: one
#: ``{pid: time}`` map for every point, a callable ``n -> {pid: time}``,
#: a pre-resolved :class:`ResolvedCrashSchedule`, or ``None``.
CrashTimesLike = Union[
    Dict[int, int],
    Callable[[int], Dict[int, int]],
    ResolvedCrashSchedule,
    None,
]


def crash_config_hash(
    crash_times: CrashTimesLike,
    n_values: Sequence[int],
) -> str:
    """A stable digest of the *resolved* crash configuration.

    Callable crash schedules cannot be fingerprinted by identity (the
    function object changes between processes), so the schedule is
    resolved via :meth:`ResolvedCrashSchedule.resolve` and the canonical
    JSON of ``{n: {pid: time}}`` is hashed instead — two schedules that
    crash the same processes at the same times hash equal, however they
    were spelled.  ``None`` hashes to ``"none"``.  Pass an already
    resolved schedule to guarantee the hash describes exactly the crash
    maps that will execute (sweeps do this; see
    :class:`ResolvedCrashSchedule`).
    """
    schedule = ResolvedCrashSchedule.resolve(crash_times, n_values)
    if schedule is None:
        return "none"
    resolved = {int(n): schedule.for_n(n) for n in n_values}
    blob = json.dumps(resolved, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def sweep_fingerprint(
    *,
    seed: int,
    steps: int,
    engine: str,
    n_values: Sequence[int],
    repeats: int,
    burn_in: Optional[int],
    crash_times: CrashTimesLike = None,
    workload: Optional[str] = None,
) -> Dict[str, object]:
    """The identity of one sweep, as stored in the checkpoint header.

    Two sweeps with equal fingerprints produce bit-identical
    ``(n, replicate)`` triples, so their checkpoints are interchangeable;
    anything else must be rejected on resume.

    ``workload`` names the registered workload being swept
    (:mod:`repro.algorithms.registry`); ``None`` is the historical CAS
    counter default.  Folding the name in means a msqueue sweep can
    never resume from (or dedupe against) a counter checkpoint.
    """
    return {
        "seed": int(seed),
        "steps": int(steps),
        "engine": str(engine),
        "n_values": [int(n) for n in n_values],
        "repeats": int(repeats),
        "burn_in": None if burn_in is None else int(burn_in),
        "crash_hash": crash_config_hash(crash_times, n_values),
        "workload": None if workload is None else str(workload),
    }


#: Open checkpoints/stores, so ``repro.cli`` can flush them on
#: KeyboardInterrupt.  :class:`repro.core.store.ColumnarSweepStore`
#: registers here too — anything with ``closed``/``flush`` qualifies.
_ACTIVE: "weakref.WeakSet" = weakref.WeakSet()


def parse_point_record(
    record: object, path: Path, line_no: int
) -> Tuple[Tuple[int, int], Triple]:
    """Validate one JSON point record into ``((n, r), triple)``.

    A record that parsed as JSON can still be structurally invalid — a
    missing field, a short ``v`` list, a non-numeric entry.  Every such
    shape raises :class:`CheckpointError` naming the line, consistent
    with the other corruption paths; nothing escapes as a raw
    ``KeyError``/``IndexError``/``TypeError``.  Shared by the JSONL
    checkpoint and the columnar store's write-ahead tail.
    """

    def invalid(why: str) -> CheckpointError:
        return CheckpointError(
            f"checkpoint {path} line {line_no} is structurally invalid "
            f"({why}); the record parsed as JSON but is not a point record"
        )

    if not isinstance(record, dict):
        raise invalid(f"expected an object, got {type(record).__name__}")
    if record.get("kind") != "point":
        raise CheckpointError(
            f"checkpoint {path} line {line_no} has unknown kind "
            f"{record.get('kind')!r}"
        )
    for fld in ("n", "r", "v"):
        if fld not in record:
            raise invalid(f"missing field {fld!r}")
    n, r, values = record["n"], record["r"], record["v"]
    if isinstance(n, bool) or not isinstance(n, int):
        raise invalid(f"field 'n' must be an integer, got {n!r}")
    if isinstance(r, bool) or not isinstance(r, int):
        raise invalid(f"field 'r' must be an integer, got {r!r}")
    if not isinstance(values, list) or len(values) != 3:
        raise invalid(
            f"field 'v' must be a list of 3 numbers, got {values!r}"
        )
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise invalid(f"field 'v' has non-numeric entry {value!r}")
    return (int(n), int(r)), (
        float(values[0]),
        float(values[1]),
        float(values[2]),
    )


def repair_jsonl_tail(path: Path) -> None:
    """Make a JSONL journal end with a newline before appending to it.

    A crash mid-append can leave an unterminated final line.  If the
    bytes after the last newline parse as JSON, only the terminating
    newline was lost — restore it, keeping the record.  Otherwise the
    tail is torn garbage (already skipped on load): drop it, so the
    next append starts a fresh line instead of gluing onto the partial
    one and corrupting both records.
    """
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n") + 1
    tail = data[cut:]
    with path.open("r+b") as handle:
        try:
            json.loads(tail.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            handle.seek(cut)
            handle.truncate()
        else:
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")
        handle.flush()
        os.fsync(handle.fileno())


class WriterLock:
    """An advisory single-writer lock on a sidecar lockfile.

    Obtained via :func:`acquire_writer_lock`; hold it for as long as the
    journal is open for append, then :meth:`release`.  The lock is an
    OS-level ``flock``, so it evaporates automatically if the holding
    process dies — a crashed writer can never wedge the file shut — and
    the sidecar carries the holder's PID so the loser of a race gets an
    error *naming its competitor* instead of a silent corruption.
    """

    def __init__(self, path: Path, handle):
        self.path = Path(path)
        self._handle = handle

    @property
    def held(self) -> bool:
        return self._handle is not None

    def release(self) -> None:
        """Unlink the sidecar and drop the lock (idempotent).

        The unlink happens *while still holding* the flock, so a waiter
        that opened the old inode sees the path/inode mismatch when it
        finally acquires and retries on a fresh file — the classic
        unlink-vs-lock race cannot hand the lock to two holders.
        """
        if self._handle is None:
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass
        try:
            self._handle.close()
        finally:
            self._handle = None


def acquire_writer_lock(target: Union[str, Path]) -> Optional[WriterLock]:
    """Take the single-writer advisory lock for journal ``target``.

    The lock lives on a sidecar ``<target>.lock`` file (never on the
    journal itself, whose handle lifecycle belongs to the journal
    code).  A second concurrent open-for-append fails loudly with a
    :class:`CheckpointError` naming the holder's PID — two writers
    interleaving appends on one journal is unrecoverable corruption, so
    it must be impossible to do silently.

    Returns ``None`` on platforms without ``fcntl`` (the lock is
    advisory protection, not a correctness dependency of single-process
    use).  Never blocks: contention is an immediate error.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        return None
    lock_path = Path(f"{target}.lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    for _ in range(5):
        handle = open(lock_path, "a+b")
        try:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                try:
                    handle.seek(0)
                    holder = handle.read(64).decode("ascii", "replace").strip()
                except OSError:
                    holder = ""
                handle.close()
                raise CheckpointError(
                    f"{target} is already open for writing by "
                    f"PID {holder or 'unknown'} (lockfile {lock_path}); "
                    "a journal admits one writer at a time"
                ) from None
            # A released lock unlinks its sidecar while holding the
            # flock; if we locked a now-unlinked inode, retry on the
            # fresh path.
            try:
                if os.fstat(handle.fileno()).st_ino != os.stat(lock_path).st_ino:
                    raise FileNotFoundError
            except (FileNotFoundError, OSError):
                handle.close()
                continue
            handle.seek(0)
            handle.truncate()
            handle.write(f"{os.getpid()}\n".encode("ascii"))
            handle.flush()
            return WriterLock(lock_path, handle)
        except CheckpointError:
            raise
        except BaseException:
            handle.close()
            raise
    raise CheckpointError(
        f"could not acquire the writer lock for {target}: the lockfile "
        f"{lock_path} kept being replaced under us"
    )


def flush_active_checkpoints() -> int:
    """Flush every open checkpoint; returns how many were flushed."""
    count = 0
    for checkpoint in list(_ACTIVE):
        if not checkpoint.closed:
            checkpoint.flush()
            count += 1
    return count


class SweepCheckpoint:
    """Append-only record of the finished ``(n, replicate)`` triples.

    Use :meth:`open` — it creates a fresh file (writing the header) or,
    with ``resume=True``, validates the existing header against the
    requested fingerprint and loads the completed triples into
    :attr:`completed`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: Dict[str, object],
        completed: Dict[Tuple[int, int], Triple],
        handle,
        *,
        fsync_every: int = 16,
        telemetry=None,
        lock: Optional[WriterLock] = None,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.completed = completed
        self._handle = handle
        self._fsync_every = max(1, int(fsync_every))
        self._since_sync = 0
        self.telemetry = telemetry
        self._lock = lock
        _ACTIVE.add(self)

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        fingerprint: Dict[str, object],
        *,
        resume: bool = False,
        fsync_every: int = 16,
        telemetry=None,
    ) -> "SweepCheckpoint":
        """Create a fresh checkpoint, or resume an existing one.

        ``resume=False`` refuses to touch an existing non-empty file —
        clobbering a checkpoint silently would defeat its purpose.
        ``resume=True`` accepts a missing file (starts fresh, so a
        ``--resume`` invocation is idempotent) and otherwise validates
        the stored fingerprint, raising :class:`CheckpointMismatchError`
        on any difference.

        Opening takes the advisory single-writer lock (a sidecar
        ``<path>.lock``): a second concurrent open fails loudly with a
        :class:`CheckpointError` naming the holder's PID instead of
        silently interleaving appends.  The lock is released by
        :meth:`close` and evaporates with the process on a crash.
        """
        path = Path(path)
        exists = path.exists() and path.stat().st_size > 0
        if exists and not resume:
            raise CheckpointError(
                f"checkpoint {path} already exists; pass resume=True to "
                "continue it, or remove the file to start over"
            )
        lock = acquire_writer_lock(path)
        try:
            if exists:
                stored, completed = cls._read(path)
                if stored != fingerprint:
                    differing = sorted(
                        key
                        for key in set(stored) | set(fingerprint)
                        if stored.get(key) != fingerprint.get(key)
                    )
                    raise CheckpointMismatchError(
                        f"checkpoint {path} belongs to a different sweep: "
                        f"fields {differing} differ "
                        f"(stored {[stored.get(k) for k in differing]}, "
                        f"requested {[fingerprint.get(k) for k in differing]})"
                    )
                cls._repair_tail(path)
                handle = path.open("a", encoding="utf-8")
                if telemetry is not None and telemetry.enabled:
                    telemetry.inc("checkpoint.resume_hits", len(completed))
                return cls(
                    path,
                    fingerprint,
                    completed,
                    handle,
                    fsync_every=fsync_every,
                    telemetry=telemetry,
                    lock=lock,
                )
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = path.open("w", encoding="utf-8")
            header = {
                "kind": "header",
                "version": SCHEMA_VERSION,
                "fingerprint": fingerprint,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
            return cls(
                path,
                fingerprint,
                {},
                handle,
                fsync_every=fsync_every,
                telemetry=telemetry,
                lock=lock,
            )
        except BaseException:
            if lock is not None:
                lock.release()
            raise

    @staticmethod
    def _repair_tail(path: Path) -> None:
        """Make the file end with a newline before appending to it.

        See :func:`repair_jsonl_tail` (shared with the columnar store's
        write-ahead tail).
        """
        repair_jsonl_tail(path)

    @staticmethod
    def _read(
        path: Path,
    ) -> Tuple[Dict[str, object], Dict[Tuple[int, int], Triple]]:
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except (OSError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} is unreadable: {exc}"
            ) from exc
        if not lines:
            raise CheckpointError(f"checkpoint {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise CheckpointError(
                f"checkpoint {path} does not start with a header record"
            )
        if header.get("version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has schema version "
                f"{header.get('version')!r}; this build reads "
                f"version {SCHEMA_VERSION}"
            )
        fingerprint = header.get("fingerprint")
        if not isinstance(fingerprint, dict):
            raise CheckpointError(f"checkpoint {path} header has no fingerprint")
        completed: Dict[Tuple[int, int], Triple] = {}
        for index, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines):
                    # A torn final line is the expected shape of a crash
                    # mid-append; everything before it is intact.
                    break
                raise CheckpointError(
                    f"checkpoint {path} line {index} is corrupt "
                    "(not the final line, so this is not a torn tail)"
                )
            key, triple = parse_point_record(record, path, index)
            completed[key] = triple
        return fingerprint, completed

    @classmethod
    def load_completed(
        cls, path: Union[str, Path]
    ) -> Dict[Tuple[int, int], Triple]:
        """Read a checkpoint's completed triples without opening it."""
        return cls._read(Path(path))[1]

    @classmethod
    def load_fingerprint(cls, path: Union[str, Path]) -> Dict[str, object]:
        """Read a checkpoint's stored fingerprint without opening it."""
        return cls._read(Path(path))[0]

    # -- appending ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._handle is None

    def record(self, n: int, replicate: int, triple: Sequence[float]) -> None:
        """Append one finished ``(n, replicate)`` triple.

        The line is written with a single ``write`` call and flushed so a
        crash tears at most this line; an ``fsync`` lands every
        ``fsync_every`` records.  Re-recording a key overwrites it on
        load (last wins) — harmless, since retries re-run pure work.
        """
        if self._handle is None:
            raise CheckpointError(f"checkpoint {self.path} is closed")
        triple = (float(triple[0]), float(triple[1]), float(triple[2]))
        line = json.dumps(
            {"kind": "point", "n": int(n), "r": int(replicate), "v": list(triple)}
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        self.completed[(int(n), int(replicate))] = triple
        self._since_sync += 1
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("checkpoint.records")
        if self._since_sync >= self._fsync_every:
            os.fsync(self._handle.fileno())
            self._since_sync = 0
            if telemetry is not None and telemetry.enabled:
                telemetry.inc("checkpoint.fsync_batches")

    def flush(self) -> None:
        """Flush and fsync everything recorded so far."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("checkpoint.fsync_batches")

    def close(self) -> None:
        """Flush, fsync, and release the file handle (idempotent)."""
        if self._handle is None:
            return
        self.flush()
        self._handle.close()
        self._handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None
        _ACTIVE.discard(self)

    def missing(
        self, n_values: Sequence[int], repeats: int
    ) -> List[Tuple[int, int]]:
        """The ``(n, replicate)`` pairs not yet recorded, in sweep order."""
        return [
            (n, r)
            for n in n_values
            for r in range(repeats)
            if (n, r) not in self.completed
        ]

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
