"""Repeated-measurement sweeps with confidence intervals.

The benchmarks report single seeded runs (deterministic, diff-friendly);
downstream users doing their own studies want repeated runs and error
bars.  :func:`latency_sweep` measures an algorithm across process counts
with independent replicates and Student-t confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.latency import measure_latencies
from repro.core.scheduler import Scheduler, UniformStochasticScheduler
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory
from repro.stats.estimators import MeanEstimate, mean_confidence_interval


@dataclass(frozen=True)
class SweepPoint:
    """Measurements at one process count."""

    n: int
    system_latency: MeanEstimate
    completion_rate: MeanEstimate
    fairness_ratio: MeanEstimate


def latency_sweep(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    n_values: Sequence[int],
    *,
    steps: int = 100_000,
    repeats: int = 5,
    scheduler_builder: Optional[Callable[[], Scheduler]] = None,
    confidence: float = 0.95,
    seed: int = 0,
) -> List[SweepPoint]:
    """Measure latencies across ``n_values`` with ``repeats`` replicates.

    Each replicate gets a fresh factory, memory, scheduler and seed, so
    the replicates are independent and the confidence intervals honest.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 for confidence intervals")
    if scheduler_builder is None:
        scheduler_builder = UniformStochasticScheduler
    points: List[SweepPoint] = []
    for n in n_values:
        latencies, rates, fairness = [], [], []
        for r in range(repeats):
            measurement = measure_latencies(
                factory_builder(),
                scheduler_builder(),
                n_processes=n,
                steps=steps,
                memory=memory_builder(),
                rng=(seed, n, r),
            )
            latencies.append(measurement.system_latency)
            rates.append(measurement.completion_rate)
            fairness.append(measurement.fairness_ratio)
        points.append(
            SweepPoint(
                n=n,
                system_latency=mean_confidence_interval(latencies, confidence),
                completion_rate=mean_confidence_interval(rates, confidence),
                fairness_ratio=mean_confidence_interval(fairness, confidence),
            )
        )
    return points


def sweep_table(points: Sequence[SweepPoint], *, precision: int = 3) -> str:
    """Render a sweep as an aligned table with +- half-widths."""
    from repro.bench.formats import format_table

    rows = []
    for point in points:
        rows.append(
            (
                point.n,
                f"{point.system_latency.mean:.{precision}f} "
                f"+- {point.system_latency.half_width:.{precision}f}",
                f"{point.completion_rate.mean:.{precision}f} "
                f"+- {point.completion_rate.half_width:.{precision}f}",
                f"{point.fairness_ratio.mean:.{precision}f}",
            )
        )
    return format_table(
        ["n", "system latency", "completion rate", "fairness"], rows
    )
