"""Repeated-measurement sweeps with confidence intervals.

The benchmarks report single seeded runs (deterministic, diff-friendly);
downstream users doing their own studies want repeated runs and error
bars.  :func:`latency_sweep` measures an algorithm across process counts
with independent replicates and Student-t confidence intervals;
:func:`parallel_sweep` is the same measurement fanned out over worker
processes — replicate seeds are derived identically in both, so the two
produce bit-identical results.

Three engines drive the replicates (``engine=``): ``"serial"`` steps the
simulator one step at a time, ``"batched"`` uses the trace-equivalent
block fast path (:meth:`repro.sim.Simulator.run_batched`), and
``"ensemble"`` resolves all replicates of a sweep point together as array
operations (:class:`repro.sim.EnsembleSimulator`) — the fastest path for
multi-replicate work, available for SCU-shaped workloads whose factory
exposes a ``vector_kernel``.  All three produce bit-identical numbers
for the same seeds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.latency import measure_latencies, measure_latencies_ensemble
from repro.core.scheduler import Scheduler, UniformStochasticScheduler
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory
from repro.stats.estimators import MeanEstimate, mean_confidence_interval

_ENGINES = ("serial", "batched", "ensemble")

#: Crash schedules for sweeps: either one ``{pid: time}`` map applied at
#: every process count, or a callable ``n -> {pid: time}`` so the crash
#: set can scale with the sweep point (the Corollary 2 shape: crash all
#: but ``k`` of ``n``).  Callables must be picklable for
#: :func:`parallel_sweep` (module-level functions / ``functools.partial``).
CrashTimesLike = Union[Dict[int, int], Callable[[int], Dict[int, int]], None]


def _resolve_crash_times(
    crash_times: CrashTimesLike, n: int
) -> Optional[Dict[int, int]]:
    """The crash map for one sweep point."""
    if crash_times is None:
        return None
    if callable(crash_times):
        return crash_times(n)
    return crash_times


@dataclass(frozen=True)
class SweepPoint:
    """Measurements at one process count."""

    n: int
    system_latency: MeanEstimate
    completion_rate: MeanEstimate
    fairness_ratio: MeanEstimate


def _resolve_engine(engine: Optional[str], batched: bool) -> str:
    """Engine name from the explicit ``engine`` argument or the legacy
    ``batched`` flag (``engine`` wins when both are given)."""
    if engine is None:
        return "batched" if batched else "serial"
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    return engine


def _run_replicate(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    n: int,
    steps: int,
    seed: int,
    replicate: int,
    batched: bool,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
) -> Tuple[float, float, float]:
    """One independent replicate of one sweep point.

    Module-level (not a closure) so :func:`parallel_sweep` can ship it to
    worker processes; the ``(seed, n, replicate)`` seed tuple is the
    single source of randomness, which is what makes the serial and
    parallel sweeps bit-identical.
    """
    measurement = measure_latencies(
        factory_builder(),
        scheduler_builder(),
        n_processes=n,
        steps=steps,
        burn_in=burn_in,
        memory=memory_builder(),
        crash_times=_resolve_crash_times(crash_times, n),
        rng=(seed, n, replicate),
        batched=batched,
    )
    return (
        measurement.system_latency,
        measurement.completion_rate,
        measurement.fairness_ratio,
    )


def _run_replicate_chunk(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    pairs: Sequence[Tuple[int, int]],
    steps: int,
    seed: int,
    batched: bool,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
) -> List[Tuple[float, float, float]]:
    """A chunk of ``(n, replicate)`` tasks, run back-to-back in one worker.

    One pool task per chunk instead of per replicate cuts the pickling
    and dispatch overhead; each replicate still derives its own
    ``(seed, n, replicate)`` seed, so chunking cannot affect results.
    """
    return [
        _run_replicate(
            factory_builder,
            memory_builder,
            scheduler_builder,
            n,
            steps,
            seed,
            replicate,
            batched,
            burn_in,
            crash_times,
        )
        for n, replicate in pairs
    ]


def _collect_points(
    n_values: Sequence[int],
    repeats: int,
    results: Dict[Tuple[int, int], Tuple[float, float, float]],
    confidence: float,
) -> List[SweepPoint]:
    points: List[SweepPoint] = []
    for n in n_values:
        replicates = [results[(n, r)] for r in range(repeats)]
        latencies = [rep[0] for rep in replicates]
        rates = [rep[1] for rep in replicates]
        fairness = [rep[2] for rep in replicates]
        points.append(
            SweepPoint(
                n=n,
                system_latency=mean_confidence_interval(latencies, confidence),
                completion_rate=mean_confidence_interval(rates, confidence),
                fairness_ratio=mean_confidence_interval(fairness, confidence),
            )
        )
    return points


def latency_sweep(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    n_values: Sequence[int],
    *,
    steps: int = 100_000,
    repeats: int = 5,
    scheduler_builder: Optional[Callable[[], Scheduler]] = None,
    confidence: float = 0.95,
    seed: int = 0,
    batched: bool = False,
    engine: Optional[str] = None,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
) -> List[SweepPoint]:
    """Measure latencies across ``n_values`` with ``repeats`` replicates.

    Each replicate gets a fresh factory, memory, scheduler and seed, so
    the replicates are independent and the confidence intervals honest.
    ``engine`` selects the execution engine (see the module docstring);
    ``engine="ensemble"`` resolves each sweep point's replicates together
    as array operations — same seeds, same numbers, least wall-clock.
    The legacy ``batched=True`` flag is shorthand for
    ``engine="batched"``.

    ``crash_times`` turns the sweep into a halting-failure study
    (Corollary 2): a ``{pid: time}`` map applied at every sweep point, or
    a callable ``n -> {pid: time}`` when the crash set depends on the
    process count.  All three engines accept it and stay bit-identical.
    ``burn_in`` overrides the per-replicate burn-in (default
    ``steps // 10``) — crash sweeps usually want it past the crash
    transient.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 for confidence intervals")
    if scheduler_builder is None:
        scheduler_builder = UniformStochasticScheduler
    chosen = _resolve_engine(engine, batched)
    results: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
    if chosen == "ensemble":
        for n in n_values:
            measurements = measure_latencies_ensemble(
                factory_builder(),
                scheduler_builder,
                n,
                steps,
                [(seed, n, r) for r in range(repeats)],
                burn_in=burn_in,
                memory_factory=memory_builder,
                crash_times=_resolve_crash_times(crash_times, n),
            )
            for r, measurement in enumerate(measurements):
                results[(n, r)] = (
                    measurement.system_latency,
                    measurement.completion_rate,
                    measurement.fairness_ratio,
                )
    else:
        for n in n_values:
            for r in range(repeats):
                results[(n, r)] = _run_replicate(
                    factory_builder,
                    memory_builder,
                    scheduler_builder,
                    n,
                    steps,
                    seed,
                    r,
                    chosen == "batched",
                    burn_in,
                    crash_times,
                )
    return _collect_points(n_values, repeats, results, confidence)


def parallel_sweep(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    n_values: Sequence[int],
    *,
    steps: int = 100_000,
    repeats: int = 5,
    scheduler_builder: Optional[Callable[[], Scheduler]] = None,
    confidence: float = 0.95,
    seed: int = 0,
    batched: bool = True,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
) -> List[SweepPoint]:
    """:func:`latency_sweep` fanned out over a process pool.

    Every ``(n, replicate)`` pair is seeded with the same
    ``(seed, n, replicate)`` tuple the serial sweep uses, so the result
    is bit-identical to ``latency_sweep`` with the same arguments —
    scheduling order across workers cannot matter because no state is
    shared between replicates.

    Replicates are shipped to workers in chunks of ``chunk_size``
    consecutive tasks (one future per chunk, not per replicate), which
    cuts the pickling/dispatch overhead that dominates small replicates.
    ``chunk_size=None`` picks roughly four chunks per worker; chunking
    affects only scheduling, never results.

    The builders must be picklable (module-level functions or
    ``functools.partial`` over module-level functions; closures and
    lambdas are not).  The same goes for a callable ``crash_times`` —
    a dict always pickles.  ``batched`` defaults to True here: a sweep
    big enough to parallelise is big enough to want the fast path.
    ``max_workers`` caps the pool size (``None`` = executor default).
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 for confidence intervals")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if scheduler_builder is None:
        scheduler_builder = UniformStochasticScheduler
    tasks = [(n, r) for n in n_values for r in range(repeats)]
    results: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        if chunk_size is None:
            workers = pool._max_workers
            chunk_size = max(1, -(-len(tasks) // (workers * 4)))
        chunks = [
            tasks[start : start + chunk_size]
            for start in range(0, len(tasks), chunk_size)
        ]
        futures = [
            pool.submit(
                _run_replicate_chunk,
                factory_builder,
                memory_builder,
                scheduler_builder,
                chunk,
                steps,
                seed,
                batched,
                burn_in,
                crash_times,
            )
            for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            for key, triple in zip(chunk, future.result()):
                results[key] = triple
    return _collect_points(n_values, repeats, results, confidence)


def sweep_table(points: Sequence[SweepPoint], *, precision: int = 3) -> str:
    """Render a sweep as an aligned table with +- half-widths."""
    from repro.bench.formats import format_table

    rows = []
    for point in points:
        rows.append(
            (
                point.n,
                f"{point.system_latency.mean:.{precision}f} "
                f"+- {point.system_latency.half_width:.{precision}f}",
                f"{point.completion_rate.mean:.{precision}f} "
                f"+- {point.completion_rate.half_width:.{precision}f}",
                f"{point.fairness_ratio.mean:.{precision}f}",
            )
        )
    return format_table(
        ["n", "system latency", "completion rate", "fairness"], rows
    )
