"""Repeated-measurement sweeps with confidence intervals.

The benchmarks report single seeded runs (deterministic, diff-friendly);
downstream users doing their own studies want repeated runs and error
bars.  :func:`latency_sweep` measures an algorithm across process counts
with independent replicates and Student-t confidence intervals;
:func:`parallel_sweep` is the same measurement fanned out over worker
processes — replicate seeds are derived identically in both, so the two
produce bit-identical results.

Three engines drive the replicates (``engine=``): ``"serial"`` steps the
simulator one step at a time, ``"batched"`` uses the trace-equivalent
block fast path (:meth:`repro.sim.Simulator.run_batched`), and
``"ensemble"`` resolves all replicates of a sweep point together as array
operations (:class:`repro.sim.EnsembleSimulator`) — the fastest path for
multi-replicate work, available for SCU-shaped workloads whose factory
exposes a ``vector_kernel``.  All three produce bit-identical numbers
for the same seeds.

Long sweeps are *fault-tolerant*: :func:`parallel_sweep` runs on a
:class:`repro.core.runner.ResilientExecutor` (worker crashes, hangs and
pool deaths are retried with backoff, isolated, or degraded to
in-process execution — never silently dropped), and both sweeps accept
``checkpoint=``/``resume=`` (an append-only
:class:`repro.core.checkpoint.SweepCheckpoint`) or ``store=`` (a
chunked columnar :class:`repro.core.store.ColumnarSweepStore`, the
million-replicate format) so an interrupted sweep re-runs only the
missing replicates.  Aggregation is streaming
(:class:`StreamingSweepAggregator`): replicate triples fold into
Welford accumulators as they land, so sweep memory is O(sweep points),
not O(replicates).  None of this machinery can change results: every
replicate is pure work keyed by ``(seed, n, replicate)``, so a retried
or resumed replicate recomputes exactly the bytes the uninterrupted run
would have produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import (
    CrashTimesLike,
    ResolvedCrashSchedule,
    SweepCheckpoint,
    sweep_fingerprint,
)
from repro.core.latency import (
    measure_latencies,
    resolve_vector_kernel,
    validate_burn_in,
)
from repro.core.runner import ResilientExecutor, RetryPolicy, TaskError
from repro.core.scheduler import Scheduler, UniformStochasticScheduler
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory
from repro.core.store import ColumnarSweepStore
from repro.stats.estimators import (
    MeanEstimate,
    StreamingMeanEstimator,
)

_ENGINES = ("serial", "batched", "ensemble")

# Crash schedules for sweeps (``CrashTimesLike``): one ``{pid: time}``
# map applied at every process count, a callable ``n -> {pid: time}`` so
# the crash set can scale with the sweep point (the Corollary 2 shape:
# crash all but ``k`` of ``n``), or an already-resolved
# :class:`ResolvedCrashSchedule`.  Both sweeps resolve the schedule
# exactly once, up front, and feed the *same* resolved map to the
# fingerprint and to every replicate — a stateful or nondeterministic
# callable can no longer diverge the stored fingerprint from the
# executed crash config.  A side effect: the resolved schedule is a
# plain frozen dataclass of dicts, so :func:`parallel_sweep` no longer
# needs the callable itself to be picklable.


def _resolve_crash_times(
    crash_times: CrashTimesLike, n: int
) -> Optional[Dict[int, int]]:
    """The crash map for one sweep point."""
    if crash_times is None:
        return None
    if isinstance(crash_times, ResolvedCrashSchedule):
        return crash_times.for_n(n)
    if callable(crash_times):
        return crash_times(n)
    return crash_times


@dataclass(frozen=True)
class SweepPoint:
    """Measurements at one process count."""

    n: int
    system_latency: MeanEstimate
    completion_rate: MeanEstimate
    fairness_ratio: MeanEstimate


def _resolve_engine(engine: Optional[str], batched: bool) -> str:
    """Engine name from the explicit ``engine`` argument or the legacy
    ``batched`` flag.

    Passing both is accepted only when they agree (``engine="batched"``
    with ``batched=True``); a contradictory combination raises a
    :class:`ValueError` naming both arguments rather than silently
    letting one win.
    """
    if engine is None:
        return "batched" if batched else "serial"
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if batched and engine != "batched":
        raise ValueError(
            f"contradictory arguments: engine={engine!r} with batched=True "
            "(the legacy batched flag means engine='batched'); pass one or "
            "the other"
        )
    return engine


def _run_replicate(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    n: int,
    steps: int,
    seed: int,
    replicate: int,
    batched: bool,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
    telemetry=None,
) -> Tuple[float, float, float]:
    """One independent replicate of one sweep point.

    Module-level (not a closure) so :func:`parallel_sweep` can ship it to
    worker processes; the ``(seed, n, replicate)`` seed tuple is the
    single source of randomness, which is what makes the serial and
    parallel sweeps bit-identical.  ``telemetry`` is only ever non-None
    in-process (registries are not shipped to workers).
    """
    measurement = measure_latencies(
        factory_builder(),
        scheduler_builder(),
        n_processes=n,
        steps=steps,
        burn_in=burn_in,
        memory=memory_builder(),
        crash_times=_resolve_crash_times(crash_times, n),
        rng=(seed, n, replicate),
        batched=batched,
        telemetry=telemetry,
    )
    return (
        measurement.system_latency,
        measurement.completion_rate,
        measurement.fairness_ratio,
    )


def _run_replicate_chunk(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    pairs: Sequence[Tuple[int, int]],
    steps: int,
    seed: int,
    batched: bool,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
) -> List[Tuple[float, float, float]]:
    """A chunk of ``(n, replicate)`` tasks, run back-to-back in one worker.

    One pool task per chunk instead of per replicate cuts the pickling
    and dispatch overhead; each replicate still derives its own
    ``(seed, n, replicate)`` seed, so chunking cannot affect results.
    """
    return [
        _run_replicate(
            factory_builder,
            memory_builder,
            scheduler_builder,
            n,
            steps,
            seed,
            replicate,
            batched,
            burn_in,
            crash_times,
        )
        for n, replicate in pairs
    ]


def _chunk_worker(
    pairs: Sequence[Tuple[int, int]],
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    steps: int,
    seed: int,
    batched: bool,
    burn_in: Optional[int],
    crash_times: CrashTimesLike,
) -> List[Tuple[float, float, float]]:
    """:func:`_run_replicate_chunk` with the task keys first — the
    calling convention :class:`~repro.core.runner.ResilientExecutor`
    (and the chaos harness wrapping it) uses."""
    return _run_replicate_chunk(
        factory_builder,
        memory_builder,
        scheduler_builder,
        pairs,
        steps,
        seed,
        batched,
        burn_in,
        crash_times,
    )


def _shm_chunk_worker(
    rows: Sequence[int],
    task_name: str,
    result_name: str,
    task_count: int,
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    steps: int,
    seed: int,
    batched: bool,
    burn_in: Optional[int],
    crash_times: CrashTimesLike,
) -> List[int]:
    """The shared-memory twin of :func:`_chunk_worker`.

    Task keys are *row indices* into the sweep's shared task segment;
    the worker reads each row's ``(n, replicate)`` pair from shared
    memory, runs the replicate, and writes the triple into the shared
    result segment in place — nothing but the row indices ever crosses
    the pickle pipe.  Returning the rows satisfies the executor's
    one-result-per-key contract and tells the parent which result rows
    are ready to read.  Retries rewrite identical bytes (replicates are
    pure functions of ``(seed, n, replicate)``), so recovery is
    idempotent.
    """
    from repro.core.shm import attach_array

    tasks = attach_array(task_name, (task_count, 2), np.int64)
    results = attach_array(result_name, (task_count, 3), np.float64)
    out: List[int] = []
    for row in rows:
        n = int(tasks[row, 0])
        replicate = int(tasks[row, 1])
        triple = _run_replicate(
            factory_builder,
            memory_builder,
            scheduler_builder,
            n,
            steps,
            seed,
            replicate,
            batched,
            burn_in,
            crash_times,
        )
        results[row, 0] = triple[0]
        results[row, 1] = triple[1]
        results[row, 2] = triple[2]
        out.append(row)
    return out


def _open_result_log(
    checkpoint,
    store,
    resume: bool,
    *,
    seed: int,
    steps: int,
    engine: str,
    n_values: Sequence[int],
    repeats: int,
    burn_in: Optional[int],
    crash_times: CrashTimesLike,
    telemetry=None,
    workload: Optional[str] = None,
):
    """Open/validate the sweep's result log, if one was requested.

    ``checkpoint`` names a JSONL :class:`SweepCheckpoint` file,
    ``store`` a :class:`ColumnarSweepStore` directory; at most one may
    be given.  Both carry the same fingerprint and the same
    ``record``/``completed``/``close`` interface, so the sweeps treat
    them interchangeably.
    """
    if checkpoint is not None and store is not None:
        raise ValueError(
            "pass checkpoint=<file> or store=<dir>, not both — they are "
            "two formats of the same result log"
        )
    if checkpoint is None and store is None:
        if resume:
            raise ValueError(
                "resume=True requires checkpoint=<path> or store=<dir>"
            )
        return None
    fingerprint = sweep_fingerprint(
        seed=seed,
        steps=steps,
        engine=engine,
        n_values=n_values,
        repeats=repeats,
        burn_in=burn_in,
        crash_times=crash_times,
        workload=workload,
    )
    if store is not None:
        return ColumnarSweepStore.open(
            store, fingerprint, resume=resume, telemetry=telemetry
        )
    return SweepCheckpoint.open(
        checkpoint, fingerprint, resume=resume, telemetry=telemetry
    )


def _note_point_telemetry(telemetry, n: int, replicates: int, seconds: float) -> None:
    """Settle one sweep point's wall time and replicate count."""
    telemetry.inc("sweep.points")
    telemetry.inc("sweep.replicates", replicates)
    telemetry.observe("sweep.point_seconds", seconds)
    telemetry.emit(
        "sweep.point",
        {"n": n, "replicates": replicates, "seconds": seconds},
    )


class StreamingSweepAggregator:
    """Streaming per-``(n, metric)`` aggregation for sweep results.

    Three :class:`StreamingMeanEstimator` accumulators per sweep point
    (system latency, completion rate, fairness ratio), fed one replicate
    triple at a time via :meth:`add` — memory is O(sweep points), not
    O(replicates), which is what makes million-replicate sweeps fit.

    Replicates may :meth:`add` in *any* order (parallel sweeps complete
    out of order; resumed sweeps replay the log first), but the
    accumulators are always folded in canonical ``replicate`` order:
    out-of-order arrivals wait in a small pending buffer until the gap
    before them fills.  Folding order is therefore a function of the
    sweep's task set alone, never of scheduling — which is why serial,
    batched, ensemble, parallel and resumed runs of the same sweep
    produce bit-identical :class:`SweepPoint` lists.
    """

    def __init__(self, n_values: Sequence[int], repeats: int):
        if repeats < 2:
            raise ValueError("repeats must be at least 2 for confidence intervals")
        self._n_values = list(n_values)
        self._repeats = repeats
        self._accumulators: Dict[int, Tuple[StreamingMeanEstimator, ...]] = {
            n: tuple(StreamingMeanEstimator() for _ in range(3))
            for n in self._n_values
        }
        self._pending: Dict[int, Dict[int, Tuple[float, float, float]]] = {
            n: {} for n in self._n_values
        }
        self._cursor: Dict[int, int] = {n: 0 for n in self._n_values}

    def add(self, key: Tuple[int, int], triple: Sequence[float]) -> None:
        """Fold one replicate's ``(latency, rate, fairness)`` triple."""
        n, r = key
        if n not in self._accumulators:
            raise KeyError(f"replicate key {key} has n outside the sweep")
        if not 0 <= r < self._repeats:
            raise KeyError(
                f"replicate key {key} has replicate outside [0, {self._repeats})"
            )
        pending = self._pending[n]
        if r < self._cursor[n] or r in pending:
            raise ValueError(f"replicate {key} was already added")
        pending[r] = (float(triple[0]), float(triple[1]), float(triple[2]))
        cursor = self._cursor[n]
        accumulators = self._accumulators[n]
        while cursor in pending:
            for accumulator, value in zip(accumulators, pending.pop(cursor)):
                accumulator.add(value)
            cursor += 1
        self._cursor[n] = cursor

    @property
    def pending_count(self) -> int:
        """Replicates buffered out-of-order, awaiting an earlier gap."""
        return sum(len(pending) for pending in self._pending.values())

    @property
    def completed_count(self) -> int:
        """Replicates already folded into the accumulators."""
        return sum(self._cursor.values())

    def points(self, confidence: float) -> List[SweepPoint]:
        """The finished :class:`SweepPoint` list; every replicate must
        have been added."""
        missing = [
            n
            for n in self._n_values
            if self._cursor[n] != self._repeats
        ]
        if missing:
            raise ValueError(
                f"sweep points n={missing} are missing replicates "
                f"(expected {self._repeats} each)"
            )
        points: List[SweepPoint] = []
        for n in self._n_values:
            latency, rate, fairness = self._accumulators[n]
            points.append(
                SweepPoint(
                    n=n,
                    system_latency=latency.estimate(confidence),
                    completion_rate=rate.estimate(confidence),
                    fairness_ratio=fairness.estimate(confidence),
                )
            )
        return points


_GRID_FUSE_STEPS = 32_000_000  # upfront-drawn schedule budget per grid chunk


def _run_ensemble_grid(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    scheduler_builder: Callable[[], Scheduler],
    n_values: Sequence[int],
    repeats: int,
    steps: int,
    seed: int,
    burn_in: Optional[int],
    schedule: CrashTimesLike,
    recorded: set,
    note: Callable[[Tuple[int, int], Tuple[float, float, float]], None],
    telemetry,
    fuse="auto",
    engine_kernel: str = "auto",
    ensemble_workers=None,
) -> int:
    """Resolve the whole sweep grid as fused ensembles.

    Every missing ``(n, r)`` replicate across *all* sweep points joins
    one ensemble (chunked so at most ``_GRID_FUSE_STEPS`` schedule steps
    are drawn up front per chunk), and the fused resolver stacks
    same-shape replicates regardless of ``n`` — one vectorized pass
    covers the whole n-grid, not just one point's replicate block.
    Replicates keep their ``(seed, n, r)`` seeds and dedicated
    scheduler/memory instances, so results are bit-identical to the
    per-point path.  ``note`` fires in canonical n-major order.

    Per-point telemetry survives fusion: one ``sweep.point`` event per
    ``n`` as before, with the grid's elapsed wall time apportioned by
    the point's share of resolved replicates (per-point timing is no
    longer individually observable once points share a pass).  Returns
    the number of replicates run.
    """
    from repro.sim.ensemble import EnsembleReplicate, EnsembleSimulator

    kernel = resolve_vector_kernel(factory_builder())
    crash_of: Dict[int, Optional[Dict[int, int]]] = {}
    missing_of: Dict[int, List[int]] = {}
    pending: List[Tuple[int, int]] = []
    for n in n_values:
        missing = [r for r in range(repeats) if (n, r) not in recorded]
        if not missing:
            continue
        missing_of[n] = missing
        crash = _resolve_crash_times(schedule, n)
        crash_of[n] = dict(crash) if crash else None
        pending.extend((n, r) for r in missing)
    if not pending:
        return 0
    grid_started = time.perf_counter() if telemetry is not None else 0.0
    chunk = max(1, _GRID_FUSE_STEPS // max(steps, 1))
    for start in range(0, len(pending), chunk):
        block = pending[start : start + chunk]
        members = [
            EnsembleReplicate(
                kernel=kernel,
                n_processes=n,
                scheduler=scheduler_builder(),
                memory=memory_builder(),
                rng=(seed, n, r),
                crash_times=dict(crash_of[n]) if crash_of[n] else None,
            )
            for n, r in block
        ]
        result = EnsembleSimulator(
            members,
            telemetry=telemetry,
            fuse=fuse,
            engine_kernel=engine_kernel,
            max_workers=ensemble_workers,
        ).run(steps)
        measurements = result.measurements(burn_in=burn_in)
        for (n, r), measurement in zip(block, measurements):
            note(
                (n, r),
                (
                    measurement.system_latency,
                    measurement.completion_rate,
                    measurement.fairness_ratio,
                ),
            )
    if telemetry is not None:
        elapsed = time.perf_counter() - grid_started
        for n, missing in missing_of.items():
            _note_point_telemetry(
                telemetry, n, len(missing), elapsed * len(missing) / len(pending)
            )
    return len(pending)


def _collect_points(
    n_values: Sequence[int],
    repeats: int,
    results: Dict[Tuple[int, int], Tuple[float, float, float]],
    confidence: float,
) -> List[SweepPoint]:
    """Aggregate a completed results dict into sweep points.

    Delegates to :class:`StreamingSweepAggregator` so batch and
    streaming aggregation are a single code path producing identical
    bits.
    """
    aggregator = StreamingSweepAggregator(n_values, repeats)
    for n in n_values:
        for r in range(repeats):
            aggregator.add((n, r), results[(n, r)])
    return aggregator.points(confidence)


def latency_sweep(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    n_values: Sequence[int],
    *,
    steps: int = 100_000,
    repeats: int = 5,
    scheduler_builder: Optional[Callable[[], Scheduler]] = None,
    confidence: float = 0.95,
    seed: int = 0,
    batched: bool = False,
    engine: Optional[str] = None,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
    checkpoint=None,
    store=None,
    resume: bool = False,
    on_progress: Optional[Callable[[int, int, Tuple[int, int]], None]] = None,
    telemetry=None,
    fuse="auto",
    engine_kernel: str = "auto",
    ensemble_workers=None,
    workload: Optional[str] = None,
) -> List[SweepPoint]:
    """Measure latencies across ``n_values`` with ``repeats`` replicates.

    Each replicate gets a fresh factory, memory, scheduler and seed, so
    the replicates are independent and the confidence intervals honest.
    ``engine`` selects the execution engine (see the module docstring);
    ``engine="ensemble"`` resolves each sweep point's replicates together
    as array operations — same seeds, same numbers, least wall-clock.
    The legacy ``batched=True`` flag is shorthand for
    ``engine="batched"``.  ``fuse``, ``engine_kernel`` and
    ``ensemble_workers`` tune the ensemble engine only (fused same-shape
    replicate stacking across the whole grid, the compiled-kernel
    choice, and sharding the fused blocks across a worker pool over
    shared memory — ``"auto"`` saturates every available CPU; see
    :class:`~repro.sim.EnsembleSimulator`); every setting is
    bit-identical, they trade wall-clock only.

    ``crash_times`` turns the sweep into a halting-failure study
    (Corollary 2): a ``{pid: time}`` map applied at every sweep point, a
    callable ``n -> {pid: time}`` when the crash set depends on the
    process count, or a pre-resolved
    :class:`~repro.core.checkpoint.ResolvedCrashSchedule`.  A callable
    is resolved exactly once, up front; the fingerprint and every
    replicate see the same resolved map.  All three engines accept it
    and stay bit-identical.  ``burn_in`` overrides the per-replicate
    burn-in (default ``steps // 10``) — crash sweeps usually want it
    past the crash transient.

    ``checkpoint`` names a :class:`SweepCheckpoint` JSONL file and
    ``store`` a :class:`~repro.core.store.ColumnarSweepStore` directory
    (at most one of the two); finished replicates are appended as they
    land, and ``resume=True`` skips the ones already recorded (after
    validating the log belongs to *this* sweep).  Resuming from either
    format is bit-identical to the uninterrupted run.
    ``on_progress(done, total, (n, replicate))`` fires after each
    replicate.  None of this can change the numbers.

    ``telemetry`` (a :class:`~repro.core.telemetry.MetricsRegistry`)
    records per-point wall time, replicate counts and throughput, plus
    every engine/checkpoint counter along the way.  Telemetry observes
    the sweep and never feeds back into it — results are bit-identical
    with it on or off.

    ``workload`` names the registered workload the builders came from
    (:mod:`repro.algorithms.registry`); it is folded into the checkpoint
    fingerprint so logs from different workloads can never be confused,
    and is otherwise inert.  ``None`` keeps the historical CAS-counter
    fingerprints valid.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 for confidence intervals")
    validate_burn_in(burn_in, steps)
    if scheduler_builder is None:
        scheduler_builder = UniformStochasticScheduler
    chosen = _resolve_engine(engine, batched)
    telemetry_on = telemetry is not None and telemetry.enabled
    schedule = ResolvedCrashSchedule.resolve(crash_times, n_values)
    log = _open_result_log(
        checkpoint,
        store,
        resume,
        seed=seed,
        steps=steps,
        engine=chosen,
        n_values=n_values,
        repeats=repeats,
        burn_in=burn_in,
        crash_times=schedule,
        telemetry=telemetry,
        workload=workload,
    )
    aggregator = StreamingSweepAggregator(n_values, repeats)
    recorded = set()
    if log is not None:
        for key, triple in log.completed.items():
            aggregator.add(key, triple)
            recorded.add(key)
    total = len(n_values) * repeats
    done = len(recorded)
    if telemetry_on and log is not None and resume:
        telemetry.inc("checkpoint.resume_misses", total - done)
    sweep_started = time.perf_counter() if telemetry_on else 0.0
    run_replicates = 0

    def note(key: Tuple[int, int], triple: Tuple[float, float, float]) -> None:
        nonlocal done
        done += 1
        aggregator.add(key, triple)
        if log is not None:
            log.record(key[0], key[1], triple)
        if on_progress is not None:
            on_progress(done, total, key)

    try:
        if chosen == "ensemble":
            run_replicates += _run_ensemble_grid(
                factory_builder,
                memory_builder,
                scheduler_builder,
                n_values,
                repeats,
                steps,
                seed,
                burn_in,
                schedule,
                recorded,
                note,
                telemetry if telemetry_on else None,
                fuse=fuse,
                engine_kernel=engine_kernel,
                ensemble_workers=ensemble_workers,
            )
        else:
            for n in n_values:
                point_started = time.perf_counter() if telemetry_on else 0.0
                point_replicates = 0
                for r in range(repeats):
                    if (n, r) in recorded:
                        continue
                    triple = _run_replicate(
                        factory_builder,
                        memory_builder,
                        scheduler_builder,
                        n,
                        steps,
                        seed,
                        r,
                        chosen == "batched",
                        burn_in,
                        schedule,
                        telemetry,
                    )
                    note((n, r), triple)
                    point_replicates += 1
                run_replicates += point_replicates
                if telemetry_on and point_replicates:
                    _note_point_telemetry(
                        telemetry,
                        n,
                        point_replicates,
                        time.perf_counter() - point_started,
                    )
    finally:
        if log is not None:
            log.close()
    if telemetry_on:
        elapsed = time.perf_counter() - sweep_started
        if run_replicates and elapsed > 0:
            telemetry.set_gauge(
                "sweep.replicates_per_sec", run_replicates / elapsed
            )
    return aggregator.points(confidence)


def parallel_sweep(
    factory_builder: Callable[[], ProcessFactory],
    memory_builder: Callable[[], Memory],
    n_values: Sequence[int],
    *,
    steps: int = 100_000,
    repeats: int = 5,
    scheduler_builder: Optional[Callable[[], Scheduler]] = None,
    confidence: float = 0.95,
    seed: int = 0,
    batched: bool = True,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    burn_in: Optional[int] = None,
    crash_times: CrashTimesLike = None,
    checkpoint=None,
    store=None,
    resume: bool = False,
    on_progress: Optional[Callable[[int, int, Tuple[int, int]], None]] = None,
    retry: Optional[RetryPolicy] = None,
    pool_factory: Optional[Callable] = None,
    dispatch: str = "auto",
    telemetry=None,
    workload: Optional[str] = None,
) -> List[SweepPoint]:
    """:func:`latency_sweep` fanned out over a fault-tolerant process pool.

    Every ``(n, replicate)`` pair is seeded with the same
    ``(seed, n, replicate)`` tuple the serial sweep uses, so the result
    is bit-identical to ``latency_sweep`` with the same arguments —
    scheduling order across workers cannot matter because no state is
    shared between replicates.

    Replicates are shipped to workers in chunks of ``chunk_size``
    consecutive tasks (one future per chunk, not per replicate), which
    cuts the pickling/dispatch overhead that dominates small replicates.
    ``chunk_size=None`` picks roughly four chunks per worker, computed
    from ``max_workers`` (or
    :func:`~repro.core.runner.available_cpu_count`); chunking affects
    only scheduling, never results.

    Execution rides a :class:`~repro.core.runner.ResilientExecutor`:
    failed or timed-out chunks are retried with capped exponential
    backoff and deterministic jitter, repeat offenders are split down to
    single replicates to isolate the poison task (which is then named in
    the raised :class:`~repro.core.runner.TaskError`), a broken pool is
    rebuilt, and after ``retry.fallback_after`` consecutive pool
    failures the remaining tasks degrade to in-process serial execution.
    ``retry`` tunes all of this (default :class:`RetryPolicy`; its
    ``timeout`` is the per-chunk deadline, ``None`` = no deadline).
    Retries re-run pure deterministic work, so fault recovery cannot
    change a single bit of the output.

    ``dispatch`` picks how tasks and results move between parent and
    workers.  ``"sharedmem"`` routes both through
    ``multiprocessing.shared_memory`` segments
    (:class:`repro.core.shm.SweepTaskBuffers`): task keys become row
    indices into a shared task table and result triples are written in
    place, so per-chunk pickle payloads shrink to a few ints and results
    never cross the pipe.  ``"pickle"`` is the classic path;
    ``"auto"`` (the default) tries shared memory and silently falls back
    to pickle when the platform refuses (counted as ``shm.fallbacks``).
    The segments are named off the sweep fingerprint and unlinked in
    this function's ``finally`` — worker kills, poison tasks and parent
    exceptions all leave zero orphaned ``/dev/shm`` entries (enforced
    under chaos injection in ``tests/core/test_shm_dispatch.py``).
    Dispatch affects transport only, never results.

    ``checkpoint``/``store``/``resume``/``on_progress`` behave exactly
    as in :func:`latency_sweep`; a checkpoint written by a
    (serial-engine) ``latency_sweep`` with matching parameters is
    accepted here and vice versa.  ``pool_factory`` swaps the process
    pool implementation — the fault-injection hook
    :class:`repro.testing.chaos.ChaosPool` plugs in there (with
    shared-memory dispatch, chaos plans key faults by row index).

    The builders must be picklable (module-level functions or
    ``functools.partial`` over module-level functions; closures and
    lambdas are not).  A callable ``crash_times`` need not be: it is
    resolved once in the parent and only the resolved schedule (a
    frozen dataclass of dicts) ships to workers.  ``batched`` defaults
    to True here: a sweep big enough to parallelise is big enough to
    want the fast path.  ``max_workers`` caps the pool size (``None`` =
    one per *available* CPU — cgroup/affinity limits respected).

    ``telemetry`` stays in the *parent* process (registries are not
    shipped to pickled workers): it records the executor's recovery
    counters, checkpoint activity, total wall time and replicates/sec.
    Per-replicate engine counters are only available from the in-process
    engines — use :func:`latency_sweep` for those.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 for confidence intervals")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if dispatch not in ("auto", "pickle", "sharedmem"):
        raise ValueError(
            f"unknown dispatch {dispatch!r}; expected 'auto', 'pickle' or "
            "'sharedmem'"
        )
    validate_burn_in(burn_in, steps)
    if scheduler_builder is None:
        scheduler_builder = UniformStochasticScheduler
    telemetry_on = telemetry is not None and telemetry.enabled
    schedule = ResolvedCrashSchedule.resolve(crash_times, n_values)
    log = _open_result_log(
        checkpoint,
        store,
        resume,
        seed=seed,
        steps=steps,
        engine="batched" if batched else "serial",
        n_values=n_values,
        repeats=repeats,
        burn_in=burn_in,
        crash_times=schedule,
        telemetry=telemetry,
        workload=workload,
    )
    aggregator = StreamingSweepAggregator(n_values, repeats)
    recorded = set()
    if log is not None:
        for key, triple in log.completed.items():
            aggregator.add(key, triple)
            recorded.add(key)
    total = len(n_values) * repeats
    done = len(recorded)
    tasks = [
        (n, r)
        for n in n_values
        for r in range(repeats)
        if (n, r) not in recorded
    ]
    if telemetry_on and log is not None and resume:
        telemetry.inc("checkpoint.resume_misses", len(tasks))
    sweep_started = time.perf_counter() if telemetry_on else 0.0

    def note(key: Tuple[int, int], triple: Tuple[float, float, float]) -> None:
        nonlocal done
        done += 1
        aggregator.add(key, triple)
        if log is not None:
            log.record(key[0], key[1], triple)
        if on_progress is not None:
            on_progress(done, total, key)

    buffers = None
    if tasks and dispatch != "pickle":
        try:
            from repro.core.shm import SweepTaskBuffers, segment_digest

            buffers = SweepTaskBuffers(
                tasks,
                segment_digest(
                    sweep_fingerprint(
                        seed=seed,
                        steps=steps,
                        engine="batched" if batched else "serial",
                        n_values=n_values,
                        repeats=repeats,
                        burn_in=burn_in,
                        crash_times=schedule,
                        workload=workload,
                    )
                ),
                telemetry=telemetry,
            )
        except Exception:
            if dispatch == "sharedmem":
                raise
            # auto: the platform refused (no /dev/shm, tiny rlimits, ...)
            # — dispatch is transport only, so degrade to pickle.
            buffers = None
            if telemetry_on:
                telemetry.inc("shm.fallbacks")

    def note_row(row: int, _ready) -> None:
        note(buffers.key_of(row), buffers.triple(row))

    try:
        if tasks:
            executor = ResilientExecutor(
                _shm_chunk_worker if buffers is not None else _chunk_worker,
                max_workers=max_workers,  # None -> available_cpu_count()
                policy=retry,
                pool_factory=pool_factory,
                telemetry=telemetry,
            )
            if buffers is not None:
                worker_args: Tuple = (
                    buffers.task_name,
                    buffers.result_name,
                    buffers.task_count,
                )
                keys: Sequence = range(len(tasks))
            else:
                worker_args = ()
                keys = tasks
            # ``on_result`` fires exactly once per task, so the
            # aggregator sees every replicate; ``collect=False`` keeps
            # the executor from building a second O(replicates) dict.
            try:
                executor.run(
                    list(keys),
                    args=worker_args
                    + (
                        factory_builder,
                        memory_builder,
                        scheduler_builder,
                        steps,
                        seed,
                        batched,
                        burn_in,
                        schedule,
                    ),
                    chunk_size=chunk_size,
                    on_result=note_row if buffers is not None else note,
                    collect=False,
                )
            except TaskError as error:
                # Under shared-memory dispatch the executor knows tasks
                # only as row indices; name the real replicate.
                if buffers is not None and isinstance(error.key, int):
                    raise TaskError(tasks[error.key], error.cause) from error.cause
                raise
    finally:
        if buffers is not None:
            buffers.close()
        if log is not None:
            log.close()
    if telemetry_on:
        elapsed = time.perf_counter() - sweep_started
        telemetry.inc("sweep.points", len(n_values))
        telemetry.inc("sweep.replicates", len(tasks))
        telemetry.observe("sweep.parallel_seconds", elapsed)
        if tasks and elapsed > 0:
            telemetry.set_gauge(
                "sweep.replicates_per_sec", len(tasks) / elapsed
            )
    return aggregator.points(confidence)


def sweep_table(points: Sequence[SweepPoint], *, precision: int = 3) -> str:
    """Render a sweep as an aligned table with +- half-widths."""
    from repro.bench.formats import format_table

    rows = []
    for point in points:
        rows.append(
            (
                point.n,
                f"{point.system_latency.mean:.{precision}f} "
                f"+- {point.system_latency.half_width:.{precision}f}",
                f"{point.completion_rate.mean:.{precision}f} "
                f"+- {point.completion_rate.half_width:.{precision}f}",
                f"{point.fairness_ratio.mean:.{precision}f}",
            )
        )
    return format_table(
        ["n", "system latency", "completion rate", "fairness"], rows
    )
