"""Telemetry: metrics, spans, event hooks, and structured run reports.

The paper's empirical backbone (Appendix A, Figures 3-4) is an
*observation* claim — real schedulers are approximately uniform over
long executions — yet a reproduction with no observability cannot turn
that measurement on itself.  This module gives every layer of the stack
a way to report what it actually did:

* :class:`MetricsRegistry` — named counters, gauges and histograms,
  plus :meth:`MetricsRegistry.span` wall-clock timers and a small
  publish/subscribe event protocol (:meth:`MetricsRegistry.subscribe` /
  :meth:`MetricsRegistry.emit`).
* :class:`NullMetricsRegistry` / :data:`NULL_TELEMETRY` — the
  zero-overhead default.  Every instrumented component accepts
  ``telemetry=None`` and guards its instrumentation with a single
  ``is not None and .enabled`` check, so results and performance are
  untouched when telemetry is off (``tools/bench_perf.py`` prices this
  at well under 2% on a batched FIG5 sweep, and the bit-identity suites
  run with telemetry both on and off).
* :class:`SchedulerUniformityObserver` — the Appendix A measurement
  turned on our own runs: it accumulates the empirical per-process step
  distribution (via the ``sim.run`` event every engine emits) and
  reports the total-variation distance from the uniform distribution
  plus a min/max fairness ratio, per process count.
* :func:`write_run_report` — a structured JSON run report combining a
  registry's metrics with an observer's uniformity verdict; surfaced on
  the CLI as ``--telemetry <path>``.

Instrumentation sites settle their counters at run/block granularity —
never per simulated step — so the engines' hot loops contain no
telemetry calls at all.  Nothing here consumes randomness or touches
control flow, which is what keeps the three execution engines
bit-identical with telemetry enabled or disabled.

Metric names are dotted strings grouped by component: ``sim.*`` (the
serial/batched executor), ``ensemble.*`` (the ensemble engine —
per-replicate counters plus ``ensemble.fused_blocks`` /
``ensemble.fused_replicates`` / ``ensemble.fused_steps`` from the fused
resolution path and the ``ensemble.shard_*`` group from multicore
sharding: ``shard_blocks`` / ``shard_replicates`` / ``shard_steps`` /
``shard_bytes`` counters plus a ``shard_workers`` gauge), ``executor.*``
(:class:`repro.core.runner.ResilientExecutor`), ``checkpoint.*``
(:class:`repro.core.checkpoint.SweepCheckpoint`), ``sweep.*``
(:func:`repro.core.sweep.latency_sweep` / :func:`parallel_sweep`),
``shm.*`` (the zero-copy dispatch buffers of :mod:`repro.core.shm` —
``shm.segments`` / ``shm.bytes`` created, ``shm.unlinked`` on cleanup,
``shm.fallbacks`` when ``dispatch="auto"`` degrades to pickle), and
``service.*`` (the sweep job daemon of :mod:`repro.service` —
``service.submitted`` / ``completed`` / ``failed`` / ``poisoned`` /
``cancelled`` job outcomes, ``service.dedupe_hits`` for submissions
answered by an existing job, ``service.memo_warm_points`` /
``service.recomputed_points`` for the point-level cache split,
``service.rejected`` admissions shed at the bounded queue,
``service.recovered_jobs`` re-queued after crash recovery, the
``service.ledger_*`` event counters, and ``service.queue_depth`` /
``service.jobs_running`` gauges; the daemon serves this registry's
:meth:`MetricsRegistry.report` at ``/metrics``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

#: Event emitted once per finished simulation run (any engine); the
#: payload carries ``engine``, ``n_processes``, ``steps``,
#: ``completions`` and the per-process ``step_counts`` list.
EVENT_RUN = "sim.run"

#: Event emitted by ``latency_sweep`` after each sweep point, with
#: ``n``, ``seconds`` and ``replicates``.
EVENT_SWEEP_POINT = "sweep.point"


class Histogram:
    """Streaming summary of an observed quantity (count/total/min/max).

    Deliberately a summary rather than a bucketed histogram: the
    observations instrumented here (span durations, per-point sweep
    times, backoff waits) are low-rate, and a four-number summary keeps
    the registry allocation-free per observation.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary; empty histograms report null min/max."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


class Span:
    """Context manager timing a block into a histogram.

    ``with registry.span("sweep.point_seconds"): ...`` observes the
    block's wall-clock duration (seconds) on exit, success or not.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._start)
        return False


class _NullSpan:
    """The reusable no-op span; one shared instance, zero allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Named counters, gauges, histograms, spans and event hooks.

    Thread-compatibility: a registry is owned by the orchestrating
    process (sweeps instrument coordination, not worker internals), so
    no locking is needed or provided.

    ``enabled`` is the single switch instrumented components check
    before doing any telemetry work; subclassing with ``enabled=False``
    (see :class:`NullMetricsRegistry`) turns every site into one boolean
    test.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._subscribers: Dict[str, List[Callable[[Dict[str, Any]], None]]] = {}

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def span(self, name: str) -> Union[Span, _NullSpan]:
        """A context manager timing its block into histogram ``name``."""
        return Span(self, name)

    # -- events ------------------------------------------------------------

    def subscribe(
        self, event: str, callback: Callable[[Dict[str, Any]], None]
    ) -> None:
        """Register ``callback(payload)`` for every :meth:`emit` of ``event``."""
        self._subscribers.setdefault(event, []).append(callback)

    def emit(self, event: str, payload: Dict[str, Any]) -> None:
        """Deliver ``payload`` to every subscriber of ``event``."""
        for callback in self._subscribers.get(event, ()):
            callback(payload)

    # -- reporting ---------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Everything recorded so far, as a JSON-serialisable dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }


class NullMetricsRegistry(MetricsRegistry):
    """The zero-overhead default: every method is a no-op.

    Instrumented components guard with ``telemetry is not None and
    telemetry.enabled``, so passing this registry (or ``None``) costs
    one boolean test per run — nothing is allocated, counted, or
    emitted, and :meth:`report` is always empty.
    """

    enabled = False

    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def subscribe(
        self, event: str, callback: Callable[[Dict[str, Any]], None]
    ) -> None:
        pass

    def emit(self, event: str, payload: Dict[str, Any]) -> None:
        pass


#: Shared no-op registry; pass where an always-callable registry is
#: wanted (``telemetry=None`` means the same thing everywhere).
NULL_TELEMETRY = NullMetricsRegistry()


class SchedulerUniformityObserver:
    """Appendix A's uniformity measurement, applied to our own runs.

    Accumulates the empirical per-process step distribution — per
    process count, since a sweep mixes runs of different ``n`` and the
    uniform reference depends on ``n`` — and reports:

    * the **total-variation distance** from the uniform distribution,
      ``0.5 * sum_i |share_i - 1/n|`` (0 for a perfectly uniform
      scheduler, approaching ``1 - 1/n`` for a monopolising adversary);
    * the **fairness ratio** ``min_i share_i / max_i share_i`` (1.0 when
      every process takes exactly its ``1/n`` of the steps, 0 when some
      process is starved of steps entirely).

    Attach to a registry with :meth:`attach` (it subscribes to the
    ``sim.run`` event every engine emits), or feed it step counts
    directly with :meth:`observe_counts` / :meth:`observe_recorder`.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, np.ndarray] = {}
        self.runs = 0

    def attach(self, registry: MetricsRegistry) -> "SchedulerUniformityObserver":
        """Subscribe to ``registry``'s ``sim.run`` events; returns self."""
        registry.subscribe(EVENT_RUN, self._on_run)
        return self

    def _on_run(self, payload: Dict[str, Any]) -> None:
        self.observe_counts(payload["step_counts"])

    def observe_counts(self, step_counts: Sequence[int]) -> None:
        """Accumulate one run's per-process step counts."""
        counts = np.asarray(step_counts, dtype=np.int64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("step_counts must be a non-empty 1-D sequence")
        n = int(counts.size)
        bucket = self._counts.get(n)
        if bucket is None:
            self._counts[n] = counts.copy()
        else:
            bucket += counts
        self.runs += 1

    def observe_recorder(self, recorder) -> None:
        """Accumulate a :class:`~repro.sim.TraceRecorder`'s step counts."""
        self.observe_counts(
            [recorder.steps[pid] for pid in range(recorder.n_processes)]
        )

    # -- statistics --------------------------------------------------------

    @property
    def n_values(self) -> List[int]:
        """The process counts observed so far, ascending."""
        return sorted(self._counts)

    def _bucket(self, n: Optional[int]) -> np.ndarray:
        if not self._counts:
            raise ValueError("no runs observed yet")
        if n is None:
            if len(self._counts) > 1:
                raise ValueError(
                    f"runs with several process counts observed "
                    f"({self.n_values}); pass n= to pick one"
                )
            n = next(iter(self._counts))
        counts = self._counts.get(n)
        if counts is None:
            raise ValueError(
                f"no runs with n={n} observed (have {self.n_values})"
            )
        return counts

    def distribution(self, n: Optional[int] = None) -> np.ndarray:
        """Empirical per-process step shares for process count ``n``."""
        counts = self._bucket(n)
        total = counts.sum()
        if total == 0:
            raise ValueError("observed runs contain no steps")
        return counts / total

    def total_variation_distance(self, n: Optional[int] = None) -> float:
        """TV distance between the empirical distribution and uniform."""
        shares = self.distribution(n)
        return float(0.5 * np.abs(shares - 1.0 / shares.size).sum())

    def fairness_ratio(self, n: Optional[int] = None) -> float:
        """``min share / max share``; 1.0 = perfectly fair, 0 = starved."""
        shares = self.distribution(n)
        return float(shares.min() / shares.max())

    def report(self) -> Dict[str, Any]:
        """Per-``n`` uniformity verdicts plus worst-case aggregates."""
        per_n = {}
        for n in self.n_values:
            per_n[str(n)] = {
                "steps": int(self._counts[n].sum()),
                "tv_distance": self.total_variation_distance(n),
                "fairness_ratio": self.fairness_ratio(n),
            }
        report: Dict[str, Any] = {"runs": self.runs, "per_n": per_n}
        if per_n:
            report["max_tv_distance"] = max(
                entry["tv_distance"] for entry in per_n.values()
            )
            report["min_fairness_ratio"] = min(
                entry["fairness_ratio"] for entry in per_n.values()
            )
        return report


def write_run_report(
    path: Union[str, Path],
    registry: MetricsRegistry,
    *,
    command: Optional[str] = None,
    observer: Optional[SchedulerUniformityObserver] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write a structured JSON run report; returns the report dict.

    The report combines the registry's metrics with (optionally) a
    uniformity observer's verdict and free-form ``extra`` context (CLI
    arguments, workload names).  The schema is versioned so downstream
    dashboards can evolve with it.

    Schema 2: ``extra`` lives under its own ``report["extra"]`` key.
    Schema 1 merged it into the top level, where a caller-supplied key
    could silently clobber ``schema``/``command`` and was in turn
    silently clobbered by the reserved ``metrics``/``uniformity`` keys.
    """
    report: Dict[str, Any] = {"schema": 2}
    if command is not None:
        report["command"] = command
    if extra:
        report["extra"] = dict(extra)
    report["metrics"] = registry.report()
    if observer is not None:
        report["uniformity"] = observer.report()
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return report
