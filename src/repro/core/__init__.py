"""The paper's primary contribution: stochastic schedulers, the
``SCU(q, s)`` class, progress guarantees, and latency analysis."""

from repro.core.analysis import (
    completion_rate_prediction,
    counter_individual_latency,
    counter_system_latency,
    counter_system_latency_asymptotic,
    min_to_max_progress_bound,
    parallel_individual_latency,
    parallel_system_latency,
    scu_individual_latency_bound,
    scu_system_latency_bound,
    scu_worst_case_system_latency,
    unbounded_winner_monopoly_probability,
    worst_case_completion_rate,
)
from repro.core.classify import (
    ProgressClassification,
    classify_progress,
    collision_lockstep,
)
from repro.core.latency import (
    LatencyMeasurement,
    completion_rate,
    individual_latencies,
    individual_latency,
    measure_latencies,
    measure_latencies_ensemble,
    resolve_vector_kernel,
    system_latency,
)
from repro.core.lifting import (
    verify_counter_lifting,
    verify_parallel_lifting,
    verify_scu_lifting,
)
from repro.core.progress import (
    ProgressReport,
    empirical_maximal_progress_bound,
    empirical_minimal_progress_bound,
    progress_report,
    starved_processes,
)
from repro.core.scheduler import (
    AdversarialScheduler,
    DistributionScheduler,
    HardwareLikeScheduler,
    LotteryScheduler,
    MarkovModulatedScheduler,
    Scheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.core.scu import SCU
from repro.core.sweep import SweepPoint, latency_sweep, parallel_sweep, sweep_table
from repro.core.tails import TailSummary, tail_summary
from repro.core.work import mean_work, measure_work

__all__ = [
    "SCU",
    "AdversarialScheduler",
    "DistributionScheduler",
    "HardwareLikeScheduler",
    "LatencyMeasurement",
    "LotteryScheduler",
    "MarkovModulatedScheduler",
    "ProgressClassification",
    "ProgressReport",
    "Scheduler",
    "SkewedStochasticScheduler",
    "SweepPoint",
    "TailSummary",
    "UniformStochasticScheduler",
    "classify_progress",
    "collision_lockstep",
    "completion_rate",
    "completion_rate_prediction",
    "counter_individual_latency",
    "counter_system_latency",
    "counter_system_latency_asymptotic",
    "empirical_maximal_progress_bound",
    "empirical_minimal_progress_bound",
    "individual_latencies",
    "individual_latency",
    "latency_sweep",
    "parallel_sweep",
    "mean_work",
    "measure_latencies",
    "measure_latencies_ensemble",
    "measure_work",
    "resolve_vector_kernel",
    "min_to_max_progress_bound",
    "parallel_individual_latency",
    "parallel_system_latency",
    "progress_report",
    "scu_individual_latency_bound",
    "scu_system_latency_bound",
    "scu_worst_case_system_latency",
    "starved_processes",
    "sweep_table",
    "system_latency",
    "tail_summary",
    "unbounded_winner_monopoly_probability",
    "verify_counter_lifting",
    "verify_parallel_lifting",
    "verify_scu_lifting",
    "worst_case_completion_rate",
]
