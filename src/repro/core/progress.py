"""Progress guarantees and their empirical detectors (Section 2.2).

The paper's hierarchy, for executions:

* **minimal progress** — in every suffix of the history, *some* pending
  active invocation gets a response;
* **maximal progress** — in every suffix, *every* pending active
  invocation gets a response;
* **bounded** variants — some/every invocation responds within a fixed
  window of ``B`` system steps.

Infinite properties cannot be decided from finite runs; the detectors
here report the *empirical bounds* a finite history exhibits —
``empirical_minimal_progress_bound`` (the largest system-wide response
gap while work was pending) and ``empirical_maximal_progress_bound``
(the largest per-invocation response time) — plus starvation evidence
(invocations pending for an entire long suffix).  Theorem 3's claim is
then checked quantitatively: under a stochastic scheduler the empirical
maximal bound stays finite and small, while under a starvation adversary
it grows linearly with the run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.sim.history import History


def empirical_minimal_progress_bound(history: History, end_time: int) -> int:
    """Largest stretch of steps with work pending but no response.

    This is the empirical version of the bound ``B`` in *bounded minimal
    progress*: over the recorded execution, some invocation completed
    within every window of this many steps (whenever any invocation was
    pending).  Returns 0 for a history with no pending work.
    """
    intervals = history.pending_intervals(end_time)
    if not intervals:
        return 0
    response_times = sorted(history.response_times())
    # Candidate gap starts: each invocation time and each response time
    # while something is pending afterwards.
    worst = 0
    events = sorted(
        {t for _, t, _ in intervals}
        | set(response_times)
    )
    for start in events:
        # Is something pending just after `start`?
        pending = any(
            invoke <= start and (respond is None or respond > start)
            for _, invoke, respond in intervals
        )
        if not pending:
            continue
        nxt = next((t for t in response_times if t > start), None)
        gap = (nxt if nxt is not None else end_time) - start
        worst = max(worst, gap)
    return worst


def empirical_maximal_progress_bound(history: History, end_time: int) -> int:
    """Largest response time of any single invocation (pending counted to
    ``end_time``) — the empirical bound ``B`` of *bounded maximal progress*.
    """
    worst = 0
    for _, invoke, respond in history.pending_intervals(end_time):
        finish = respond if respond is not None else end_time
        worst = max(worst, finish - invoke)
    return worst


def starved_processes(history: History, end_time: int, *, window: int) -> Set[int]:
    """Processes whose last ``window`` steps contain a pending invocation
    and no response — the empirical signature of starvation.

    ``window >= end_time`` means the window is the whole run: any
    process with a never-answered invocation is starved.  The cutoff is
    clamped to the first step (times are 1-based) so such invocations
    are not pushed outside a non-positive cutoff and missed.
    """
    cutoff = max(end_time - window, 1)
    starved: Set[int] = set()
    last_response: Dict[int, int] = {}
    for response in history.responses:
        last_response[response.pid] = response.time
    for pid, invoke, respond in history.pending_intervals(end_time):
        if respond is None and invoke <= cutoff:
            if last_response.get(pid, -1) <= cutoff:
                starved.add(pid)
    return starved


@dataclass(frozen=True)
class ProgressReport:
    """Summary of a run's empirical progress behaviour."""

    end_time: int
    total_responses: int
    minimal_bound: int
    maximal_bound: int
    starved: Set[int]

    @property
    def made_minimal_progress(self) -> bool:
        """Some operation completed, and no dead stretch spanned the run."""
        return self.total_responses > 0 and self.minimal_bound < self.end_time

    @property
    def made_maximal_progress(self) -> bool:
        """Every invocation completed within the run (nobody starved)."""
        return not self.starved


def progress_report(
    history: History, end_time: int, *, starvation_window: Optional[int] = None
) -> ProgressReport:
    """Compute all progress detectors at once."""
    if starvation_window is None:
        starvation_window = max(end_time // 2, 1)
    return ProgressReport(
        end_time=end_time,
        total_responses=len(history.responses),
        minimal_bound=empirical_minimal_progress_bound(history, end_time),
        maximal_bound=empirical_maximal_progress_bound(history, end_time),
        starved=starved_processes(history, end_time, window=starvation_window),
    )
