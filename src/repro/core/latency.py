"""Latency measurement (Section 2.4's complexity measures).

*System latency* is the expected number of system steps between
consecutive completions of any two invocations; *individual latency* is
the expected number of system steps between consecutive completions of
the *same* process.  The *completion rate* (Appendix B) is completions
per system step, i.e. the inverse of the system latency.

These estimators operate on a :class:`repro.sim.TraceRecorder` after a
run; :func:`measure_latencies` is the one-call convenience that builds a
simulator, runs it with a burn-in (so estimates reflect the stationary
regime the paper analyses), and reports everything at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory
from repro.sim.trace import TraceRecorder

RngLike = Union[int, np.random.Generator, None]


def system_latency(recorder: TraceRecorder, *, burn_in: int = 0) -> float:
    """Mean steps between consecutive completions (any process).

    ``burn_in`` drops completions at or before that time step, so the
    estimate reflects stationary behaviour.
    """
    times = np.asarray(recorder.completion_times, dtype=np.int64)
    times = times[times > burn_in]
    if times.size < 2:
        raise ValueError(
            f"need >= 2 completions after burn_in={burn_in} to estimate "
            f"system latency, got {times.size} "
            f"(n={recorder.n_processes}, steps={recorder.total_steps}); "
            "system latency grows with n, so increase steps or lower burn_in"
        )
    return float((times[-1] - times[0]) / (times.size - 1))


def individual_latency(
    recorder: TraceRecorder, pid: int, *, burn_in: int = 0
) -> float:
    """Mean steps between consecutive completions of one process."""
    times = recorder.completion_times_of(pid)
    times = times[times > burn_in]
    if times.size < 2:
        raise ValueError(
            f"process {pid} completed {times.size} times after "
            f"burn_in={burn_in}; need >= 2 "
            f"(n={recorder.n_processes}, steps={recorder.total_steps}); "
            "individual latency is ~n times the system latency, so "
            "increase steps or lower burn_in"
        )
    return float((times[-1] - times[0]) / (times.size - 1))


def individual_latencies(
    recorder: TraceRecorder, *, burn_in: int = 0
) -> Dict[int, float]:
    """Per-process individual latencies (processes with >= 2 completions)."""
    out: Dict[int, float] = {}
    for pid in range(recorder.n_processes):
        times = recorder.completion_times_of(pid)
        times = times[times > burn_in]
        if times.size >= 2:
            out[pid] = float((times[-1] - times[0]) / (times.size - 1))
    return out


def method_latencies(history, *, burn_in: int = 0) -> Dict[str, float]:
    """Mean steps between consecutive completions, per method name.

    The paper's Discussion raises "implementations which export several
    distinct methods"; this measures each method's own system latency
    (e.g. push vs pop of a stack) from a recorded history.
    """
    times_by_method: Dict[str, list] = {}
    for response in history.responses:
        if response.time > burn_in:
            times_by_method.setdefault(response.method, []).append(response.time)
    out: Dict[str, float] = {}
    for method, times in times_by_method.items():
        if len(times) >= 2:
            out[method] = float((times[-1] - times[0]) / (len(times) - 1))
    return out


def validate_burn_in(burn_in: Optional[int], steps: int) -> None:
    """Reject a burn-in that cannot leave any completions to measure.

    Called at every measurement entry point (``measure_latencies*``, the
    sweeps) so the mistake fails loudly up front instead of surfacing as
    a confusing "need >= 2 completions after burn_in" error at the end
    of a long run.  ``None`` (the ``steps // 10`` default) is always
    valid.
    """
    if burn_in is None:
        return
    if burn_in < 0:
        raise ValueError(f"burn_in must be non-negative, got {burn_in}")
    if burn_in >= steps:
        raise ValueError(
            f"burn_in={burn_in} must be < steps={steps}: every completion "
            "would fall inside the burn-in window, leaving nothing to "
            "measure"
        )


def _no_repeat_completion_error(
    n_processes: int, steps: int, burn_in: int
) -> ValueError:
    """The shared 'nothing completed twice' failure, with enough context
    to act on — the first wall users hit at large ``n``."""
    return ValueError(
        f"no process completed twice after burn_in={burn_in} "
        f"(n={n_processes}, steps={steps}); individual latency is "
        "~n times the system latency, so increase steps (or lower burn_in)"
    )


def completion_rate(recorder: TraceRecorder, total_steps: int) -> float:
    """Completions per system step over the whole run (Appendix B)."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    return recorder.total_completions / total_steps


@dataclass(frozen=True)
class LatencyMeasurement:
    """Everything :func:`measure_latencies` reports for one run."""

    n_processes: int
    steps: int
    burn_in: int
    total_completions: int
    system_latency: float
    individual: Dict[int, float]
    completion_rate: float

    @property
    def max_individual_latency(self) -> float:
        """The paper's individual latency: the max over processes."""
        return max(self.individual.values())

    @property
    def mean_individual_latency(self) -> float:
        """Average individual latency across processes."""
        return float(np.mean(list(self.individual.values())))

    @property
    def fairness_ratio(self) -> float:
        """``max individual / (n * system)`` — 1.0 when Lemma 7 holds."""
        return self.max_individual_latency / (self.n_processes * self.system_latency)


def measure_latencies(
    factory: ProcessFactory,
    scheduler,
    n_processes: int,
    steps: int,
    *,
    burn_in: Optional[int] = None,
    memory: Optional[Memory] = None,
    memory_factory: Optional[Callable[[], Memory]] = None,
    crash_times: Optional[Dict[int, int]] = None,
    rng: RngLike = None,
    batched: bool = False,
    telemetry=None,
) -> LatencyMeasurement:
    """Run a fresh simulation and measure its latencies.

    Parameters
    ----------
    factory:
        Process factory used for all processes (symmetric workload).
    scheduler:
        Scheduler instance.
    n_processes, steps:
        Run size.  ``burn_in`` defaults to ``steps // 10``.
    memory / memory_factory:
        Initial shared memory (instance, or a zero-argument builder so the
        same call can be repeated independently).
    crash_times:
        Forwarded to the simulator (Corollary 2 experiments).
    rng:
        Seed or generator for the run.
    batched:
        Drive the run through :meth:`Simulator.run_batched` (the
        trace-equivalent fast path) instead of the step-by-step executor.
        Same seed, same measurement — just faster.
    telemetry:
        Optional :class:`~repro.core.telemetry.MetricsRegistry`; the run
        reports its counters there.  ``None`` (the default) adds no
        overhead and never changes results.
    """
    if memory is not None and memory_factory is not None:
        raise ValueError("pass memory or memory_factory, not both")
    validate_burn_in(burn_in, steps)
    if burn_in is None:
        burn_in = steps // 10
    if memory_factory is not None:
        memory = memory_factory()
    simulator = Simulator(
        factory,
        scheduler,
        n_processes=n_processes,
        memory=memory,
        crash_times=crash_times,
        rng=rng,
        telemetry=telemetry,
    )
    result = simulator.run_batched(steps) if batched else simulator.run(steps)
    individual = individual_latencies(result.recorder, burn_in=burn_in)
    if not individual:
        raise _no_repeat_completion_error(n_processes, result.steps_executed, burn_in)
    return LatencyMeasurement(
        n_processes=n_processes,
        steps=result.steps_executed,
        burn_in=burn_in,
        total_completions=result.recorder.total_completions,
        system_latency=system_latency(result.recorder, burn_in=burn_in),
        individual=individual,
        completion_rate=completion_rate(result.recorder, result.steps_executed),
    )


def resolve_vector_kernel(factory_or_kernel) -> object:
    """The ensemble step kernel for a workload.

    Accepts either a kernel directly (anything exposing ``q``/``s``/
    ``commit``) or a process factory carrying one as ``vector_kernel``
    (factories from :func:`repro.algorithms.cas_counter` /
    :func:`repro.algorithms.scu_algorithm` do).  Raises a
    :class:`ValueError` naming the workload when neither applies, since
    the ensemble engine only resolves SCU-shaped workloads.
    """
    if hasattr(factory_or_kernel, "commit") and hasattr(factory_or_kernel, "q"):
        return factory_or_kernel
    kernel = getattr(factory_or_kernel, "vector_kernel", None)
    if kernel is None:
        raise ValueError(
            f"{factory_or_kernel!r} has no ensemble step kernel: the "
            "ensemble engine resolves SCU-shaped workloads only (factories "
            "from cas_counter()/scu_algorithm() with calls=None expose one "
            "as `.vector_kernel`); use batched=True for other workloads"
        )
    return kernel


def measure_latencies_ensemble(
    factory: ProcessFactory,
    scheduler_builder: Callable[[], object],
    n_processes: int,
    steps: int,
    seeds: Sequence[RngLike],
    *,
    burn_in: Optional[int] = None,
    memory_factory: Optional[Callable[[], Memory]] = None,
    crash_times: Optional[Dict[int, int]] = None,
    telemetry=None,
    fuse="auto",
    engine_kernel: str = "auto",
    max_workers=None,
) -> "List[LatencyMeasurement]":
    """Measure many independent replicates on the ensemble engine.

    One :class:`LatencyMeasurement` per seed, each bit-identical to
    ``measure_latencies(factory, scheduler_builder(), n_processes, steps,
    memory=memory_factory(), rng=seed, crash_times=crash_times,
    batched=True)`` — the replicates are resolved together as array
    operations instead of one simulation at a time (see
    :class:`repro.sim.EnsembleSimulator`).

    ``scheduler_builder`` and ``memory_factory`` are zero-argument
    builders because every replicate needs its *own* scheduler instance
    (stateful schedulers) and memory.  ``crash_times`` is the executor's
    ``{pid: time}`` halting-failure map, applied to every replicate
    (Corollary 2 experiments crash the same processes in each replicate
    and vary only the seed).  ``fuse``, ``engine_kernel`` and
    ``max_workers`` tune the resolution path (fused replicate stacking,
    compiled inner loops, sharding fused blocks across a worker pool —
    see :class:`~repro.sim.EnsembleSimulator`); results are bit-identical
    for every setting.
    """
    from repro.sim.ensemble import EnsembleReplicate, EnsembleSimulator

    validate_burn_in(burn_in, steps)
    kernel = resolve_vector_kernel(factory)
    replicates = [
        EnsembleReplicate(
            kernel=kernel,
            n_processes=n_processes,
            scheduler=scheduler_builder(),
            memory=memory_factory() if memory_factory is not None else None,
            rng=seed,
            crash_times=dict(crash_times) if crash_times else None,
        )
        for seed in seeds
    ]
    result = EnsembleSimulator(
        replicates,
        telemetry=telemetry,
        fuse=fuse,
        engine_kernel=engine_kernel,
        max_workers=max_workers,
    ).run(steps)
    return result.measurements(burn_in=burn_in)
