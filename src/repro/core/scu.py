"""The ``SCU(q, s)`` class descriptor — one object tying together the
runnable algorithm, the exact chains and the paper's predictions.

This is the library's front door for the paper's main result::

    spec = SCU(q=2, s=3)
    measured = spec.measure(n=16, steps=200_000, rng=0)
    predicted = spec.predicted_system_latency(16)
    exact = spec.exact_system_latency(4)     # small n only

"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.algorithms.scu import make_scu_memory, scu_algorithm
from repro.core.analysis import (
    scu_individual_latency_bound,
    scu_system_latency_bound,
    scu_worst_case_system_latency,
)
from repro.core.latency import LatencyMeasurement, measure_latencies
from repro.core.scheduler import Scheduler, UniformStochasticScheduler

RngLike = Union[int, np.random.Generator, None]


@dataclass(frozen=True)
class SCU:
    """An algorithm class member ``SCU(q, s)`` (Section 5).

    ``q`` preamble steps, ``s`` scan steps (including the decision-register
    read), one validating CAS per attempt.
    """

    q: int
    s: int

    def __post_init__(self) -> None:
        if self.q < 0:
            raise ValueError("q must be non-negative")
        if self.s < 1:
            raise ValueError("s must be at least 1")

    # -- runnable artifact -------------------------------------------------------

    def factory(self, *, calls: Optional[int] = None):
        """Process factory running this ``SCU(q, s)`` member."""
        return scu_algorithm(self.q, self.s, calls=calls)

    def memory(self):
        """Fresh shared memory with the decision/auxiliary registers."""
        return make_scu_memory(self.s)

    def measure(
        self,
        n: int,
        steps: int,
        *,
        scheduler: Optional[Scheduler] = None,
        burn_in: Optional[int] = None,
        rng: RngLike = None,
        batched: bool = False,
        telemetry=None,
    ) -> LatencyMeasurement:
        """Simulate ``n`` processes for ``steps`` steps and measure latencies.

        Defaults to the uniform stochastic scheduler, the model of
        Theorem 4.  ``batched=True`` uses the trace-equivalent fast path
        (:meth:`repro.sim.Simulator.run_batched`).
        """
        if scheduler is None:
            scheduler = UniformStochasticScheduler()
        return measure_latencies(
            self.factory(),
            scheduler,
            n,
            steps,
            burn_in=burn_in,
            memory=self.memory(),
            rng=rng,
            batched=batched,
            telemetry=telemetry,
        )

    # -- predictions ---------------------------------------------------------------

    def predicted_system_latency(self, n: int, *, alpha: float = 4.0) -> float:
        """Theorem 4: ``O(q + s sqrt(n))`` with constant ``alpha``."""
        return scu_system_latency_bound(self.q, self.s, n, alpha=alpha)

    def predicted_individual_latency(self, n: int, *, alpha: float = 4.0) -> float:
        """Theorem 4: ``O(n (q + s sqrt(n)))`` with constant ``alpha``."""
        return scu_individual_latency_bound(self.q, self.s, n, alpha=alpha)

    def worst_case_system_latency(self, n: int) -> float:
        """Adversarial worst case ``Theta(q + s n)``."""
        return scu_worst_case_system_latency(self.q, self.s, n)

    # -- exact chain answers ---------------------------------------------------------

    def exact_system_latency(self, n: int) -> float:
        """Exact stationary system latency from the full phase chain.

        Exponential in ``q + s`` via the histogram state space — small
        parameters only.
        """
        from repro.chains.scu import scu_full_system_latency_exact

        return scu_full_system_latency_exact(n, self.q, self.s)

    def exact_individual_latency(self, n: int) -> float:
        """Exact individual latency: ``n`` times the system latency (Lemma 7,
        whose lifting argument applies verbatim to the full phase chain
        since the code is symmetric in process ids)."""
        return n * self.exact_system_latency(n)

    def steps_per_attempt(self) -> int:
        """Scan plus CAS cost of one loop iteration: ``s + 1``."""
        return self.s + 1
