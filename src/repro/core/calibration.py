"""Calibrating the hardware-like scheduler to recorded schedules.

The paper justifies the uniform model by *statistics of recordings*
(Appendix A).  Given a schedule — recorded from real hardware via the
fetch-and-increment method, or from any source — these helpers compute
the statistics the model cares about and fit the
:class:`~repro.core.scheduler.HardwareLikeScheduler`'s quantum so the
synthetic scheduler reproduces the recording's burstiness.

Identifiability note: the scheduler's *jitter* parameters wash out of
long-run statistics by design (the weights mean-revert), so only the
quantum is fitted; fairness statistics validate the fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheduler import HardwareLikeScheduler


@dataclass(frozen=True)
class ScheduleStatistics:
    """The aggregate statistics of a recorded schedule.

    Attributes
    ----------
    n_processes, steps:
        Recording dimensions.
    share_spread:
        Max minus min per-process step share (Figure 3 flatness).
    empirical_theta:
        Smallest per-process share (weak-fairness estimate).
    self_succession:
        P(next step by the same process) — 1/n for the uniform model,
        higher for quantum schedulers (Figure 4's local statistic).
    mean_run_length:
        Average length of maximal same-process runs.
    """

    n_processes: int
    steps: int
    share_spread: float
    empirical_theta: float
    self_succession: float
    mean_run_length: float


def schedule_statistics(schedule: np.ndarray, n_processes: int) -> ScheduleStatistics:
    """Compute the calibration statistics of a schedule."""
    schedule = np.asarray(schedule)
    if schedule.size < 2:
        raise ValueError("schedule too short")
    shares = np.bincount(schedule, minlength=n_processes) / schedule.size
    same = schedule[:-1] == schedule[1:]
    runs = 1 + int(np.count_nonzero(~same))
    return ScheduleStatistics(
        n_processes=n_processes,
        steps=int(schedule.size),
        share_spread=float(shares.max() - shares.min()),
        empirical_theta=float(shares.min()),
        self_succession=float(same.mean()),
        mean_run_length=float(schedule.size / runs),
    )


def fit_mean_quantum(statistics: ScheduleStatistics) -> float:
    """Estimate the quantum from the observed mean run length.

    Quanta of geometric mean length M merge when the next quantum lands
    on the same process (probability ~ 1/n under near-uniform picks), so
    the observed run length is ~ M / (1 - 1/n); invert that.
    """
    n = statistics.n_processes
    if n < 2:
        raise ValueError("calibration needs at least two processes")
    quantum = statistics.mean_run_length * (1.0 - 1.0 / n)
    return max(1.0, float(quantum))


def fit_hardware_like(
    schedule: np.ndarray, n_processes: int
) -> HardwareLikeScheduler:
    """Fit a :class:`HardwareLikeScheduler` to a recorded schedule."""
    statistics = schedule_statistics(schedule, n_processes)
    return HardwareLikeScheduler(mean_quantum=fit_mean_quantum(statistics))


def calibration_report(
    original: ScheduleStatistics, regenerated: ScheduleStatistics
) -> dict:
    """Compare the statistics of the recording and the fitted scheduler's
    output; small relative errors mean the fit is usable."""
    def rel(a: float, b: float) -> float:
        denominator = max(abs(a), 1e-12)
        return abs(a - b) / denominator

    return {
        "mean_run_length_error": rel(
            original.mean_run_length, regenerated.mean_run_length
        ),
        "self_succession_error": rel(
            original.self_succession, regenerated.self_succession
        ),
        "share_spread_difference": abs(
            original.share_spread - regenerated.share_spread
        ),
    }
