"""Schedulers (Definition 1 of the paper).

A scheduler for ``n`` processes is a triple ``(Pi_tau, A_tau, theta)``: at
every time step ``tau`` it draws the next process from a distribution
``Pi_tau`` supported on the possibly-active set ``A_tau``; it is
*stochastic* when every active process has probability at least
``theta > 0`` in every step (weak fairness).

The executor (:class:`repro.sim.Simulator`) owns the active set ``A_tau``
(crash containment) and hands it to the scheduler, so a scheduler here is
just the ``Pi_tau`` part: ``select(time, active, rng) -> pid``, plus an
optional ``distribution(time, active)`` used by validation utilities and
exact analyses.

Batched selection (the ``BatchedScheduler`` protocol)
-----------------------------------------------------

The batched executor (:meth:`repro.sim.Simulator.run_batched`) asks for
blocks of scheduling decisions at once::

    select_batch(time, active, rng, size) -> int64 array of pids

with the contract that, for a fixed ``active`` set, the returned pids and
the RNG words consumed are *identical* to ``size`` sequential ``select``
calls at times ``time, time + 1, ...``.  The base class provides a
sequential fallback; :class:`UniformStochasticScheduler` and
:class:`SkewedStochasticScheduler` override it with vectorized draws, and
:class:`HardwareLikeScheduler` expands whole quantum runs per iteration.

Stateful schedulers additionally implement ``state_snapshot()`` /
``state_restore(snapshot)`` so the executor can rewind a partially
consumed block (a process finishing or a stop condition firing mid-block)
and replay exactly the consumed prefix, keeping batched runs
trace-equivalent to step-by-step runs.

Schedulers provided:

* :class:`UniformStochasticScheduler` — ``gamma_i = 1/|A_tau|``; the model
  under which the paper's latency bounds are proved.
* :class:`SkewedStochasticScheduler` / :class:`LotteryScheduler` — fixed
  positive weights; stochastic with ``theta = min weight share``.
* :class:`DistributionScheduler` — fully general ``Pi_tau`` given by a
  callable; validates Definition 1's well-formedness and weak fairness.
* :class:`AdversarialScheduler` — a deterministic strategy encoded as a
  distribution putting mass 1 on one process (``theta = 0``); includes the
  classic starvation adversaries used to show lock-free != wait-free.
* :class:`HardwareLikeScheduler` — the synthetic stand-in for the paper's
  hardware recordings (Appendix A): quantum-based runs with per-process
  speed jitter, near-uniform over long executions.
* :class:`EpsilonUniformScheduler` — a parameterized departure from
  uniform: ``(1 - epsilon) * uniform + epsilon * point mass``, giving a
  dial whose TV-distance from uniform is exactly ``epsilon * (1 - 1/n)``.
* :class:`ContentionScheduler` — a contention adversary (Bender et al.,
  arXiv:2604.14530 flavour): reweights toward processes whose pending
  operations target the same shared location, fed by the executor's
  :meth:`ContentionScheduler.observe_pending` hook.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np


class Scheduler(abc.ABC):
    """Interface every scheduler implements."""

    @abc.abstractmethod
    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        """Pick the process to schedule at ``time`` among ``active`` pids."""

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        """Pick ``size`` consecutive choices starting at ``time``.

        Must behave exactly like ``size`` sequential :meth:`select` calls
        (same pids, same RNG consumption) for a fixed ``active`` set.
        The default does exactly that; subclasses override with
        vectorized draws where the RNG stream provably matches.
        """
        out = np.empty(size, dtype=np.int64)
        for k in range(size):
            out[k] = self.select(time + k, active, rng)
        return out

    def state_snapshot(self):
        """Opaque snapshot of mutable scheduler state (``None`` if stateless).

        Together with :meth:`state_restore` this lets the batched executor
        rewind a block that was cut short and replay only its consumed
        prefix.  Stateful subclasses must override both methods.
        """
        return None

    def state_restore(self, snapshot) -> None:
        """Restore state captured by :meth:`state_snapshot`."""

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        """The distribution ``Pi_tau`` restricted to ``active``, if known.

        Subclasses that can state their per-step distribution override
        this; the default raises, since e.g. stateful schedulers may not
        have a closed form.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a per-step distribution"
        )

    def threshold(self, n_processes: int) -> float:
        """The weak-fairness threshold ``theta`` for ``n`` processes.

        Zero means the scheduler is not stochastic in the paper's sense
        (an adversary can be encoded).
        """
        return 0.0


class UniformStochasticScheduler(Scheduler):
    """Each active process is scheduled with probability ``1/|A_tau|``.

    This is the paper's refined model (Section 2.3): with no crashes,
    ``gamma_i = 1/n`` for every ``i`` and every ``tau``.
    """

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        return int(active[rng.integers(len(active))])

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        # rng.integers(n, size=k) consumes the bit stream element by
        # element, exactly like k scalar rng.integers(n) calls.
        indices = rng.integers(len(active), size=size)
        return np.asarray(active, dtype=np.int64)[indices]

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        share = 1.0 / len(active)
        return {pid: share for pid in active}

    def threshold(self, n_processes: int) -> float:
        return 1.0 / n_processes


class SkewedStochasticScheduler(Scheduler):
    """Fixed positive weights per process, renormalised over the active set.

    A stochastic scheduler with ``theta`` equal to the smallest weight
    share.  Used by the scheduler-sensitivity ablation (how far from
    uniform can the scheduler drift before the paper's latency shape
    degrades).
    """

    def __init__(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights <= 0):
            raise ValueError("all weights must be positive for a stochastic scheduler")
        self.weights = weights

    def _probabilities(self, active: Sequence[int]) -> np.ndarray:
        w = self.weights[list(active)]
        return w / w.sum()

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        probs = self._probabilities(active)
        return int(active[rng.choice(len(active), p=probs)])

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        # Generator.choice with p draws one uniform double and inverts the
        # cdf; a batch of rng.random(size) consumes the identical stream.
        probs = self._probabilities(active)
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        indices = cdf.searchsorted(rng.random(size), side="right")
        return np.asarray(active, dtype=np.int64)[indices]

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        probs = self._probabilities(active)
        return {pid: float(p) for pid, p in zip(active, probs)}

    def threshold(self, n_processes: int) -> float:
        if n_processes != self.weights.size:
            # Silently truncating weights[:n] used to report a theta for a
            # scheduler that select() would later IndexError on (or one
            # that ignores the surplus weights); both are configuration
            # errors and must be named, not papered over.
            raise ValueError(
                f"{type(self).__name__} has {self.weights.size} weights "
                f"but threshold() was asked about {n_processes} processes"
            )
        return float(self.weights.min() / self.weights.sum())


class LotteryScheduler(SkewedStochasticScheduler):
    """Lottery scheduling (Waldspurger-style, the paper's reference [19]).

    Each process holds a number of tickets; each step draws a ticket
    uniformly.  Equivalent to :class:`SkewedStochasticScheduler` with
    integer weights, provided as its own type because lottery scheduling
    is the practical system the paper cites as a deployed randomized
    scheduler.
    """

    def __init__(self, tickets: Sequence[int]) -> None:
        tickets_arr = np.asarray(tickets)
        if tickets_arr.size and not np.issubdtype(tickets_arr.dtype, np.integer):
            raise ValueError("lottery tickets must be integers")
        super().__init__(tickets_arr.astype(float))


class DistributionScheduler(Scheduler):
    """The fully general ``Pi_tau`` of Definition 1.

    Parameters
    ----------
    pi:
        ``pi(time, active) -> mapping pid -> probability``.  Probabilities
        must be supported on ``active`` (crash condition), sum to 1
        (well-formedness) and, for the scheduler to be stochastic, be at
        least ``theta`` on every active pid (weak fairness).
    theta:
        The claimed threshold; validated on every step when ``validate``.
    validate:
        Check Definition 1's conditions each step (default on; turn off in
        hot loops once a scheduler is trusted).
    """

    def __init__(
        self,
        pi: Callable[[int, Sequence[int]], Mapping[int, float]],
        *,
        theta: float = 0.0,
        validate: bool = True,
    ) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must lie in [0, 1]")
        self._pi = pi
        self._theta = theta
        self._validate = validate

    def _checked(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        dist = dict(self._pi(time, active))
        if self._validate:
            unknown = set(dist) - set(active)
            if any(dist[pid] > 0 for pid in unknown):
                raise ValueError(
                    f"Pi_{time} puts mass on non-active processes {sorted(unknown)}"
                )
            total = sum(dist.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"Pi_{time} sums to {total}, violating well-formedness")
            if self._theta > 0:
                for pid in active:
                    if dist.get(pid, 0.0) < self._theta - 1e-12:
                        raise ValueError(
                            f"Pi_{time} gives process {pid} probability "
                            f"{dist.get(pid, 0.0)} < theta={self._theta}"
                        )
        return dist

    #: Accepted drift of ``sum(Pi_tau)`` from 1 before a distribution is
    #: rejected as ill-formed even with ``validate=False`` (float round-off
    #: from summing many probabilities, not modelling error).
    SUM_TOLERANCE = 1e-9

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        dist = self._checked(time, active)
        pids = list(dist)
        probs = np.array([dist[pid] for pid in pids])
        total = probs.sum()
        if abs(total - 1.0) > self.SUM_TOLERANCE:
            # validate=False skips the Definition 1 checks for speed, but an
            # ill-formed Pi_tau must never be silently renormalised away.
            raise ValueError(
                f"Pi_{time} sums to {total}, violating well-formedness"
            )
        probs = probs / total
        return int(pids[rng.choice(len(pids), p=probs)])

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        return self._checked(time, active)

    def threshold(self, n_processes: int) -> float:
        return self._theta


class _RotationStrategy:
    """Pid-stable rotation over the active set.

    Remembers the last pid it scheduled and picks the smallest active pid
    strictly greater than it (wrapping around), so a crash removes exactly
    its own pid from the cycle.  Indexing the active *list* by time — the
    previous implementation — shifts every later process's slot whenever
    the list shrinks, silently skipping or double-scheduling pids after a
    crash.

    ``avoid`` (the starvation victim) is only returned when it is the sole
    active process; scheduling it then does not advance the rotation.
    """

    def __init__(self, avoid: Optional[int] = None) -> None:
        self.avoid = avoid
        self.last = -1

    def peek(self, time: int, active: Sequence[int]) -> int:
        """The pid :meth:`__call__` would return, without advancing."""
        candidates = [pid for pid in active if pid != self.avoid]
        if not candidates:
            return active[0]
        later = [pid for pid in candidates if pid > self.last]
        return min(later) if later else min(candidates)

    def state_snapshot(self) -> int:
        return self.last

    def state_restore(self, snapshot: int) -> None:
        self.last = snapshot

    def __call__(self, time: int, active: Sequence[int]) -> int:
        pid = self.peek(time, active)
        if pid != self.avoid:
            self.last = pid
        return pid


class _SpoilerStrategy:
    """The alternating-spoiler schedule with pid-stable spoiler rotation.

    Two victim steps (read + CAS attempt), then one spoiler step drawn
    from a pid-stable rotation over the other processes.  When the victim
    has crashed, the *same* rotation keeps cycling the survivors — the
    previous closure pinned ``others[0]`` for the victim's two slots,
    monopolising one survivor and (because ``others`` reindexes on every
    crash) changing which pid that was whenever the active set shrank.
    """

    def __init__(self, victim: int) -> None:
        self.victim = victim
        self._rotation = _RotationStrategy(avoid=victim)

    def _is_victim_slot(self, time: int, active: Sequence[int]) -> bool:
        return (time - 1) % 3 < 2 and self.victim in active

    def peek(self, time: int, active: Sequence[int]) -> int:
        """The pid :meth:`__call__` would return, without advancing."""
        others = [pid for pid in active if pid != self.victim]
        if not others:
            return self.victim
        if self._is_victim_slot(time, active):
            return self.victim
        return self._rotation.peek(time, active)

    def state_snapshot(self) -> int:
        return self._rotation.state_snapshot()

    def state_restore(self, snapshot: int) -> None:
        self._rotation.state_restore(snapshot)

    def __call__(self, time: int, active: Sequence[int]) -> int:
        others = [pid for pid in active if pid != self.victim]
        if not others:
            return self.victim
        if self._is_victim_slot(time, active):
            return self.victim
        return self._rotation(time, active)


class AdversarialScheduler(Scheduler):
    """A worst-case adversary encoded as a degenerate distribution.

    As Section 2.3 notes, any classic asynchronous adversary corresponds to
    ``Pi_tau`` putting probability 1 on the adversary's choice; the
    threshold is 0, so none of the stochastic guarantees apply — these
    schedulers exist to *witness* the gap between lock-freedom and
    wait-freedom in tests and benchmarks.

    Strategies may be stateful: a strategy object exposing ``peek(time,
    active)`` is consulted for :meth:`distribution` (which must not advance
    the state), and ``state_snapshot``/``state_restore`` are forwarded for
    batched-execution rewinds.
    """

    def __init__(self, strategy: Callable[[int, Sequence[int]], int]) -> None:
        self._strategy = strategy

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        pid = self._strategy(time, active)
        if pid not in active:
            raise ValueError(
                f"adversary chose inactive process {pid} at t={time}"
            )
        return int(pid)

    def state_snapshot(self):
        snapshot = getattr(self._strategy, "state_snapshot", None)
        return None if snapshot is None else snapshot()

    def state_restore(self, snapshot) -> None:
        restore = getattr(self._strategy, "state_restore", None)
        if restore is not None:
            restore(snapshot)

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        peek = getattr(self._strategy, "peek", None)
        if peek is not None:
            pid = peek(time, active)
        elif getattr(self._strategy, "state_snapshot", None) is not None:
            # Calling a stateful strategy here would advance its rotation
            # state mid-query, desyncing the batched executor's rewinds.
            raise NotImplementedError(
                f"stateful strategy {type(self._strategy).__name__} lacks "
                "peek(); distribution() would advance its state"
            )
        else:
            pid = self._strategy(time, active)
        return {p: (1.0 if p == pid else 0.0) for p in active}

    @classmethod
    def round_robin(cls) -> "AdversarialScheduler":
        """Cycle through the active processes in pid order.

        The rotation is pid-stable: after a crash the surviving processes
        keep their relative order and none is skipped or double-scheduled.
        """
        return cls(_RotationStrategy())

    @classmethod
    def starve(cls, victim: int) -> "AdversarialScheduler":
        """Never schedule ``victim`` unless it is the only active process.

        Against any lock-free (but not wait-free) algorithm this keeps the
        victim's invocation pending forever while the system still makes
        minimal progress.  The non-victim rotation is pid-stable under
        crashes, like :meth:`round_robin`.
        """
        return cls(_RotationStrategy(avoid=victim))

    @classmethod
    def alternating_spoiler(cls, victim: int) -> "AdversarialScheduler":
        """Let ``victim`` run just until it is about to commit, then let one
        other process steal the commit.

        A time-based approximation of the classic CAS-spoiling adversary:
        the victim gets scheduled in bursts but another process is always
        interleaved, so in scan-validate algorithms the victim's CAS keeps
        failing.  Exact spoiling (state-aware) is provided by tests that
        drive the simulator step by step.
        """
        return cls(_SpoilerStrategy(victim))


class MarkovModulatedScheduler(Scheduler):
    """A stochastic scheduler whose bias evolves through hidden regimes.

    Real interference is *time-correlated*: an interrupt storm or a
    co-scheduled job parks on one core for a while, then moves on.  This
    scheduler holds a hidden regime r (one per process, plus a neutral
    regime); within regime r process r's weight is divided by
    ``slowdown`` while the regime persists (geometric duration with mean
    ``mean_dwell``); regimes switch to a uniformly random one.

    The scheduler stays stochastic — every process keeps probability at
    least ``theta = 1 / (slowdown * (n - 1) + 1)`` each step (the slowed
    process's share ``(1/slowdown) / (n - 1 + 1/slowdown)``) — but its choices
    are correlated across time, unlike every Pi_tau model the paper
    analyses.  The tests check the paper's *long-run* predictions
    survive this (latency within a modest factor of the uniform model,
    everyone completes), exhibiting the robustness the Discussion hopes
    for.
    """

    def __init__(
        self, *, slowdown: float = 4.0, mean_dwell: float = 200.0
    ) -> None:
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        if mean_dwell < 1.0:
            raise ValueError("mean_dwell must be >= 1")
        self.slowdown = slowdown
        self.mean_dwell = mean_dwell
        self._regime: Optional[int] = None  # pid being slowed, or None
        self._remaining = 0

    def _advance_regime(
        self, active: Sequence[int], rng: np.random.Generator
    ) -> None:
        if self._remaining > 0 and (
            self._regime is None or self._regime in active
        ):
            self._remaining -= 1
            return
        # Pick a new regime: neutral or one slowed process.
        choices = [None] + list(active)
        self._regime = choices[int(rng.integers(len(choices)))]
        self._remaining = int(rng.geometric(1.0 / self.mean_dwell))

    def _weights(self, active: Sequence[int]) -> np.ndarray:
        weights = np.ones(len(active))
        if self._regime is not None:
            for position, pid in enumerate(active):
                if pid == self._regime:
                    weights[position] = 1.0 / self.slowdown
        return weights / weights.sum()

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        self._advance_regime(active, rng)
        probs = self._weights(active)
        return int(active[rng.choice(len(active), p=probs)])

    def state_snapshot(self):
        return (self._regime, self._remaining)

    def state_restore(self, snapshot) -> None:
        self._regime, self._remaining = snapshot

    def threshold(self, n_processes: int) -> float:
        return float(
            (1.0 / self.slowdown)
            / (n_processes - 1 + 1.0 / self.slowdown)
        )


class HardwareLikeScheduler(Scheduler):
    """Synthetic stand-in for the paper's hardware schedule recordings.

    The paper's Appendix A records schedules on a real multicore and finds
    (i) long-run fairness — every thread takes about ``1/n`` of the steps
    (Figure 3) — and (ii) local near-uniformity — after a step of ``p_i``,
    every thread is roughly equally likely to step next (Figure 4).

    We model the mechanisms that produce those statistics rather than the
    statistics themselves: threads run in *quanta* (geometrically
    distributed run lengths, modelling timeslices and cache residency),
    quantum boundaries hand off to a thread drawn by current *speed
    weights*, and the weights jitter slowly around 1 (modelling frequency
    scaling, interrupts and contention noise).  With the default
    parameters the long-run statistics reproduce Figures 3-4; the quantum
    length knob lets the ablation benchmarks explore how burstiness
    affects the latency predictions.
    """

    def __init__(
        self,
        *,
        mean_quantum: float = 1.5,
        jitter: float = 0.1,
        jitter_rate: float = 0.01,
    ) -> None:
        if mean_quantum < 1.0:
            raise ValueError("mean_quantum must be >= 1 (a run has >= 1 step)")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if not 0.0 < jitter_rate <= 1.0:
            raise ValueError("jitter_rate must lie in (0, 1]")
        self.mean_quantum = mean_quantum
        self.jitter = jitter
        self.jitter_rate = jitter_rate
        self._current: Optional[int] = None
        self._remaining = 0
        self._weights: Dict[int, float] = {}

    def _weight(self, pid: int, rng: np.random.Generator) -> float:
        weight = self._weights.get(pid)
        if weight is None:
            weight = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            self._weights[pid] = weight
        return weight

    def _rejitter(self, active: Sequence[int], rng: np.random.Generator) -> None:
        # Mean-reverting nudge toward 1 with fresh noise: an AR(1) walk.
        for pid in active:
            weight = self._weight(pid, rng)
            noise = self.jitter * (2.0 * rng.random() - 1.0)
            self._weights[pid] = weight + self.jitter_rate * (1.0 - weight) + \
                self.jitter_rate * noise

    def _start_quantum(
        self, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        self._rejitter(active, rng)
        weights = np.array([self._weight(pid, rng) for pid in active])
        weights = np.clip(weights, 1e-6, None)
        probs = weights / weights.sum()
        pid = int(active[rng.choice(len(active), p=probs)])
        # Geometric run length with mean mean_quantum (support >= 1).
        continue_p = 1.0 - 1.0 / self.mean_quantum
        self._remaining = int(rng.geometric(1.0 - continue_p)) - 1
        self._current = pid
        return pid

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        if self._current in active and self._remaining > 0:
            self._remaining -= 1
            return self._current
        return self._start_quantum(active, rng)

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        # Quantum continuations consume no RNG, so a whole remaining run
        # can be emitted in one slice; only quantum boundaries run the
        # scalar draw path.  RNG consumption matches select() exactly.
        out = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            if self._remaining > 0 and self._current in active:
                take = min(self._remaining, size - filled)
                out[filled : filled + take] = self._current
                self._remaining -= take
                filled += take
            else:
                out[filled] = self._start_quantum(active, rng)
                filled += 1
        return out

    def state_snapshot(self):
        return (self._current, self._remaining, dict(self._weights))

    def state_restore(self, snapshot) -> None:
        current, remaining, weights = snapshot
        self._current = current
        self._remaining = remaining
        self._weights = dict(weights)


class EpsilonUniformScheduler(Scheduler):
    """Controlled departure from uniform: ``(1-eps)·uniform + eps·point mass``.

    The dial for the "where does practically-wait-free break?" sweeps: at
    ``epsilon = 0`` this is exactly :class:`UniformStochasticScheduler`;
    at ``epsilon = 1`` it is a monopolising adversary.  With every process
    active, its total-variation distance from uniform is exactly
    ``epsilon * (1 - 1/n)``, so a sweep over ``epsilon`` produces a
    controlled, closed-form departure curve to plot latency against.

    The extra mass lands on ``favored``; when that process has crashed it
    falls back pid-stably to the smallest active pid (never an index into
    the shrinking active list).
    """

    def __init__(self, epsilon: float, *, favored: int = 0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        if favored < 0:
            raise ValueError("favored must be a valid pid (>= 0)")
        self.epsilon = float(epsilon)
        self.favored = int(favored)

    def _favored_in(self, active: Sequence[int]) -> int:
        return self.favored if self.favored in active else min(active)

    def _probabilities(self, active: Sequence[int]) -> np.ndarray:
        n = len(active)
        probs = np.full(n, (1.0 - self.epsilon) / n)
        target = self._favored_in(active)
        for position, pid in enumerate(active):
            if pid == target:
                probs[position] += self.epsilon
                break
        return probs

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        probs = self._probabilities(active)
        return int(active[rng.choice(len(active), p=probs)])

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        # Same cdf-inversion equivalence as SkewedStochasticScheduler:
        # stateless, so a fixed active set fixes the cdf for the block.
        probs = self._probabilities(active)
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        indices = cdf.searchsorted(rng.random(size), side="right")
        return np.asarray(active, dtype=np.int64)[indices]

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        probs = self._probabilities(active)
        return {pid: float(p) for pid, p in zip(active, probs)}

    def threshold(self, n_processes: int) -> float:
        return (1.0 - self.epsilon) / n_processes


class ContentionScheduler(Scheduler):
    """A contention adversary: extra mass on processes fighting over one spot.

    Bender et al. (arXiv:2604.14530) motivate adversaries that concentrate
    scheduling mass on *conflicting* processes — exactly the schedules
    that make lock-free retry loops spin.  This scheduler weights each
    active process ``focus`` when its pending operation targets a shared
    memory location that at least one other pending operation also
    targets, and ``1.0`` otherwise, renormalised over the active set.

    Contention state is fed **only** through :meth:`observe_pending` — an
    executor hook called before a scheduling decision — never from inside
    :meth:`select`.  That split is what keeps the batched contract
    trivially true: for a fixed active set and a fixed contending set,
    :meth:`select_batch` consumes the identical RNG stream as sequential
    :meth:`select` calls.  (The executor runs this scheduler with block
    size 1 so the hook fires before every step on both engines.)

    The scheduler remains stochastic: every active process keeps share at
    least ``theta = 1 / (1 + focus * (n - 1))``.  Crash containment is
    pid-stable — contending membership is a set of pids, so a crash
    removes exactly its own pid from consideration (a stale contending
    pid outside the active set is simply never weighted).
    """

    def __init__(self, *, focus: float = 4.0) -> None:
        if focus < 1.0:
            raise ValueError("focus must be >= 1 (1.0 degenerates to uniform)")
        self.focus = float(focus)
        self._contending: frozenset = frozenset()

    def observe_pending(self, pending: Mapping[int, Optional[str]]) -> None:
        """Executor hook: ``pending`` maps pid -> register of its pending op.

        A ``None`` register (no pending operation, or a zero-cost marker)
        never contends.  Processes sharing a register with at least one
        other process form the contending set until the next observation.
        """
        groups: Dict[str, List[int]] = {}
        for pid, register in pending.items():
            if register is not None:
                groups.setdefault(register, []).append(pid)
        self._contending = frozenset(
            pid
            for pids in groups.values()
            if len(pids) >= 2
            for pid in pids
        )

    def _probabilities(self, active: Sequence[int]) -> np.ndarray:
        weights = np.array(
            [self.focus if pid in self._contending else 1.0 for pid in active]
        )
        return weights / weights.sum()

    def select(
        self, time: int, active: Sequence[int], rng: np.random.Generator
    ) -> int:
        probs = self._probabilities(active)
        return int(active[rng.choice(len(active), p=probs)])

    def select_batch(
        self,
        time: int,
        active: Sequence[int],
        rng: np.random.Generator,
        size: int,
    ) -> np.ndarray:
        # Valid because the contending set can only change through
        # observe_pending, which the executor calls between blocks.
        probs = self._probabilities(active)
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        indices = cdf.searchsorted(rng.random(size), side="right")
        return np.asarray(active, dtype=np.int64)[indices]

    def distribution(self, time: int, active: Sequence[int]) -> Dict[int, float]:
        probs = self._probabilities(active)
        return {pid: float(p) for pid, p in zip(active, probs)}

    def state_snapshot(self):
        return self._contending

    def state_restore(self, snapshot) -> None:
        self._contending = snapshot

    def threshold(self, n_processes: int) -> float:
        return 1.0 / (1.0 + self.focus * (n_processes - 1))


def scheduler_chain_distribution(
    scheduler: Scheduler, n_processes: int
) -> np.ndarray:
    """The time-invariant per-step distribution of a stateless scheduler
    over the full active set, as an array indexed by pid.

    Raises for schedulers without a closed-form distribution.
    """
    active = list(range(n_processes))
    dist = scheduler.distribution(1, active)
    return np.array([dist.get(pid, 0.0) for pid in active])
