"""Work / total step complexity (Section 2.4).

Classic analysis measures *work*: the number of system steps for all
correct processes to complete a task together.  The stochastic analogue
here: the expected number of system steps until every process has
completed ``k`` operations.

For ``SCU(0, s)`` under the uniform scheduler the interesting comparison
is against ``n`` times the individual latency: fairness (Lemma 7) makes
the processes finish nearly together, so the work for one operation each
is close to the *individual* latency ``n W`` rather than the naive
``n x (n W)`` — a strong, measurable consequence of the paper's
fairness result.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.process import ProcessFactory

RngLike = Union[int, np.random.Generator, None]


def measure_work(
    factory: ProcessFactory,
    scheduler,
    n_processes: int,
    *,
    operations_each: int = 1,
    memory: Optional[Memory] = None,
    max_steps: int = 10_000_000,
    rng: RngLike = None,
) -> int:
    """System steps until every process completes ``operations_each`` ops.

    Raises :class:`ArithmeticError` if the task does not finish within
    ``max_steps`` (e.g. under a starvation adversary).
    """
    if operations_each < 1:
        raise ValueError("operations_each must be positive")
    simulator = Simulator(
        factory,
        scheduler,
        n_processes=n_processes,
        memory=memory,
        record_completion_times=False,
        rng=rng,
    )
    for _ in range(max_steps):
        if simulator.step() is None:
            break
        if all(
            process.completions >= operations_each
            for process in simulator.processes
        ):
            return simulator.time
    if all(
        process.completions >= operations_each
        for process in simulator.processes
    ):
        return simulator.time
    raise ArithmeticError(
        f"task unfinished after {max_steps} steps "
        f"(completions: {[p.completions for p in simulator.processes]})"
    )


def mean_work(
    factory_builder: Callable[[], ProcessFactory],
    scheduler_builder: Callable[[], object],
    n_processes: int,
    *,
    operations_each: int = 1,
    memory_builder: Optional[Callable[[], Memory]] = None,
    repeats: int = 10,
    max_steps: int = 10_000_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo mean of :func:`measure_work` over fresh replicates."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    total = 0
    for r in range(repeats):
        total += measure_work(
            factory_builder(),
            scheduler_builder(),
            n_processes,
            operations_each=operations_each,
            memory=memory_builder() if memory_builder else None,
            max_steps=max_steps,
            rng=(seed, r),
        )
    return total / repeats
