"""Fault-tolerant chunked execution for sweeps.

:class:`ResilientExecutor` runs a worker function over a list of task
keys on a process pool and absorbs the orchestration-level failures the
pool itself does not: a worker raising, a worker killed (OOM, SIGKILL —
surfacing as :class:`~concurrent.futures.process.BrokenProcessPool`), a
worker hanging past a per-chunk deadline, and the pool refusing to come
back up at all.  The recovery ladder, in order:

1. **Retry with backoff** — a failed or timed-out chunk is re-submitted
   up to ``max_retries`` times, after a capped exponential delay with
   *deterministic* jitter (seeded from the chunk key and attempt, so two
   runs of the same sweep back off identically and retrying chunks fan
   out instead of stampeding — the bounded randomized backoff discipline
   of the wait-free-locks line of work).
2. **Poison isolation** — a chunk that exhausts its retries is split
   into single-task units, each with a fresh retry budget, so one bad
   task cannot take its chunk-mates down with it; a *single* task that
   still fails raises :class:`TaskError` naming the task key.
3. **Pool rebuild** — a broken or deadline-blown pool is terminated and
   rebuilt; in-flight chunks are re-queued (the timed-out/broken ones
   with a retry charged, innocent bystanders for free).
4. **Graceful degradation** — after ``fallback_after`` *consecutive*
   pool breakages (a broken pool, or one that refuses to start — *not*
   deadline kills, which are self-inflicted terminations of a healthy
   pool) the executor stops fighting the pool and runs the remaining
   work serially in-process (same retry/poison semantics, minus
   preemption — serial mode has no deadline, which is exactly why hangs
   must never be what sends the executor there).

None of this can change results: tasks are pure deterministic work, so
a retry recomputes exactly the bytes the first attempt would have
produced.  The hot path — replicate execution inside the workers — is
untouched; only the coordination layer absorbs the faults.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np


class TaskError(RuntimeError):
    """A single task failed every retry; ``key`` names the poison task."""

    def __init__(self, key: Hashable, cause: BaseException):
        super().__init__(
            f"task {key!r} failed after exhausting retries: "
            f"{type(cause).__name__}: {cause}"
        )
        self.key = key
        self.cause = cause


def available_cpu_count() -> int:
    """CPUs actually available to this process, not merely present.

    ``os.cpu_count()`` reports the machine; in cgroup/affinity-limited
    environments (CI runners, containers, ``taskset``) the process may
    be pinned to far fewer cores, and sizing a pool from the machine
    count oversubscribes them.  ``os.sched_getaffinity`` reports the
    real allowance where the platform supports it (Linux); elsewhere
    fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def default_shard_workers() -> int:
    """Worker count for sharded fused resolution, oversubscription-safe.

    When fused resolution runs inside a pool worker — a
    ``parallel_sweep`` point that itself builds an ensemble — spawning a
    nested shard pool would multiply the outer pool's worker count by
    the core count.  ``multiprocessing.parent_process()`` is non-None
    exactly in child processes, so nested callers get 1 (resolve
    in-process) and top-level callers get the real CPU allowance.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        return 1
    return available_cpu_count()


def _stable_seed(key: Hashable, attempt: int) -> int:
    """A process-stable seed for the backoff jitter (``hash()`` is salted
    per interpreter; CRC32 of the repr is not)."""
    return zlib.crc32(repr((key, attempt)).encode("utf-8"))


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the recovery ladder (see the module docstring)."""

    #: Re-submissions per unit before splitting (chunks) or giving up
    #: (single tasks).
    max_retries: int = 3
    #: First backoff delay, seconds; attempt ``k`` waits up to
    #: ``base_delay * 2**(k-1)``, capped at ``max_delay``.
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Per-chunk wall-clock deadline, seconds; ``None`` disables hang
    #: detection (a chunk may then run forever).  The clock starts at
    #: submission, but chunks are only submitted up to pool capacity,
    #: so submission is (to within scheduling noise) execution start.
    timeout: Optional[float] = None
    #: Consecutive pool *breakages* before degrading to in-process
    #: serial execution for the remaining tasks.  Deadline-driven pool
    #: kills do not count: serial mode cannot preempt a hang, so a
    #: persistently hanging task must exhaust its retries and raise
    #: :class:`TaskError` rather than fall back.
    fallback_after: int = 3

    def backoff_delay(self, key: Hashable, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        The delay for ``(key, attempt)`` is the same every time it is
        computed — reruns of a sweep back off identically — while
        different keys jitter apart within ``[cap/2, cap]``.
        """
        cap = min(self.max_delay, self.base_delay * 2 ** max(0, attempt - 1))
        rng = np.random.default_rng(_stable_seed(key, attempt))
        return cap / 2 + rng.uniform(0, cap / 2)

    def to_dict(self) -> Dict[str, Optional[float]]:
        """A JSON-safe snapshot (the sweep service journals its policy)."""
        return {
            "max_retries": self.max_retries,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "timeout": self.timeout,
            "fallback_after": self.fallback_after,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Optional[float]]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output (strict keys)."""
        known = {
            "max_retries",
            "base_delay",
            "max_delay",
            "timeout",
            "fallback_after",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown RetryPolicy fields: {sorted(unknown)}"
            )
        return cls(**payload)


@dataclass
class RunStats:
    """What the executor had to do to finish a run."""

    retries: int = 0
    splits: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    fell_back_serial: bool = False
    #: Total seconds spent sleeping in retry backoff.
    backoff_seconds: float = 0.0


def _terminate_pool(pool) -> None:
    """Kill a pool that may contain hung or dying workers.

    ``ProcessPoolExecutor`` has no public kill switch, so the worker
    processes are terminated through the executor's process table when
    it is available (best-effort — a missing attribute just means we
    fall through to ``shutdown``, leaking the hung worker until it
    finishes on its own).
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class ResilientExecutor:
    """Run ``worker_fn(keys, *args) -> list`` over a pool, surviving faults.

    ``worker_fn`` receives a list of task keys plus ``args`` and must
    return one result per key, in order; it must be picklable
    (module-level).  Results are collected into a ``{key: result}`` dict
    — completion *order* is scheduling, never semantics, so retries and
    rebuilds cannot affect what is returned.

    ``pool_factory`` exists for fault injection (see
    :mod:`repro.testing.chaos`); it must accept a ``max_workers``
    keyword and return a ``ProcessPoolExecutor``-shaped object.
    """

    def __init__(
        self,
        worker_fn: Callable[..., List],
        *,
        max_workers: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        pool_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
        sleep: Callable[[float], None] = time.sleep,
        telemetry=None,
    ):
        self._worker_fn = worker_fn
        self.max_workers = (
            max_workers if max_workers is not None else available_cpu_count()
        )
        self.policy = policy if policy is not None else RetryPolicy()
        self._pool_factory = (
            pool_factory if pool_factory is not None else ProcessPoolExecutor
        )
        self._sleep = sleep
        self.telemetry = telemetry
        self.stats = RunStats()

    def default_chunk_size(self, n_tasks: int) -> int:
        """Roughly four chunks per worker, computed from public config
        (never from pool internals)."""
        return max(1, -(-n_tasks // (self.max_workers * 4)))

    def run(
        self,
        tasks: Sequence[Hashable],
        args: Tuple = (),
        *,
        chunk_size: Optional[int] = None,
        on_result: Optional[Callable[[Hashable, object], None]] = None,
        collect: bool = True,
    ) -> Dict[Hashable, object]:
        """Execute every task, retrying/rebuilding/degrading as needed.

        ``on_result(key, result)`` fires once per task as soon as its
        chunk completes — the checkpoint hook.  Raises
        :class:`TaskError` if a single task exhausts its retries.

        ``collect=False`` returns an empty dict instead of accumulating
        every result — for streaming callers (million-replicate sweeps)
        whose ``on_result`` consumes results as they land, keeping the
        executor's memory O(in-flight), not O(tasks).
        """
        keys = list(tasks)
        if not keys:
            return {}
        telemetry = self.telemetry
        telemetry_on = telemetry is not None and telemetry.enabled
        if telemetry_on:
            stats_before = (
                self.stats.retries,
                self.stats.splits,
                self.stats.timeouts,
                self.stats.pool_rebuilds,
                self.stats.backoff_seconds,
                self.stats.fell_back_serial,
            )
        if chunk_size is None:
            chunk_size = self.default_chunk_size(len(keys))
        units = deque(
            tuple(keys[start : start + chunk_size])
            for start in range(0, len(keys), chunk_size)
        )
        results: Dict[Hashable, object] = {}
        completed = 0
        attempts: Dict[Tuple, int] = {}
        in_flight: Dict[object, Tuple[Tuple, float]] = {}
        policy = self.policy
        serial_mode = False
        pool = None
        pool_failures = 0
        # True while the current pool contains a worker whose chunk blew
        # its deadline — that worker may still be hung, so the pool must
        # be terminated, never awaited.
        pool_hung = False

        def finish(unit: Tuple, values: List) -> None:
            nonlocal completed
            if len(values) != len(unit):
                raise TaskError(
                    unit[0] if len(unit) == 1 else unit,
                    ValueError(
                        f"worker returned {len(values)} results for "
                        f"{len(unit)} tasks"
                    ),
                )
            for key, value in zip(unit, values):
                if collect:
                    results[key] = value
                completed += 1
                if on_result is not None:
                    on_result(key, value)

        def handle_failure(unit: Tuple, exc: BaseException, requeue) -> None:
            """Retry, split, or raise — the first two rungs of the ladder."""
            attempts[unit] = attempts.get(unit, 0) + 1
            if attempts[unit] <= policy.max_retries:
                self.stats.retries += 1
                delay = policy.backoff_delay(unit, attempts[unit])
                self.stats.backoff_seconds += delay
                self._sleep(delay)
                requeue.append(unit)
            elif len(unit) > 1:
                # Isolate the poison task: singles get a fresh budget.
                self.stats.splits += 1
                for key in unit:
                    requeue.append((key,))
            else:
                raise TaskError(unit[0], exc)

        def note_pool_failure() -> bool:
            """Count a pool-level failure; True once it is time to degrade."""
            nonlocal pool_failures
            self.stats.pool_rebuilds += 1
            pool_failures += 1
            if pool_failures >= policy.fallback_after:
                self.stats.fell_back_serial = True
                return True
            return False

        try:
            while units or in_flight:
                if serial_mode:
                    unit = units.popleft()
                    try:
                        finish(unit, self._worker_fn(list(unit), *args))
                    except TaskError:
                        raise
                    except Exception as exc:
                        handle_failure(unit, exc, units)
                    continue

                # Top the pool up to capacity — no deeper: the deadline
                # clock starts at submit, so a chunk queued behind others
                # would accrue deadline while waiting for a worker and
                # time out spuriously.  A failure here (pool refuses to
                # start, or is already broken) is a pool-level fault.
                try:
                    if pool is None:
                        pool = self._pool_factory(max_workers=self.max_workers)
                        pool_hung = False
                    while units and len(in_flight) < self.max_workers:
                        unit = units[0]
                        future = pool.submit(self._worker_fn, list(unit), *args)
                        units.popleft()
                        in_flight[future] = (unit, time.monotonic())
                except Exception:
                    for _, (unit, _) in list(in_flight.items()):
                        units.append(unit)
                    in_flight.clear()
                    if pool is not None:
                        _terminate_pool(pool)
                        pool = None
                    if note_pool_failure():
                        serial_mode = True
                    continue

                if policy.timeout is None:
                    done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                else:
                    now = time.monotonic()
                    earliest = min(start for _, start in in_flight.values())
                    remaining = policy.timeout - (now - earliest)
                    done, _ = wait(
                        list(in_flight),
                        timeout=max(0.0, remaining),
                        return_when=FIRST_COMPLETED,
                    )

                requeue: deque = deque()
                pool_broken = False
                deadline_blown = False
                for future in done:
                    unit, _ = in_flight.pop(future)
                    try:
                        values = future.result()
                    except BrokenExecutor as exc:
                        # The pool died under this chunk (worker killed,
                        # OOM, ...).  Charge the chunk a retry — if it is
                        # the poison, attempts accumulate toward
                        # isolation; if not, the retry succeeds.
                        pool_broken = True
                        handle_failure(unit, exc, requeue)
                    except Exception as exc:
                        handle_failure(unit, exc, requeue)
                    else:
                        finish(unit, values)
                        pool_failures = 0

                if not pool_broken and policy.timeout is not None:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, start) in in_flight.items()
                        if now - start > policy.timeout
                    ]
                    for future in expired:
                        unit, start = in_flight.pop(future)
                        self.stats.timeouts += 1
                        deadline_blown = True
                        pool_hung = True
                        handle_failure(
                            unit,
                            TimeoutError(
                                f"chunk {unit!r} exceeded the "
                                f"{policy.timeout}s deadline"
                            ),
                            requeue,
                        )

                if pool_broken or deadline_blown:
                    # Hung/killed workers poison the whole pool: recover
                    # the innocent in-flight chunks for free and rebuild.
                    for _, (unit, _) in list(in_flight.items()):
                        requeue.append(unit)
                    in_flight.clear()
                    _terminate_pool(pool)
                    pool = None
                    if pool_broken:
                        if note_pool_failure():
                            serial_mode = True
                    else:
                        # A blown deadline is a *self-inflicted* kill of a
                        # healthy pool, not evidence the pool cannot run.
                        # Counting it toward fallback_after would let a
                        # persistently hanging task drive the executor
                        # into deadline-free serial mode, where the hang
                        # blocks forever instead of ending in TaskError
                        # once its retries run out.
                        self.stats.pool_rebuilds += 1
                units.extend(requeue)
        finally:
            if pool is not None:
                if in_flight or pool_hung:
                    _terminate_pool(pool)
                else:
                    pool.shutdown(wait=True)
            if telemetry_on:
                self._settle_telemetry(stats_before, completed)
        return results

    def _settle_telemetry(self, before: Tuple, completed: int) -> None:
        """Report this run's stats deltas — called once per :meth:`run`,
        so the recovery ladder itself stays instrumentation-free."""
        stats = self.stats
        telemetry = self.telemetry
        telemetry.inc("executor.runs")
        telemetry.inc("executor.tasks_completed", completed)
        telemetry.inc("executor.retries", stats.retries - before[0])
        telemetry.inc("executor.splits", stats.splits - before[1])
        telemetry.inc("executor.deadline_kills", stats.timeouts - before[2])
        telemetry.inc("executor.pool_rebuilds", stats.pool_rebuilds - before[3])
        backoff = stats.backoff_seconds - before[4]
        if backoff > 0:
            telemetry.observe("executor.backoff_seconds", backoff)
        if stats.fell_back_serial and not before[5]:
            telemetry.inc("executor.serial_fallbacks")
