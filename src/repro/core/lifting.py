"""The paper's three liftings, packaged for one-call verification.

Lemma 5 (scan-validate), Lemma 10 (parallel code) and Lemma 13
(augmented-CAS counter) each assert that the individual chain lifts the
corresponding system chain.  These wrappers build both chains and verify
the ergodic-flow homomorphism numerically via
:class:`repro.markov.lifting.Lifting`.
"""

from __future__ import annotations

from repro.markov.lifting import LiftingReport

# The chain builders are imported lazily inside each wrapper:
# ``repro.chains.scu`` imports ``repro.core.memo`` (for its disk-memoized
# exact solvers), so a module-level import here would close an import
# cycle through ``repro.core.__init__``.


def verify_scu_lifting(n: int, *, atol: float = 1e-9) -> LiftingReport:
    """Verify Lemma 5 for ``n`` processes (exponential; keep ``n <= 10``)."""
    from repro.chains.scu import scu_lifting

    return scu_lifting(n).verify(atol=atol)


def verify_parallel_lifting(n: int, q: int, *, atol: float = 1e-9) -> LiftingReport:
    """Verify Lemma 10 for ``n`` processes and preamble length ``q``."""
    from repro.chains.parallel import parallel_lifting

    return parallel_lifting(n, q).verify(atol=atol)


def verify_counter_lifting(n: int, *, atol: float = 1e-9) -> LiftingReport:
    """Verify Lemma 13 for ``n`` processes (exponential; keep ``n <= 14``)."""
    from repro.chains.counter import counter_lifting

    return counter_lifting(n).verify(atol=atol)
