"""Convergence diagnostics for simulation estimates.

The paper's quantities are stationary expectations; finite simulations
approach them through a transient.  These diagnostics justify (or
reject) a chosen burn-in:

* :func:`split_half_diagnostic` — compare the latency estimated from the
  first and second halves of the post-burn-in completions; a stationary
  series gives statistically indistinguishable halves.
* :func:`geweke_z` — Geweke's z-score comparing the early fraction of a
  series against the late fraction (|z| < 2 is the usual pass).
* :func:`running_latency` — the evolving estimate over time, for
  plotting/asserting settlement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.sim.trace import TraceRecorder


def completion_gaps(recorder: TraceRecorder, *, burn_in: int = 0) -> np.ndarray:
    """Inter-completion gaps (the raw series behind the system latency)."""
    times = np.asarray(recorder.completion_times, dtype=np.int64)
    times = times[times > burn_in]
    if times.size < 2:
        raise ValueError("need at least two completions after burn-in")
    return np.diff(times)


@dataclass(frozen=True)
class SplitHalfDiagnostic:
    """First-half vs second-half comparison of the latency estimate."""

    first_half: float
    second_half: float

    @property
    def relative_drift(self) -> float:
        """``|second - first| / mean`` — small when stationary."""
        mean = 0.5 * (self.first_half + self.second_half)
        return abs(self.second_half - self.first_half) / mean

    def is_stationary(self, tolerance: float = 0.05) -> bool:
        """Whether the two halves agree within ``tolerance``."""
        return self.relative_drift <= tolerance


def split_half_diagnostic(
    recorder: TraceRecorder, *, burn_in: int = 0
) -> SplitHalfDiagnostic:
    """Latency from each half of the post-burn-in completion series."""
    gaps = completion_gaps(recorder, burn_in=burn_in)
    half = gaps.size // 2
    if half < 1:
        raise ValueError("too few gaps to split")
    return SplitHalfDiagnostic(
        first_half=float(gaps[:half].mean()),
        second_half=float(gaps[half:].mean()),
    )


def geweke_z(
    series: Sequence[float], *, early: float = 0.1, late: float = 0.5
) -> float:
    """Geweke's convergence z-score between the early and late windows.

    Uses batch means within each window to absorb autocorrelation.
    ``|z| < 2`` is the conventional stationarity pass.
    """
    data = np.asarray(series, dtype=float)
    if not 0 < early < 1 or not 0 < late < 1 or early + late > 1:
        raise ValueError("early and late must be fractions with early + late <= 1")
    n = data.size
    head = data[: max(int(n * early), 2)]
    tail = data[n - max(int(n * late), 2):]

    def batched(x: np.ndarray) -> np.ndarray:
        batches = max(min(20, x.size // 5), 2)
        usable = x.size - x.size % batches
        return x[:usable].reshape(batches, -1).mean(axis=1)

    head_b, tail_b = batched(head), batched(tail)
    var = head_b.var(ddof=1) / head_b.size + tail_b.var(ddof=1) / tail_b.size
    if var <= 0:
        return 0.0
    return float((head_b.mean() - tail_b.mean()) / np.sqrt(var))


def running_latency(
    recorder: TraceRecorder, *, points: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """The latency estimate as a function of how much data is used.

    Returns ``(cut_times, estimates)``; the estimate at cut ``t`` uses
    completions up to ``t``.  Settling of this curve is what a burn-in
    plus sufficient run length must achieve.
    """
    times = np.asarray(recorder.completion_times, dtype=np.int64)
    if times.size < points:
        raise ValueError(f"need at least {points} completions")
    cuts = np.linspace(times.size // points, times.size - 1, points).astype(int)
    cut_times = times[cuts]
    estimates = np.array(
        [(times[c] - times[0]) / c for c in cuts], dtype=float
    )
    return cut_times, estimates
