"""Chunked columnar result store for million-replicate sweeps.

The JSONL :class:`~repro.core.checkpoint.SweepCheckpoint` journal is
per-record and text-based — ideal for durability (append one line,
flush, done) but a bottleneck at million-replicate scale, where loading
a resume state means parsing a million JSON lines.  A
:class:`ColumnarSweepStore` keeps the journal's durability story while
storing the bulk of the results columnar:

* ``header.json`` — the same schema-versioned sweep fingerprint the
  JSONL checkpoint stores on its first line, written atomically.
* ``chunk-00000.npz``, ``chunk-00001.npz``, ... — compacted results,
  one int64 column for ``n`` and ``r`` and one float64 column per
  metric (``system_latency``, ``completion_rate``, ``fairness_ratio``),
  in append order.
* ``tail.jsonl`` — the write-ahead tail: every :meth:`record` appends
  one JSON point line (the exact record format the JSONL checkpoint
  uses, flushed immediately, fsync-batched).  When the tail reaches
  ``compact_every`` records it is compacted into a fresh columnar
  chunk and truncated.

Durability: a record is durable once its tail line is flushed — exactly
the JSONL checkpoint's guarantee.  Compaction writes the chunk to a
temp file, fsyncs, atomically renames it into place, and only then
truncates the tail; a crash between those steps leaves the compacted
records in *both* places, which load-time last-wins deduplication makes
harmless (the values are identical).  A torn final tail line is
repaired on resume exactly like the JSONL journal's; a corrupt chunk or
a corrupt non-final tail line is an error, because only the final line
can legitimately tear.

Resume is bit-identical to the JSONL-only path: the store loads chunks
then tail (last wins), producing the same ``completed`` mapping a
:class:`SweepCheckpoint` would, so a sweep resumed from either journal
re-runs the same missing replicates and aggregates the same bytes.
Unlike the JSONL checkpoint, :meth:`record` does not grow an in-memory
dict of every triple — a fresh million-replicate sweep holds at most
``compact_every`` pending records plus the completed-key set.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.checkpoint import (
    _ACTIVE,
    CheckpointError,
    CheckpointMismatchError,
    Triple,
    WriterLock,
    acquire_writer_lock,
    parse_point_record,
    repair_jsonl_tail,
)

#: Warn-once flag for degraded compaction (see :meth:`ColumnarSweepStore.compact`).
_warned_compact_failure = False

#: Bumped whenever the on-disk layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: The metric columns of every chunk, in triple order.
METRIC_COLUMNS = ("system_latency", "completion_rate", "fairness_ratio")

_HEADER_NAME = "header.json"
_TAIL_NAME = "tail.jsonl"
_CHUNK_PREFIX = "chunk-"


def _atomic_write_json(path: Path, payload: dict) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ColumnarSweepStore:
    """Columnar sweep results with a JSONL write-ahead tail.

    Interface-compatible with :class:`SweepCheckpoint` where sweeps
    need it (``open``/``record``/``flush``/``close``/``missing``/
    ``completed``/``fingerprint``/context manager), so
    :func:`repro.core.sweep.latency_sweep` and ``parallel_sweep`` accept
    either through their ``checkpoint=``/``store=`` arguments.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: Dict[str, object],
        completed: Dict[Tuple[int, int], Triple],
        tail_records: List[Tuple[int, int, Triple]],
        handle,
        next_chunk: int,
        *,
        compact_every: int = 4096,
        fsync_every: int = 16,
        telemetry=None,
        lock: Optional[WriterLock] = None,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._lock = lock
        #: Triples loaded at open time (the resume state).  Records
        #: appended later are *not* added here — see ``keys``.
        self.completed = completed
        self._tail_records = tail_records
        self._handle = handle
        self._next_chunk = next_chunk
        self._compact_every = max(1, int(compact_every))
        self._fsync_every = max(1, int(fsync_every))
        self._since_sync = 0
        self.telemetry = telemetry
        self._keys: Set[Tuple[int, int]] = set(completed)
        self._keys.update((n, r) for n, r, _ in tail_records)
        _ACTIVE.add(self)

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        fingerprint: Dict[str, object],
        *,
        resume: bool = False,
        compact_every: int = 4096,
        fsync_every: int = 16,
        telemetry=None,
    ) -> "ColumnarSweepStore":
        """Create a fresh store directory, or resume an existing one.

        Semantics mirror :meth:`SweepCheckpoint.open`: ``resume=False``
        refuses an existing non-empty store, ``resume=True`` accepts a
        missing directory (starts fresh) and otherwise validates the
        stored fingerprint, raising :class:`CheckpointMismatchError`
        naming every differing field.

        Opening takes the advisory single-writer lock (``<dir>/writer.lock``):
        a second concurrent open fails loudly with a
        :class:`CheckpointError` naming the holder's PID instead of
        silently interleaving tail appends.  Released by :meth:`close`;
        evaporates with the process on a crash.
        """
        path = Path(path)
        header_path = path / _HEADER_NAME
        exists = header_path.exists()
        if exists and not resume:
            raise CheckpointError(
                f"store {path} already exists; pass resume=True to "
                "continue it, or remove the directory to start over"
            )
        path.mkdir(parents=True, exist_ok=True)
        lock = acquire_writer_lock(path / "writer")
        try:
            if exists:
                stored, completed, tail_records, next_chunk = cls._load(path)
                if stored != fingerprint:
                    differing = sorted(
                        key
                        for key in set(stored) | set(fingerprint)
                        if stored.get(key) != fingerprint.get(key)
                    )
                    raise CheckpointMismatchError(
                        f"store {path} belongs to a different sweep: "
                        f"fields {differing} differ "
                        f"(stored {[stored.get(k) for k in differing]}, "
                        f"requested {[fingerprint.get(k) for k in differing]})"
                    )
                repair_jsonl_tail(path / _TAIL_NAME)
                handle = (path / _TAIL_NAME).open("a", encoding="utf-8")
                if telemetry is not None and telemetry.enabled:
                    telemetry.inc(
                        "store.resume_hits", len(completed)
                    )
                return cls(
                    path,
                    fingerprint,
                    completed,
                    tail_records,
                    handle,
                    next_chunk,
                    compact_every=compact_every,
                    fsync_every=fsync_every,
                    telemetry=telemetry,
                    lock=lock,
                )
            _atomic_write_json(
                header_path,
                {
                    "kind": "header",
                    "version": STORE_SCHEMA_VERSION,
                    "fingerprint": fingerprint,
                    "metrics": list(METRIC_COLUMNS),
                },
            )
            handle = (path / _TAIL_NAME).open("w", encoding="utf-8")
            return cls(
                path,
                fingerprint,
                {},
                [],
                handle,
                0,
                compact_every=compact_every,
                fsync_every=fsync_every,
                telemetry=telemetry,
                lock=lock,
            )
        except BaseException:
            if lock is not None:
                lock.release()
            raise

    # -- loading -----------------------------------------------------------

    @staticmethod
    def _chunk_paths(path: Path) -> List[Path]:
        return sorted(path.glob(f"{_CHUNK_PREFIX}*.npz"))

    @classmethod
    def _load(
        cls, path: Path
    ) -> Tuple[
        Dict[str, object],
        Dict[Tuple[int, int], Triple],
        List[Tuple[int, int, Triple]],
        int,
    ]:
        header_path = path / _HEADER_NAME
        try:
            header = json.loads(header_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(f"store {path} has no {_HEADER_NAME}")
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"store {path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise CheckpointError(
                f"store {path} header is not a header record"
            )
        if header.get("version") != STORE_SCHEMA_VERSION:
            raise CheckpointError(
                f"store {path} has schema version "
                f"{header.get('version')!r}; this build reads "
                f"version {STORE_SCHEMA_VERSION}"
            )
        fingerprint = header.get("fingerprint")
        if not isinstance(fingerprint, dict):
            raise CheckpointError(f"store {path} header has no fingerprint")

        completed: Dict[Tuple[int, int], Triple] = {}
        next_chunk = 0
        for chunk_path in cls._chunk_paths(path):
            for key, triple in cls._read_chunk(chunk_path):
                completed[key] = triple
            stem = chunk_path.stem[len(_CHUNK_PREFIX):]
            try:
                next_chunk = max(next_chunk, int(stem) + 1)
            except ValueError:
                raise CheckpointError(
                    f"store {path} has an unrecognised chunk name "
                    f"{chunk_path.name!r}"
                ) from None

        tail_records: List[Tuple[int, int, Triple]] = []
        tail_path = path / _TAIL_NAME
        if tail_path.exists():
            try:
                lines = tail_path.read_text(encoding="utf-8").splitlines()
            except (OSError, UnicodeDecodeError) as exc:
                raise CheckpointError(
                    f"store tail {tail_path} is unreadable: {exc}"
                ) from exc
            for index, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if index == len(lines):
                        # A torn final line is the expected shape of a
                        # crash mid-append; everything before it is
                        # intact.
                        break
                    raise CheckpointError(
                        f"store tail {tail_path} line {index} is corrupt "
                        "(not the final line, so this is not a torn tail)"
                    )
                key, triple = parse_point_record(record, tail_path, index)
                completed[key] = triple
                tail_records.append((key[0], key[1], triple))
        return fingerprint, completed, tail_records, next_chunk

    @staticmethod
    def _read_chunk(
        chunk_path: Path,
    ) -> Iterator[Tuple[Tuple[int, int], Triple]]:
        try:
            with np.load(chunk_path) as arrays:
                columns = [arrays["n"], arrays["r"]] + [
                    arrays[metric] for metric in METRIC_COLUMNS
                ]
        # Arbitrary corruption surfaces from the zip/npy parsers as a
        # zoo of exception types (BadZipFile, NotImplementedError for a
        # bogus compression method, ValueError, EOFError, ...); any
        # failure to read a chunk is the same condition.
        except Exception as exc:
            raise CheckpointError(
                f"store chunk {chunk_path} is corrupt: {exc}"
            ) from exc
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise CheckpointError(
                f"store chunk {chunk_path} has ragged columns "
                f"(lengths {sorted(lengths)})"
            )
        n_col, r_col, *metric_cols = columns
        for i in range(len(n_col)):
            yield (int(n_col[i]), int(r_col[i])), tuple(
                float(col[i]) for col in metric_cols
            )

    @classmethod
    def load_completed(
        cls, path: Union[str, Path]
    ) -> Dict[Tuple[int, int], Triple]:
        """Read a store's completed triples without opening it."""
        return cls._load(Path(path))[1]

    @classmethod
    def load_fingerprint(cls, path: Union[str, Path]) -> Dict[str, object]:
        """Read a store's fingerprint without opening it."""
        return cls._load(Path(path))[0]

    # -- appending ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._keys

    @property
    def keys(self) -> Set[Tuple[int, int]]:
        """Every recorded ``(n, replicate)`` key (loaded + appended)."""
        return set(self._keys)

    @property
    def pending_tail_records(self) -> int:
        """How many records await compaction into a columnar chunk."""
        return len(self._tail_records)

    @property
    def chunk_count(self) -> int:
        """How many columnar chunks exist on disk."""
        return len(self._chunk_paths(self.path))

    def record(self, n: int, replicate: int, triple: Sequence[float]) -> None:
        """Append one finished ``(n, replicate)`` triple.

        Durable once the tail line is flushed (fsync lands every
        ``fsync_every`` records); compacts the tail into a columnar
        chunk every ``compact_every`` records.  Re-recording a key
        overwrites on load (last wins), matching the JSONL journal.
        """
        if self._handle is None:
            raise CheckpointError(f"store {self.path} is closed")
        key = (int(n), int(replicate))
        triple = (float(triple[0]), float(triple[1]), float(triple[2]))
        line = json.dumps(
            {"kind": "point", "n": key[0], "r": key[1], "v": list(triple)}
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        self._tail_records.append((key[0], key[1], triple))
        self._keys.add(key)
        self._since_sync += 1
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.inc("store.records")
        if self._since_sync >= self._fsync_every:
            os.fsync(self._handle.fileno())
            self._since_sync = 0
            if telemetry is not None and telemetry.enabled:
                telemetry.inc("store.fsync_batches")
        if len(self._tail_records) >= self._compact_every:
            self.compact()

    def compact(self) -> int:
        """Move the pending tail records into a new columnar chunk.

        Returns how many records were compacted (0 for an empty tail).
        The chunk is written to a temp file, fsynced and atomically
        renamed before the tail is truncated, so no crash window loses
        a record (at worst a record exists in both chunk and tail until
        the truncate lands — deduplicated on load).

        Compaction is an *optimisation* of already-durable records, so
        a chunk write refused by the filesystem (ENOSPC, EPERM, ...)
        degrades instead of killing the sweep: the failure is warned
        once (and counted as ``store.compaction_failures``), the
        records stay in the JSONL tail, and recording continues — the
        store just runs slower and loads like a plain journal until the
        disk recovers.
        """
        if self._handle is None:
            raise CheckpointError(f"store {self.path} is closed")
        if not self._tail_records:
            return 0
        count = len(self._tail_records)
        columns = {
            "n": np.array([n for n, _, _ in self._tail_records], dtype=np.int64),
            "r": np.array([r for _, r, _ in self._tail_records], dtype=np.int64),
        }
        for index, metric in enumerate(METRIC_COLUMNS):
            columns[metric] = np.array(
                [triple[index] for _, _, triple in self._tail_records],
                dtype=np.float64,
            )
        chunk_path = self.path / f"{_CHUNK_PREFIX}{self._next_chunk:05d}.npz"
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path, prefix=chunk_path.name, suffix=".tmp"
            )
        except OSError as exc:
            self._note_compact_failure(exc)
            return 0
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **columns)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, chunk_path)
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            self._note_compact_failure(exc)
            return 0
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._next_chunk += 1
        # The chunk is durable; now the tail can restart empty.
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        self._tail_records = []
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("store.compactions")
            self.telemetry.inc("store.compacted_records", count)
        return count

    def _note_compact_failure(self, exc: OSError) -> None:
        """Record a degraded (skipped) compaction without raising.

        The records involved are already durable in the JSONL tail, so
        the only consequence is slower loads until the disk recovers.
        Warned once per process to avoid drowning a long sweep in
        repeats of the same ENOSPC.
        """
        global _warned_compact_failure
        if not _warned_compact_failure:
            _warned_compact_failure = True
            warnings.warn(
                f"store compaction failed ({exc}); records remain durable "
                f"in the JSONL tail of {self.path} and the sweep continues "
                "uncompacted",
                RuntimeWarning,
                stacklevel=3,
            )
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("store.compaction_failures")

    def flush(self) -> None:
        """Flush and fsync the write-ahead tail."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("store.fsync_batches")

    def close(self) -> None:
        """Compact any pending tail, flush, and release (idempotent)."""
        if self._handle is None:
            return
        self.compact()
        self.flush()
        self._handle.close()
        self._handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None
        _ACTIVE.discard(self)

    def missing(
        self, n_values: Sequence[int], repeats: int
    ) -> List[Tuple[int, int]]:
        """The ``(n, replicate)`` pairs not yet recorded, in sweep order."""
        return [
            (n, r)
            for n in n_values
            for r in range(repeats)
            if (n, r) not in self._keys
        ]

    def __enter__(self) -> "ColumnarSweepStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
