"""The paper's Markov chains, built explicitly.

Three families, each with an *individual* (per-process, exponential-size)
chain, a collapsed *system* chain, and the lifting map between them:

* :mod:`repro.chains.scu` — the scan-validate component (Section 6.1):
  individual chain over ``{Read, OldCAS, CCAS}^n`` minus the all-``OldCAS``
  state; system chain over pairs ``(a, b)``; plus exact latency
  computations and a generalised chain for ``s`` scan steps and a ``q``-step
  preamble (Section 6.3).
* :mod:`repro.chains.parallel` — parallel code (Section 6.2): individual
  chain over step-counter vectors, system chain over counter histograms.
* :mod:`repro.chains.counter` — the augmented-CAS counter (Section 7):
  individual chain over non-empty subsets of current-value holders, global
  chain over subset sizes, and the ``Z``-recurrence return times.
"""

from repro.chains.counter import (
    counter_global_chain,
    counter_global_chain_enumerated,
    counter_individual_chain,
    counter_individual_latency_exact,
    counter_lifting,
    counter_lifting_map,
    counter_system_latency_exact,
)
from repro.chains.parallel import (
    parallel_individual_chain,
    parallel_lifting,
    parallel_lifting_map,
    parallel_individual_latency_exact,
    parallel_system_chain,
    parallel_system_latency_exact,
)
from repro.chains.observe import scu_extended_state, scu_system_state
from repro.chains.scu import (
    CCAS,
    OLD_CAS,
    READ,
    clear_exact_chain_caches,
    scu_full_individual_chain,
    scu_full_individual_latency_exact,
    scu_full_lifting,
    scu_full_system_chain,
    scu_full_system_latency_exact,
    scu_individual_chain,
    scu_individual_latency_exact,
    scu_lifting,
    scu_lifting_map,
    scu_stationary_profile,
    scu_system_chain,
    scu_system_chain_enumerated,
    scu_system_latency_exact,
)
from repro.chains.gaps import (
    counter_gap_mean,
    counter_gap_pmf,
    counter_gap_quantile,
    scu_gap_mean,
    scu_gap_pmf,
    scu_gap_quantile,
)
from repro.chains.weighted import (
    counter_weighted_latencies,
    scu_weighted_latencies,
)

__all__ = [
    "CCAS",
    "OLD_CAS",
    "READ",
    "clear_exact_chain_caches",
    "counter_gap_mean",
    "counter_gap_pmf",
    "counter_gap_quantile",
    "scu_gap_mean",
    "scu_gap_pmf",
    "scu_gap_quantile",
    "counter_global_chain",
    "counter_global_chain_enumerated",
    "counter_individual_chain",
    "counter_individual_latency_exact",
    "counter_lifting",
    "counter_lifting_map",
    "counter_system_latency_exact",
    "counter_weighted_latencies",
    "parallel_individual_chain",
    "parallel_individual_latency_exact",
    "parallel_lifting",
    "parallel_lifting_map",
    "parallel_system_chain",
    "parallel_system_latency_exact",
    "scu_extended_state",
    "scu_full_individual_chain",
    "scu_full_individual_latency_exact",
    "scu_full_lifting",
    "scu_full_system_chain",
    "scu_full_system_latency_exact",
    "scu_individual_chain",
    "scu_individual_latency_exact",
    "scu_lifting",
    "scu_lifting_map",
    "scu_stationary_profile",
    "scu_system_chain",
    "scu_system_chain_enumerated",
    "scu_system_latency_exact",
    "scu_system_state",
    "scu_weighted_latencies",
]
