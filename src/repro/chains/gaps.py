"""Exact distributions of the time between completions.

The paper bounds only the *expected* system latency; these functions
compute the full stationary distribution of the gap between consecutive
completions as a discrete phase-type law (see
:mod:`repro.markov.phasetype`):

* the marked transitions of the scan-validate system chain are the
  success steps (``(a, b) -> (a+1, n-a-1)`` with probability ``c/n``);
* for the augmented-CAS counter's global chain every transition into
  state 1 is a completion, so the gap is the return time of state 1.

Starting distribution: the post-completion state distribution, i.e. the
normalised success flows — the stationary law of "where the system lands
right after a completion".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.chains.counter import counter_global_chain
from repro.chains.scu import scu_system_chain
from repro.markov.phasetype import (
    phase_type_mean,
    phase_type_pmf,
    phase_type_quantile,
)
from repro.markov.stationary import stationary_distribution


def scu_gap_phase_type(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(start, sub, mark)`` of the scan-validate completion-gap law."""
    chain = scu_system_chain(n)
    pi = stationary_distribution(chain)
    states = chain.states
    index = {s: i for i, s in enumerate(states)}
    k = len(states)
    sub = np.zeros((k, k))
    mark = np.zeros(k)
    start = np.zeros(k)
    for i, (a, b) in enumerate(states):
        c = n - a - b
        if b > 0:
            sub[i, index[(a + 1, b - 1)]] = b / n
        if a > 0:
            sub[i, index[(a - 1, b)]] = a / n
        if c > 0:
            mark[i] = c / n
            target = index[(a + 1, n - a - 1)]
            start[target] += pi[i] * c / n
    total = start.sum()
    if total <= 0:
        raise ArithmeticError("no success flow found")
    return start / total, sub, mark


def scu_gap_pmf(n: int, max_k: int) -> np.ndarray:
    """``P(gap = k)`` for ``k = 1 .. max_k`` of the scan-validate chain."""
    start, sub, mark = scu_gap_phase_type(n)
    return phase_type_pmf(start, sub, mark, max_k)


def scu_gap_mean(n: int) -> float:
    """Mean completion gap — must equal the exact system latency."""
    start, sub, mark = scu_gap_phase_type(n)
    return phase_type_mean(start, sub, mark)


def scu_gap_quantile(n: int, q: float) -> int:
    """``q``-quantile of the completion gap."""
    start, sub, mark = scu_gap_phase_type(n)
    return phase_type_quantile(start, sub, mark, q)


def counter_gap_phase_type(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(start, sub, mark)`` of the augmented-counter completion-gap law.

    Every completion lands the chain in state 1, so ``start`` is the
    point mass on state 1 and the gap is exactly the return time of
    state 1 (``Z(n-1)`` in expectation).
    """
    chain = counter_global_chain(n)
    states = chain.states
    index = {s: i for i, s in enumerate(states)}
    k = len(states)
    sub = np.zeros((k, k))
    mark = np.zeros(k)
    for i, size in enumerate(states):
        mark[i] = size / n
        if size < n:
            sub[i, index[size + 1]] = 1.0 - size / n
    start = np.zeros(k)
    start[index[1]] = 1.0
    return start, sub, mark


def counter_gap_pmf(n: int, max_k: int) -> np.ndarray:
    """``P(gap = k)`` for the augmented-CAS counter."""
    start, sub, mark = counter_gap_phase_type(n)
    return phase_type_pmf(start, sub, mark, max_k)


def counter_gap_mean(n: int) -> float:
    """Mean completion gap — equals ``Z(n-1) = Q(n)``."""
    start, sub, mark = counter_gap_phase_type(n)
    return phase_type_mean(start, sub, mark)


def counter_gap_quantile(n: int, q: float) -> int:
    """``q``-quantile of the counter's completion gap."""
    start, sub, mark = counter_gap_phase_type(n)
    return phase_type_quantile(start, sub, mark, q)
