"""Markov chains of the scan-validate component (Sections 6.1 and 6.3).

**Individual chain** (Section 6.1.1).  A state assigns each process an
*extended local state*:

* ``READ`` — about to read the decision register,
* ``CCAS`` — about to CAS with the *current* value (will succeed),
* ``OLD_CAS`` — about to CAS with a stale value (will fail).

There are ``3**n - 1`` states (all-``OLD_CAS`` cannot occur).  A uniformly
chosen process steps:

* a ``READ`` process moves to ``CCAS`` (it reads the current value);
* an ``OLD_CAS`` process moves to ``READ`` (its CAS fails, it restarts);
* a ``CCAS`` process *succeeds*: it moves to ``READ``, and every other
  ``CCAS`` process moves to ``OLD_CAS`` (the register changed under them).

**System chain.**  Collapses states by counting: ``(a, b)`` with ``a``
processes in ``READ`` and ``b`` in ``OLD_CAS`` (``n - a - b`` in ``CCAS``;
the state ``(0, n)`` does not exist).  Transitions from ``(a, b)``:

* ``b/n``              -> ``(a + 1, b - 1)``   (an ``OLD_CAS`` step)
* ``a/n``              -> ``(a - 1, b)``       (a ``READ`` step)
* ``(n - a - b)/n``    -> ``(a + 1, n - a - 1)`` (a success; completion)

(The arXiv text garbles these targets; they are re-derived here from the
individual-chain transition rule and verified in the tests both by the
lifting condition and against direct simulation.)

**A correction to Lemma 3.**  The paper claims both chains are ergodic;
they are in fact *periodic with period 2* — every transition changes the
number of ``READ`` processes by exactly one, so the chains are bipartite
on the parity of ``a``.  Nothing downstream is affected: the chains are
irreducible, hence have unique stationary distributions, Theorem 1's
return-time identity holds, and all latencies are time-averages (to which
the ergodic theorem for irreducible chains applies).  The tests assert
irreducibility plus the period-2 structure explicitly.

**Generalised chain** (Section 6.3 and Corollary 1).  For an ``SCU(q, s)``
algorithm we also build an exact system chain over histograms of
per-process *phases*: preamble positions ``1..q``, scan positions
``1..s`` (fresh or stale — stale once another process commits after our
read of ``R``), and the pending CAS (fresh = ``CCAS``, stale =
``OLD_CAS``).  This chain is exponential only in the number of phases,
not processes, and yields exact latencies for the full class.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.memo import clear_disk_entries, disk_memoized
from repro.markov.chain import MarkovChain
from repro.markov.lifting import Lifting
from repro.markov.stationary import stationary_distribution

READ = "Read"
OLD_CAS = "OldCAS"
CCAS = "CCAS"

IndividualState = Tuple[str, ...]
SystemState = Tuple[int, int]


def _individual_successors(state: IndividualState):
    n = len(state)
    p = 1.0 / n
    for i, local in enumerate(state):
        nxt = list(state)
        if local == READ:
            nxt[i] = CCAS
        elif local == OLD_CAS:
            nxt[i] = READ
        else:  # CCAS: i succeeds, all other CCAS processes go stale.
            for j, other in enumerate(nxt):
                if other == CCAS:
                    nxt[j] = OLD_CAS
            nxt[i] = READ
        yield tuple(nxt), p


def scu_individual_chain(n: int, *, sparse: bool = True) -> MarkovChain:
    """The individual chain for ``SCU(0, 1)`` with ``n`` processes.

    ``3**n - 1`` states; exponential — keep ``n`` at 12 or below.
    States are tuples over ``{READ, OLD_CAS, CCAS}``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n > 14:
        raise ValueError(f"individual chain has 3**{n} - 1 states; n too large")
    initial = tuple([READ] * n)
    # Transitions can merge duplicate successor states (two CCAS processes
    # both lead to distinct states, but a merge-safe accumulation keeps the
    # builder honest if a future edit introduces collisions).
    def successors(state: IndividualState):
        acc: Dict[IndividualState, float] = {}
        for nxt, p in _individual_successors(state):
            acc[nxt] = acc.get(nxt, 0.0) + p
        return acc.items()

    chain = MarkovChain.from_enumeration([initial], successors, sparse=sparse)
    return chain


def scu_system_chain_enumerated(n: int) -> MarkovChain:
    """The ``SCU(0, 1)`` system chain built by per-state BFS enumeration.

    The transition-rule-as-written reference for :func:`scu_system_chain`;
    the fast path must produce the same matrix up to a relabelling of the
    states (the equality tests align the two by label permutation).
    """
    if n < 1:
        raise ValueError("n must be positive")

    def successors(state: SystemState):
        a, b = state
        c = n - a - b
        out = []
        if b > 0:
            out.append(((a + 1, b - 1), b / n))
        if a > 0:
            out.append(((a - 1, b), a / n))
        if c > 0:
            out.append(((a + 1, n - a - 1), c / n))
        return out

    return MarkovChain.from_enumeration([(n, 0)], successors, sparse=True)


def scu_system_chain(n: int) -> MarkovChain:
    """The system chain for ``SCU(0, 1)``: states ``(a, b)``.

    All ``(a, b)`` with ``a + b <= n`` except ``(0, n)``; quadratically
    many states (stored sparsely), usable for hundreds of processes.

    Assembled as one COO-array build over all states at once (every valid
    ``(a, b)`` is reachable from ``(n, 0)``, so no exploration is needed):
    states are ordered by ``a`` descending then ``b`` ascending, giving the
    closed-form index ``k(k + 1)/2 + b`` with ``k = n - a`` and keeping
    ``states[0] == (n, 0)`` like the BFS build.  Entry values are
    bit-identical to :func:`scu_system_chain_enumerated`; only the row
    order differs.
    """
    if n < 1:
        raise ValueError("n must be positive")
    # One state per (a, b): k = n - a runs 0..n, b runs 0..k; the final
    # index ((0, n), the all-stale state that cannot occur) is dropped.
    k = np.repeat(np.arange(n + 1), np.arange(1, n + 2))[:-1]
    count = k.size
    b = np.arange(count) - k * (k + 1) // 2
    a = n - k
    c = k - b

    def index_of(a_arr: np.ndarray, b_arr: np.ndarray) -> np.ndarray:
        kk = n - a_arr
        return kk * (kk + 1) // 2 + b_arr

    source = np.arange(count)
    stale, read, success = b > 0, a > 0, c > 0
    rows = np.concatenate([source[stale], source[read], source[success]])
    cols = np.concatenate(
        [
            index_of(a[stale] + 1, b[stale] - 1),
            index_of(a[read] - 1, b[read]),
            index_of(a[success] + 1, n - a[success] - 1),
        ]
    )
    vals = np.concatenate([b[stale] / n, a[read] / n, c[success] / n])
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(count, count)).tocsr()
    states = list(zip(a.tolist(), b.tolist()))
    return MarkovChain(matrix, states)


def scu_lifting_map(state: IndividualState) -> SystemState:
    """The collapse ``f``: count ``READ`` and ``OLD_CAS`` processes."""
    return (state.count(READ), state.count(OLD_CAS))


def scu_lifting(n: int) -> Lifting:
    """The lifting of Lemma 5, ready for verification."""
    return Lifting(scu_individual_chain(n), scu_system_chain(n), scu_lifting_map)


# -- exact latencies ------------------------------------------------------------
#
# The float-returning solvers are memoized twice over: benchmarks and
# sweeps re-solve the same (n, q, s) chain many times (FIG5 asserts
# against the exact value at every thread count, every replicate), and a
# stationary solve of the n=512 system chain costs ~seconds.  The
# in-process layer is a bounded LRU (128 entries each) so long
# heterogeneous sweeps recycle the memory behind dense solves instead of
# pinning every (n, q, s) ever touched; the optional disk layer
# (:mod:`repro.core.memo`, enabled via ``--memo-dir`` /
# ``REPRO_MEMO_DIR``) persists each solution machine-wide, so an exact
# chain is solved once per (n, q, s) ever and every later process warm
# starts from disk.  scu_stationary_profile returns a mutable dict and
# stays uncached.


def clear_exact_chain_caches() -> None:
    """Drop every memoized exact-latency solve in this module — both the
    in-process LRU layer and, when a disk memo is configured, the
    machine-wide on-disk entries.

    The in-process caches keep up to 128 results each; a single
    large-``n`` solve can hold megabytes of intermediate state alive
    through its closure of the stationary solve, so memory-sensitive
    callers (long-running services, benchmark harnesses between
    workloads) can reset them all at once.  Clearing the disk layer is
    the invalidation story for solver changes: entries carry no solver
    version, so after editing the chain builders or solvers, clear (or
    point ``--memo-dir`` at a fresh directory).
    """
    solvers = (
        scu_success_probability,
        scu_system_latency_exact,
        scu_individual_latency_exact,
        scu_full_individual_latency_exact,
        scu_full_system_latency_exact,
    )
    for solver in solvers:
        solver.cache_clear()
    clear_disk_entries(solver.memo_name for solver in solvers)


@disk_memoized("scu_success_probability")
def scu_success_probability(n: int) -> float:
    """Stationary probability ``mu`` that a system step is a success.

    ``mu = sum over (a, b) of pi(a, b) * (n - a - b) / n``; the system
    latency is ``W = 1 / mu`` (Lemma 7's argument).
    """
    chain = scu_system_chain(n)
    pi = stationary_distribution(chain, method="auto")
    mu = 0.0
    for (a, b), p in zip(chain.states, pi):
        mu += p * (n - a - b) / n
    return mu


@disk_memoized("scu_system_latency_exact")
def scu_system_latency_exact(n: int) -> float:
    """Exact stationary system latency ``W`` of ``SCU(0, 1)``.

    Theorem 5 proves ``W = O(sqrt(n))``; this is the exact value from the
    system chain's stationary distribution.
    """
    return 1.0 / scu_success_probability(n)


def scu_stationary_profile(n: int) -> dict:
    """Stationary occupancy profile of the system chain.

    Returns ``{"read": E[a]/n, "old_cas": E[b]/n, "ccas": E[c]/n}`` — the
    long-run fraction of processes about to read, about to fail a CAS,
    and about to succeed.  The balls-into-bins analysis predicts the
    ``ccas`` fraction shrinks like ``1/sqrt(n)`` (one success per
    ``Theta(sqrt(n))`` steps needs ``Theta(sqrt(n))`` pending winners
    among ``n`` processes): ``E[c] = Theta(sqrt(n))``.
    """
    chain = scu_system_chain(n)
    pi = stationary_distribution(chain)
    expect_a = expect_b = 0.0
    for (a, b), p in zip(chain.states, pi):
        expect_a += p * a
        expect_b += p * b
    expect_c = n - expect_a - expect_b
    return {
        "read": expect_a / n,
        "old_cas": expect_b / n,
        "ccas": expect_c / n,
    }


@disk_memoized("scu_individual_latency_exact")
def scu_individual_latency_exact(n: int, pid: int = 0) -> float:
    """Exact stationary individual latency ``W_i`` from the individual chain.

    Lemma 7 proves ``W_i = n W`` for every process; computing it from the
    3**n - 1 state chain (rather than multiplying) is the cross-check.
    Exponential — keep ``n`` small.
    """
    chain = scu_individual_chain(n)
    pi = stationary_distribution(chain, method="auto")
    eta = 0.0
    for state, p in zip(chain.states, pi):
        if state[pid] == CCAS:
            eta += p / n
    return 1.0 / eta


# -- generalised SCU(q, s) system chain (Section 6.3) ----------------------------

#: Phase labels of the generalised chain.  A process is in exactly one:
#: ``("P", j)`` preamble step ``j`` in ``1..q``; ``("S", j, fresh)`` scan
#: step ``j`` in ``1..s`` where ``fresh`` records whether the value read
#: from ``R`` is still current (scan step 1 is always fresh: nothing read
#: yet); ``("C", fresh)`` the pending CAS.
Phase = Tuple


def scu_phases(q: int, s: int) -> List[Phase]:
    """All phases of an ``SCU(q, s)`` process, in execution order."""
    if q < 0 or s < 1:
        raise ValueError("need q >= 0 and s >= 1")
    phases: List[Phase] = [("P", j) for j in range(1, q + 1)]
    phases.append(("S", 1, True))
    for j in range(2, s + 1):
        phases.append(("S", j, True))
        phases.append(("S", j, False))
    phases.append(("C", True))
    phases.append(("C", False))
    return phases


def _phase_after(phase: Phase, q: int, s: int, *, first: Phase) -> Phase:
    """The phase a process enters after stepping in ``phase`` (no success)."""
    kind = phase[0]
    if kind == "P":
        j = phase[1]
        return ("P", j + 1) if j < q else ("S", 1, True)
    if kind == "S":
        _, j, fresh = phase
        if j < s:
            return ("S", j + 1, fresh)
        return ("C", fresh)
    # CAS: fresh succeeds (handled by the caller, restarting the whole
    # method call at ``first``); stale fails and restarts only the loop.
    return ("S", 1, True)


def scu_full_system_chain(n: int, q: int, s: int) -> MarkovChain:
    """Exact system chain of ``SCU(q, s)``: histograms over phases.

    A state maps each phase to the number of processes in it (stored as a
    tuple aligned with :func:`scu_phases`).  The state count is the number
    of weak compositions of ``n`` into ``q + 2s + 1`` parts — keep ``n``
    and ``q + s`` modest.

    A success (a step by a ``("C", True)`` process) completes an operation,
    sends the winner back to the first phase and turns every *fresh*
    process that has already read ``R`` (scan position >= 2 or pending
    CAS) stale.
    """
    phases = scu_phases(q, s)
    index = {ph: k for k, ph in enumerate(phases)}
    first = phases[0]

    def successors(state: Tuple[int, ...]):
        out = []
        for k, count in enumerate(state):
            if count == 0:
                continue
            prob = count / n
            phase = phases[k]
            nxt = list(state)
            nxt[k] -= 1
            if phase == ("C", True):
                # Success: winner restarts; fresh readers/CASers go stale.
                moved = list(nxt)
                for ph, idx in index.items():
                    if ph[0] == "S" and ph[2] and ph[1] >= 2:
                        stale_idx = index[("S", ph[1], False)]
                        moved[stale_idx] += moved[idx]
                        moved[idx] = 0
                    elif ph == ("C", True):
                        moved[index[("C", False)]] += moved[idx]
                        moved[idx] = 0
                moved[index[first]] += 1
                out.append((tuple(moved), prob))
            else:
                target = _phase_after(phase, q, s, first=first)
                nxt[index[target]] += 1
                out.append((tuple(nxt), prob))
        return out

    initial = tuple(n if k == 0 else 0 for k in range(len(phases)))
    return MarkovChain.from_enumeration([initial], successors, sparse=True)


def scu_full_individual_chain(n: int, q: int, s: int) -> MarkovChain:
    """Exact *individual* chain of ``SCU(q, s)``: a state assigns each
    process one phase from :func:`scu_phases`.

    ``(q + 2s + 1)**n`` states — tiny parameters only.  Together with
    :func:`scu_full_system_chain` and the histogram collapse this
    extends Lemma 5's lifting (and hence Lemma 7's exact fairness) to
    the whole class, which the paper asserts but does not construct.
    """
    phases = scu_phases(q, s)
    first = phases[0]
    if len(phases) ** n > 600_000:
        raise ValueError("full individual chain too large for these parameters")

    def successors(state: Tuple[Phase, ...]):
        p = 1.0 / n
        for i in range(n):
            nxt = list(state)
            phase = state[i]
            if phase == ("C", True):
                # Success: winner restarts the method; fresh mid-scan and
                # pending-CAS processes go stale.
                for j in range(n):
                    other = nxt[j]
                    if j == i:
                        continue
                    if other[0] == "S" and other[2] and other[1] >= 2:
                        nxt[j] = ("S", other[1], False)
                    elif other == ("C", True):
                        nxt[j] = ("C", False)
                nxt[i] = first
            else:
                nxt[i] = _phase_after(phase, q, s, first=first)
            yield tuple(nxt), p

    initial = tuple([first] * n)
    return MarkovChain.from_enumeration([initial], successors, sparse=True)


def scu_full_lifting(n: int, q: int, s: int):
    """The histogram collapse from the full individual chain to the full
    system chain, as a verifiable :class:`~repro.markov.lifting.Lifting`."""
    phases = scu_phases(q, s)
    index = {ph: k for k, ph in enumerate(phases)}
    fine = scu_full_individual_chain(n, q, s)
    coarse = scu_full_system_chain(n, q, s)

    def mapping(state: Tuple[Phase, ...]) -> Tuple[int, ...]:
        counts = [0] * len(phases)
        for phase in state:
            counts[index[phase]] += 1
        return tuple(counts)

    return Lifting(fine, coarse, mapping)


@disk_memoized("scu_full_individual_latency_exact")
def scu_full_individual_latency_exact(
    n: int, q: int, s: int, pid: int = 0
) -> float:
    """Exact individual latency of ``SCU(q, s)`` from the full individual
    chain — the direct (non-lifted) computation of Theorem 4's n x W."""
    chain = scu_full_individual_chain(n, q, s)
    pi = stationary_distribution(chain, method="auto")
    eta = 0.0
    for state, p in zip(chain.states, pi):
        if state[pid] == ("C", True):
            eta += p / n
    if eta <= 0:
        raise ArithmeticError("process never completes in the stationary law")
    return 1.0 / eta


@disk_memoized("scu_full_system_latency_exact")
def scu_full_system_latency_exact(n: int, q: int, s: int) -> float:
    """Exact stationary system latency of ``SCU(q, s)`` from the full chain.

    Theorem 4 predicts ``O(q + s sqrt(n))``.
    """
    phases = scu_phases(q, s)
    cas_fresh = phases.index(("C", True))
    chain = scu_full_system_chain(n, q, s)
    pi = stationary_distribution(chain, method="auto")
    mu = 0.0
    for state, p in zip(chain.states, pi):
        mu += p * state[cas_fresh] / n
    if mu <= 0:
        raise ArithmeticError("no success transitions found in the chain")
    return 1.0 / mu
