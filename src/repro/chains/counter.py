"""Markov chains of the augmented-CAS counter (Section 7).

**Individual chain** ``M_I``: a state is the non-empty set ``S`` of
processes holding the *current* value of the register (their next CAS
would succeed).  ``2**n - 1`` states.  A uniformly chosen process ``p``
steps:

* ``p in S`` — its CAS succeeds: the register changes, everyone else's
  value goes stale, and ``p`` (knowing the value it wrote) is the only
  current process: new state ``{p}``.  This is a completion by ``p``;
  the *winning states* ``{p}`` are the only states with self-loops.
* ``p not in S`` — its CAS fails but (augmented CAS) returns the current
  value: new state ``S U {p}``.

**Global chain** ``M_G``: states ``1..n`` counting ``|S|``; from ``i`` the
chain moves to ``1`` with probability ``i/n`` (someone current steps —
a completion) and to ``i + 1`` with probability ``1 - i/n``.

The return time of state ``1`` is the system latency ``W``; it satisfies
the recurrence of Lemma 12 (``Z(i) = 1 + (i/n) Z(i-1)``, ``Z(0) = 1``,
``W = Z(n-1)``), equals ``1 +`` Ramanujan's ``Q(n)`` and is
``sqrt(pi n / 2) (1 + o(1))``; see :mod:`repro.stats.ramanujan`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

import numpy as np

from repro.markov.chain import MarkovChain
from repro.markov.lifting import Lifting
from repro.markov.stationary import stationary_distribution

IndividualState = FrozenSet[int]


def counter_individual_chain(n: int, *, sparse: bool = True) -> MarkovChain:
    """The individual chain over non-empty subsets; ``2**n - 1`` states."""
    if n < 1:
        raise ValueError("n must be positive")
    if n > 20:
        raise ValueError(f"individual chain has 2**{n} - 1 states; n too large")

    def successors(state: IndividualState):
        p = 1.0 / n
        for pid in range(n):
            if pid in state:
                yield frozenset([pid]), p
            else:
                yield state | {pid}, p

    initial = frozenset(range(n))  # all processes start with the current value
    def merged(state):
        acc = {}
        for nxt, p in successors(state):
            acc[nxt] = acc.get(nxt, 0.0) + p
        return acc.items()

    return MarkovChain.from_enumeration([initial], merged, sparse=sparse)


def counter_global_chain_enumerated(n: int) -> MarkovChain:
    """The global chain built by per-state BFS enumeration.

    The transition-rule-as-written reference for
    :func:`counter_global_chain`; the fast path reproduces it exactly
    (same state order, same matrix), which the equality tests assert.
    """
    if n < 1:
        raise ValueError("n must be positive")

    def successors(size: int):
        out = [(1, size / n)]
        if size < n:
            out.append((size + 1, 1.0 - size / n))
        return out

    return MarkovChain.from_enumeration([n], successors, sparse=False)


def counter_global_chain(n: int) -> MarkovChain:
    """The global chain over ``|S|``; states ``1..n``.

    Assembled as one arrayed build: BFS from state ``n`` visits states in
    the order ``[n, 1, 2, ..., n - 1]`` (state ``n`` first, then each size
    discovered from its predecessor), so the index of size ``s`` is known
    in closed form — ``0`` for ``s == n``, else ``s``.  Matrix and state
    order are exactly those of :func:`counter_global_chain_enumerated`.
    """
    if n < 1:
        raise ValueError("n must be positive")
    sizes = np.concatenate(([n], np.arange(1, n)))
    matrix = np.zeros((n, n))
    rows = np.arange(n)
    # Every size completes to state 1 with probability size/n...
    matrix[rows, 0 if n == 1 else 1] = sizes / n
    # ...and every size below n grows to size + 1 with the rest.
    grows = sizes < n
    targets = sizes[grows] + 1
    matrix[rows[grows], np.where(targets == n, 0, targets)] = 1.0 - sizes[grows] / n
    return MarkovChain(matrix, [int(size) for size in sizes])


def counter_lifting_map(state: IndividualState) -> int:
    """The collapse ``f``: subset size."""
    return len(state)


def counter_lifting(n: int) -> Lifting:
    """The lifting of Lemma 13, ready for verification."""
    return Lifting(counter_individual_chain(n), counter_global_chain(n), counter_lifting_map)


def counter_system_latency_exact(n: int) -> float:
    """Exact system latency ``W``: expected steps between completions.

    A completion happens on every step from state ``i`` with probability
    ``i/n``; ``W`` is the inverse of the stationary completion rate.  For
    this chain ``W`` also equals the expected return time of state 1
    (every completion lands in state 1), i.e. ``Z(n - 1)``.
    """
    chain = counter_global_chain(n)
    pi = stationary_distribution(chain)
    mu = 0.0
    for size, p in zip(chain.states, pi):
        mu += p * size / n
    return 1.0 / mu


def counter_individual_latency_exact(n: int, pid: int = 0) -> float:
    """Exact individual latency ``W_i`` from the individual chain.

    Lemma 14 proves ``W_i = n W``; this computes it independently from the
    ``2**n - 1`` state chain.  A completion by ``pid`` is a step by
    ``pid`` from any state containing ``pid``.
    """
    chain = counter_individual_chain(n)
    pi = stationary_distribution(chain)
    eta = 0.0
    for state, p in zip(chain.states, pi):
        if pid in state:
            eta += p / n
    return 1.0 / eta


def winning_state_probabilities(n: int) -> np.ndarray:
    """Stationary probabilities of the ``n`` winning states ``{p_i}``.

    Lemma 14: each equals ``pi_1 / n`` where ``pi_1`` is the global
    chain's stationary probability of state 1.
    """
    chain = counter_individual_chain(n)
    pi = stationary_distribution(chain)
    out = np.zeros(n)
    for state, p in zip(chain.states, pi):
        if len(state) == 1:
            (pid,) = tuple(state)
            out[pid] = p
    return out
