"""Markov chains of parallel code (Section 6.2, Algorithm 4).

**Individual chain** ``M_I``: states are counter vectors ``(C_1, ...,
C_n)`` with ``C_i`` in ``{0, ..., q - 1}``; a uniformly chosen process
increments its counter mod ``q``; a process completes an operation
whenever its counter wraps to 0.  The chain is doubly stochastic (every
state has in- and out-degree ``n`` with probability ``1/n``), so its
stationary distribution is uniform over the ``q**n`` states — the fact
behind Lemma 11's exact answers ``W = q`` and ``W_i = n q``.

**System chain** ``M_S``: histograms ``(v_0, ..., v_{q-1})`` counting
processes at each counter value; the lifting map just counts.

**A correction to the paper.**  Section 6.2 calls both chains ergodic;
in fact the total counter sum advances by exactly 1 mod ``q`` per step,
so both chains are periodic with period ``q``.  They are irreducible,
which is all Lemma 11 needs (unique stationary distribution and the
return-time identity).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.markov.chain import MarkovChain
from repro.markov.lifting import Lifting
from repro.markov.stationary import stationary_distribution

IndividualState = Tuple[int, ...]
SystemState = Tuple[int, ...]


def parallel_individual_chain(n: int, q: int, *, sparse: bool = True) -> MarkovChain:
    """The individual chain ``M_I``: ``q**n`` states; keep ``n log q`` small."""
    if n < 1 or q < 1:
        raise ValueError("need n >= 1 and q >= 1")
    if q**n > 600_000:
        raise ValueError(f"individual chain has q**n = {q**n} states; too large")

    def successors(state: IndividualState):
        p = 1.0 / n
        for i in range(n):
            nxt = list(state)
            nxt[i] = (nxt[i] + 1) % q
            yield tuple(nxt), p

    initial = tuple([0] * n)
    return MarkovChain.from_enumeration([initial], successors, sparse=sparse)


def parallel_system_chain(n: int, q: int) -> MarkovChain:
    """The system chain ``M_S`` over counter histograms."""
    if n < 1 or q < 1:
        raise ValueError("need n >= 1 and q >= 1")

    def successors(state: SystemState):
        out = []
        for value in range(q):
            if state[value] == 0:
                continue
            nxt = list(state)
            nxt[value] -= 1
            nxt[(value + 1) % q] += 1
            out.append((tuple(nxt), state[value] / n))
        return out

    initial = tuple([n] + [0] * (q - 1))
    return MarkovChain.from_enumeration([initial], successors, sparse=False)


def parallel_lifting_map(state: IndividualState, q: int) -> SystemState:
    """The collapse ``f``: histogram of counter values."""
    counts = [0] * q
    for value in state:
        counts[value] += 1
    return tuple(counts)


def parallel_lifting(n: int, q: int) -> Lifting:
    """The lifting of Lemma 10, ready for verification."""
    fine = parallel_individual_chain(n, q)
    coarse = parallel_system_chain(n, q)
    return Lifting(fine, coarse, lambda state: parallel_lifting_map(state, q))


def parallel_system_latency_exact(n: int, q: int) -> float:
    """Exact system latency from the system chain; Lemma 11 says ``q``.

    A completion is a transition out of counter value ``q - 1``; the
    stationary probability that a step completes an operation is
    ``E[v_{q-1}] / n`` and the latency is its inverse.
    """
    chain = parallel_system_chain(n, q)
    pi = stationary_distribution(chain)
    mu = 0.0
    for state, p in zip(chain.states, pi):
        mu += p * state[q - 1] / n
    return 1.0 / mu


def parallel_individual_latency_exact(n: int, q: int, pid: int = 0) -> float:
    """Exact individual latency from the individual chain; Lemma 11 says ``nq``.

    A completion by ``pid`` is a step by ``pid`` from a state where its
    counter is ``q - 1``, which has stationary probability
    ``(1/n) * P[C_pid = q - 1]``.
    """
    chain = parallel_individual_chain(n, q)
    pi = stationary_distribution(chain)
    eta = 0.0
    for state, p in zip(chain.states, pi):
        if state[pid] == q - 1:
            eta += p / n
    return 1.0 / eta
