"""Exact chains under *non-uniform* stochastic schedulers.

The paper's Discussion (Section 8) singles out non-uniform stochastic
schedulers as the main open modelling question and conjectures that
"some of the elements of our framework (such as the existence of
liftings) could still be applied".  This module supplies the exact
machinery for small ``n``: the individual chains of the scan-validate
component and of the augmented-CAS counter where process ``i`` is
scheduled with probability ``w_i / sum(w)`` each step.

Two of the paper's phenomena can then be examined exactly:

* the *system* latency is remarkably robust to skew (the system chain
  no longer exists as a lifting — states with the same ``(a, b)`` but
  different identities stop being equivalent — yet the completion rate
  moves only mildly);
* *individual* latencies diverge quickly: a process with half the
  scheduling weight pays far more than twice the latency, because each
  of its (rarer) CAS attempts is also more likely to be invalidated.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.chains.counter import IndividualState as CounterState
from repro.chains.scu import CCAS, OLD_CAS, READ, IndividualState
from repro.markov.chain import MarkovChain
from repro.markov.stationary import stationary_distribution


def _normalise(weights: Sequence[float]) -> np.ndarray:
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w <= 0):
        raise ValueError("all weights must be positive (stochastic scheduler)")
    return w / w.sum()


def scu_weighted_individual_chain(weights: Sequence[float]) -> MarkovChain:
    """Scan-validate individual chain with per-process step probabilities.

    Reduces to :func:`repro.chains.scu.scu_individual_chain` for uniform
    weights.  Exponential state space — keep ``len(weights) <= 10``.
    """
    probs = _normalise(weights)
    n = probs.size
    if n > 12:
        raise ValueError("weighted individual chain is exponential; n too large")

    def successors(state: IndividualState):
        for i in range(n):
            nxt = list(state)
            local = state[i]
            if local == READ:
                nxt[i] = CCAS
            elif local == OLD_CAS:
                nxt[i] = READ
            else:
                for j, other in enumerate(nxt):
                    if other == CCAS:
                        nxt[j] = OLD_CAS
                nxt[i] = READ
            yield tuple(nxt), float(probs[i])

    initial = tuple([READ] * n)
    return MarkovChain.from_enumeration([initial], successors, sparse=True)


def scu_weighted_latencies(
    weights: Sequence[float],
) -> Tuple[float, Dict[int, float]]:
    """Exact (system latency, per-process individual latencies) under a
    skewed stochastic scheduler.

    A step by process ``i`` completes an operation iff ``i`` is in state
    ``CCAS``; the system completion probability is the weighted sum, and
    process ``i``'s completion probability is its own term.
    """
    probs = _normalise(weights)
    n = probs.size
    chain = scu_weighted_individual_chain(weights)
    pi = stationary_distribution(chain)
    eta = np.zeros(n)
    for state, p in zip(chain.states, pi):
        for i in range(n):
            if state[i] == CCAS:
                eta[i] += p * probs[i]
    mu = eta.sum()
    if mu <= 0:
        raise ArithmeticError("no completions in the stationary distribution")
    individual = {i: float(1.0 / eta[i]) for i in range(n)}
    return float(1.0 / mu), individual


def counter_weighted_individual_chain(weights: Sequence[float]) -> MarkovChain:
    """Augmented-counter individual chain with per-process probabilities."""
    probs = _normalise(weights)
    n = probs.size
    if n > 16:
        raise ValueError("weighted counter chain is exponential; n too large")

    def successors(state: CounterState):
        for i in range(n):
            if i in state:
                yield frozenset([i]), float(probs[i])
            else:
                yield state | {i}, float(probs[i])

    initial = frozenset(range(n))

    def merged(state):
        acc: Dict[CounterState, float] = {}
        for nxt, p in successors(state):
            acc[nxt] = acc.get(nxt, 0.0) + p
        return acc.items()

    return MarkovChain.from_enumeration([initial], merged, sparse=True)


def counter_weighted_latencies(
    weights: Sequence[float],
) -> Tuple[float, Dict[int, float]]:
    """Exact latencies of the augmented-CAS counter under skew.

    A step by ``i`` completes iff ``i`` currently holds the register's
    value (``i in S``).
    """
    probs = _normalise(weights)
    n = probs.size
    chain = counter_weighted_individual_chain(weights)
    pi = stationary_distribution(chain)
    eta = np.zeros(n)
    for state, p in zip(chain.states, pi):
        for i in state:
            eta[i] += p * probs[i]
    mu = eta.sum()
    individual = {i: float(1.0 / eta[i]) for i in range(n)}
    return float(1.0 / mu), individual
