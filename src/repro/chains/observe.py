"""Observing chain states inside a running simulation.

The paper's *extended local state* (Section 6.1.1) is defined "from the
viewpoint of the entire system": a process about to CAS is in ``CCAS``
or ``OldCAS`` depending on whether its expected value is still current.
The simulator has exactly the information needed to read this state off
a live run — each process's *pending* operation plus the decision
register's current value — so simulated trajectories can be compared
with the chains state-by-state, not just through summary statistics.
"""

from __future__ import annotations

from typing import Tuple

from repro.chains.scu import CCAS, OLD_CAS, READ
from repro.sim.executor import Simulator
from repro.sim.ops import CAS, Read


def scu_extended_state(
    simulator: Simulator, decision: str = "R"
) -> Tuple[str, ...]:
    """The individual-chain state of a running ``SCU(0, 1)`` simulation.

    Classifies every process by its pending operation: a pending read of
    the decision register is ``READ``; a pending CAS on it is ``CCAS``
    when its expected value matches the register (it would succeed) and
    ``OLD_CAS`` otherwise.
    """
    current = simulator.memory.read(decision)
    states = []
    for process in simulator.processes:
        op = process.pending
        if isinstance(op, Read) and op.register == decision:
            states.append(READ)
        elif isinstance(op, CAS) and op.register == decision:
            states.append(CCAS if op.expected == current else OLD_CAS)
        else:
            raise ValueError(
                f"process {process.pid} has pending {op!r}; not an "
                f"SCU(0, 1) run over register {decision!r}"
            )
    return tuple(states)


def scu_system_state(
    simulator: Simulator, decision: str = "R"
) -> Tuple[int, int]:
    """The system-chain state ``(a, b)`` of a running simulation."""
    extended = scu_extended_state(simulator, decision)
    return extended.count(READ), extended.count(OLD_CAS)
