"""Trajectory sampling from finite Markov chains.

Used throughout the test-suite and benchmarks to cross-check exact
stationary computations against Monte-Carlo estimates.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain, State

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce a seed / Generator / None into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def sample_steps(
    chain: MarkovChain, start: State, rng: RngLike = None
) -> Iterator[State]:
    """Infinite iterator of states visited after ``start`` (excluded)."""
    generator = as_rng(rng)
    matrix = chain.matrix
    states = chain.states
    sparse = sp.issparse(matrix)
    i = chain.index_of(start)
    while True:
        if sparse:
            row = matrix.getrow(i)
            cols, probs = row.indices, row.data
            i = int(generator.choice(cols, p=probs / probs.sum()))
        else:
            i = int(generator.choice(len(states), p=matrix[i]))
        yield states[i]


def sample_path(
    chain: MarkovChain, start: State, steps: int, rng: RngLike = None
) -> List[State]:
    """A path of ``steps`` transitions starting at ``start`` (included).

    Returns ``steps + 1`` states.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    path = [start]
    it = sample_steps(chain, start, rng)
    for _ in range(steps):
        path.append(next(it))
    return path


def empirical_distribution(
    chain: MarkovChain,
    start: State,
    steps: int,
    rng: RngLike = None,
    *,
    burn_in: int = 0,
) -> np.ndarray:
    """Empirical state-occupancy frequencies along one sampled path.

    Visits during the first ``burn_in`` transitions are discarded.  The
    result is indexed like ``chain.states`` and sums to 1.
    """
    if steps <= burn_in:
        raise ValueError("steps must exceed burn_in")
    counts = np.zeros(chain.n_states)
    it = sample_steps(chain, start, rng)
    for t in range(steps):
        state = next(it)
        if t >= burn_in:
            counts[chain.index_of(state)] += 1
    return counts / counts.sum()


def hitting_time_samples(
    chain: MarkovChain,
    start: State,
    target: State,
    samples: int,
    rng: RngLike = None,
    *,
    max_steps: int = 10_000_000,
) -> np.ndarray:
    """Monte-Carlo samples of the hitting time from ``start`` to ``target``.

    Each sample counts transitions until ``target`` is first entered
    (minimum 1, matching the paper's ``T_ij`` with ``n >= 1``).
    """
    generator = as_rng(rng)
    out = np.empty(samples, dtype=np.int64)
    for s in range(samples):
        t = 0
        for state in sample_steps(chain, start, generator):
            t += 1
            if state == target:
                break
            if t >= max_steps:
                raise ArithmeticError(
                    f"no hit within max_steps={max_steps}; target may be unreachable"
                )
        out[s] = t
    return out
