"""Hitting and return times of finite Markov chains.

For a target set ``T``, the expected hitting times ``h_i = E[min {t >= 0 :
X_t in T} | X_0 = i]`` solve the linear system ``h_i = 0`` for ``i in T`` and
``h_i = 1 + sum_j p_ij h_j`` otherwise.  The expected *return* time of a
state equals ``1 / pi(state)`` for ergodic chains (Theorem 1 of the paper);
we provide both the linear-system and the stationary-based computation so
each can validate the other.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.markov.chain import MarkovChain, State
from repro.markov.stationary import stationary_distribution


def expected_hitting_times(
    chain: MarkovChain, targets: Iterable[State]
) -> Dict[State, float]:
    """Expected number of steps to first reach ``targets`` from every state.

    States in ``targets`` get hitting time 0.  Raises if some state cannot
    reach the target set (the linear system is then singular).
    """
    target_idx = {chain.index_of(t) for t in targets}
    if not target_idx:
        raise ValueError("at least one target state is required")
    k = chain.n_states
    others = [i for i in range(k) if i not in target_idx]
    result = {chain.states[i]: 0.0 for i in target_idx}
    if not others:
        return result

    dense = not chain.is_sparse
    matrix = chain.matrix
    try:
        if dense:
            sub = matrix[np.ix_(others, others)]
            a = np.eye(len(others)) - sub
            h = np.linalg.solve(a, np.ones(len(others)))
        else:
            sub = matrix[others, :][:, others]
            a = sp.identity(len(others), format="csr") - sub.tocsr()
            h = spla.spsolve(a, np.ones(len(others)))
    except np.linalg.LinAlgError as exc:
        raise ArithmeticError(
            "hitting-time system is singular; some state cannot reach the targets"
        ) from exc

    h = np.asarray(h, dtype=float).ravel()
    if np.any(~np.isfinite(h)) or np.any(h < -1e-6):
        raise ArithmeticError(
            "hitting-time system is singular; some state cannot reach the targets"
        )
    for pos, i in enumerate(others):
        result[chain.states[i]] = float(h[pos])
    return result


def expected_return_time(chain: MarkovChain, state: State) -> float:
    """Expected return time of ``state``: E[min {t >= 1 : X_t = state} | X_0 = state].

    Computed by one step from ``state`` followed by hitting times back to it.
    """
    hits = expected_hitting_times(chain, [state])
    successors = chain.successors(state)
    return 1.0 + sum(p * hits[s] for s, p in successors.items())


def return_times_from_stationary(chain: MarkovChain) -> Dict[State, float]:
    """Expected return times of all states via ``h_ii = 1 / pi_i`` (Theorem 1).

    Valid for ergodic chains; states with stationary probability below
    machine precision map to ``inf``.
    """
    pi = stationary_distribution(chain)
    out: Dict[State, float] = {}
    for s, p in zip(chain.states, pi):
        out[s] = float(1.0 / p) if p > 1e-300 else float("inf")
    return out


def fundamental_matrix(chain: MarkovChain, absorbing: Sequence[State]) -> np.ndarray:
    """Fundamental matrix ``N = (I - Q)^-1`` of the chain absorbed at ``absorbing``.

    ``Q`` is the transition matrix restricted to transient (non-absorbing)
    states; ``N[i, j]`` is the expected number of visits to transient state
    ``j`` starting from transient state ``i`` before absorption.  Rows and
    columns are ordered by the chain's state order with absorbing states
    removed.

    Sparse chains never densify the full transition matrix: ``I - Q`` is
    restricted and factorised sparsely, and only the (inherently dense)
    ``N`` itself is materialised.
    """
    absorbing_idx = {chain.index_of(s) for s in absorbing}
    others = [i for i in range(chain.n_states) if i not in absorbing_idx]
    if not others:
        raise ValueError("all states are absorbing; no transient part")
    m = len(others)
    if chain.is_sparse:
        q = chain.matrix.tocsr()[others, :][:, others]
        a = sp.identity(m, format="csc") - q.tocsc()
        lu = spla.splu(a)
        return lu.solve(np.eye(m))
    q = chain.matrix[np.ix_(others, others)]
    return np.linalg.inv(np.eye(m) - q)
