"""General finite Markov chain substrate.

This package provides the Markov machinery the paper's analysis relies on
(Section 3 of the paper): time-invariant finite chains, ergodicity checks,
stationary distributions, hitting/return times, ergodic flows, trajectory
sampling and Markov chain *lifting* verification.

The chains specific to the paper (individual/system chains of the
scan-validate component, the parallel-code chains, and the augmented-CAS
counter chains) live in :mod:`repro.chains` and are built on top of this
package.
"""

from repro.markov.chain import MarkovChain
from repro.markov.hitting import (
    expected_hitting_times,
    expected_return_time,
    fundamental_matrix,
    return_times_from_stationary,
)
from repro.markov.lifting import (
    Lifting,
    collapse_chain,
    collapse_distribution,
    ergodic_flow_matrix,
    verify_lifting,
)
from repro.markov.mixing import distance_to_stationary, mixing_time
from repro.markov.phasetype import (
    phase_type_mean,
    phase_type_pmf,
    phase_type_quantile,
    phase_type_survival,
)
from repro.markov.properties import (
    communicating_classes,
    is_aperiodic,
    is_ergodic,
    is_irreducible,
    period,
)
from repro.markov.spectral import relaxation_time, slem, spectral_gap
from repro.markov.sampling import empirical_distribution, sample_path, sample_steps
from repro.markov.stationary import stationary_distribution

__all__ = [
    "MarkovChain",
    "Lifting",
    "collapse_chain",
    "collapse_distribution",
    "communicating_classes",
    "distance_to_stationary",
    "empirical_distribution",
    "ergodic_flow_matrix",
    "expected_hitting_times",
    "expected_return_time",
    "fundamental_matrix",
    "is_aperiodic",
    "is_ergodic",
    "is_irreducible",
    "mixing_time",
    "period",
    "phase_type_mean",
    "phase_type_pmf",
    "phase_type_quantile",
    "phase_type_survival",
    "relaxation_time",
    "return_times_from_stationary",
    "sample_path",
    "sample_steps",
    "slem",
    "spectral_gap",
    "stationary_distribution",
    "verify_lifting",
]
