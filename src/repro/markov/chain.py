"""Finite, time-invariant, discrete-time Markov chains.

A :class:`MarkovChain` pairs a row-stochastic transition matrix with a list
of hashable state labels.  Matrices may be dense (:class:`numpy.ndarray`)
or sparse (:class:`scipy.sparse.csr_matrix`); the individual chains of the
paper are exponential in the number of processes (``3**n - 1`` states for
the scan-validate component), so sparse storage matters.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

State = Hashable

_ROW_SUM_ATOL = 1e-10


class MarkovChain:
    """A finite time-invariant Markov chain over labelled states.

    Parameters
    ----------
    matrix:
        Row-stochastic transition matrix, dense or sparse, shape ``(k, k)``.
    states:
        Optional sequence of ``k`` distinct hashable labels.  Defaults to
        ``range(k)``.
    validate:
        When true (default), check shape, non-negativity and that every row
        sums to 1 (within a small tolerance).
    """

    def __init__(
        self,
        matrix,
        states: Sequence[State] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        if sp.issparse(matrix):
            matrix = matrix.tocsr().astype(float)
        else:
            matrix = np.asarray(matrix, dtype=float)
            if matrix.ndim != 2:
                raise ValueError(f"transition matrix must be 2-D, got ndim={matrix.ndim}")
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition matrix must be square, got shape {matrix.shape}")
        k = matrix.shape[0]
        if k == 0:
            raise ValueError("a Markov chain needs at least one state")

        if states is None:
            states = list(range(k))
        else:
            states = list(states)
            if len(states) != k:
                raise ValueError(
                    f"{len(states)} state labels for a {k}-state transition matrix"
                )
        index: Dict[State, int] = {s: i for i, s in enumerate(states)}
        if len(index) != k:
            raise ValueError("state labels must be distinct")

        if validate:
            _check_stochastic(matrix)

        self._matrix = matrix
        self._states: List[State] = states
        self._index = index

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        transitions: Mapping[State, Mapping[State, float]],
        *,
        sparse: bool = False,
        validate: bool = True,
    ) -> "MarkovChain":
        """Build a chain from ``{state: {successor: probability}}``.

        States are the union of all keys and successors, ordered by first
        appearance (keys first, then successors).
        """
        states: List[State] = []
        seen = set()
        for s in transitions:
            if s not in seen:
                seen.add(s)
                states.append(s)
        for succs in transitions.values():
            for t in succs:
                if t not in seen:
                    seen.add(t)
                    states.append(t)
        index = {s: i for i, s in enumerate(states)}
        k = len(states)
        if sparse:
            mat = sp.lil_matrix((k, k))
        else:
            mat = np.zeros((k, k))
        for s, succs in transitions.items():
            i = index[s]
            for t, p in succs.items():
                mat[i, index[t]] = p
        if sparse:
            mat = mat.tocsr()
        return cls(mat, states, validate=validate)

    @classmethod
    def from_enumeration(
        cls,
        initial_states: Iterable[State],
        successors: Callable[[State], Iterable[Tuple[State, float]]],
        *,
        sparse: bool = True,
        max_states: int = 5_000_000,
        validate: bool = True,
    ) -> "MarkovChain":
        """Build a chain by exploring the state space from seed states.

        ``successors(state)`` yields ``(next_state, probability)`` pairs.
        Exploration is breadth-first over states reachable from
        ``initial_states``.  This is how the paper-specific chains in
        :mod:`repro.chains` are constructed.
        """
        states: List[State] = []
        index: Dict[State, int] = {}
        frontier: List[State] = []
        for s in initial_states:
            if s not in index:
                index[s] = len(states)
                states.append(s)
                frontier.append(s)
        if not states:
            raise ValueError("at least one initial state is required")

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        head = 0
        while head < len(frontier):
            s = frontier[head]
            head += 1
            i = index[s]
            for t, p in successors(s):
                if p < 0:
                    raise ValueError(f"negative transition probability {p} from {s!r}")
                if p == 0:
                    continue
                j = index.get(t)
                if j is None:
                    if len(states) >= max_states:
                        raise ValueError(
                            f"state space exceeded max_states={max_states} "
                            "during enumeration"
                        )
                    j = len(states)
                    index[t] = j
                    states.append(t)
                    frontier.append(t)
                rows.append(i)
                cols.append(j)
                vals.append(p)

        k = len(states)
        mat = sp.coo_matrix((vals, (rows, cols)), shape=(k, k)).tocsr()
        if not sparse:
            mat = mat.toarray()
        return cls(mat, states, validate=validate)

    # -- basic accessors -------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return self._matrix.shape[0]

    @property
    def states(self) -> List[State]:
        """State labels, in matrix order."""
        return list(self._states)

    @property
    def matrix(self):
        """The transition matrix (dense ndarray or sparse CSR)."""
        return self._matrix

    @property
    def is_sparse(self) -> bool:
        """Whether the transition matrix is stored sparsely."""
        return sp.issparse(self._matrix)

    def dense(self) -> np.ndarray:
        """The transition matrix as a dense :class:`numpy.ndarray`."""
        if self.is_sparse:
            return self._matrix.toarray()
        return np.array(self._matrix, copy=True)

    def index_of(self, state: State) -> int:
        """Matrix index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r}") from None

    def __contains__(self, state: State) -> bool:
        return state in self._index

    def __len__(self) -> int:
        return self.n_states

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return f"MarkovChain(n_states={self.n_states}, {kind})"

    # -- probabilities ----------------------------------------------------------

    def probability(self, source: State, target: State) -> float:
        """One-step transition probability between two labelled states."""
        i, j = self.index_of(source), self.index_of(target)
        return float(self._matrix[i, j])

    def successors(self, state: State) -> Dict[State, float]:
        """Map of successor states to their transition probabilities."""
        i = self.index_of(state)
        if self.is_sparse:
            row = self._matrix.getrow(i)
            return {
                self._states[j]: float(v)
                for j, v in zip(row.indices, row.data)
                if v != 0.0
            }
        row = self._matrix[i]
        return {self._states[j]: float(v) for j in np.nonzero(row)[0] for v in [row[j]]}

    def step_distribution(self, distribution: np.ndarray) -> np.ndarray:
        """One step of the chain applied to a row state-vector."""
        distribution = np.asarray(distribution, dtype=float)
        if distribution.shape != (self.n_states,):
            raise ValueError(
                f"distribution must have shape ({self.n_states},), "
                f"got {distribution.shape}"
            )
        return np.asarray(distribution @ self._matrix).ravel()

    def evolve(self, distribution: np.ndarray, steps: int) -> np.ndarray:
        """Apply ``steps`` chain steps to a row state-vector."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        out = np.asarray(distribution, dtype=float)
        for _ in range(steps):
            out = self.step_distribution(out)
        return out

    def k_step_probability(self, source: State, target: State, steps: int) -> float:
        """``p^(k)_{ij}``: probability of being at ``target`` exactly
        ``steps`` steps after ``source``."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        distribution = np.zeros(self.n_states)
        distribution[self.index_of(source)] = 1.0
        distribution = self.evolve(distribution, steps)
        return float(distribution[self.index_of(target)])

    def restricted_to(self, keep: Sequence[State]) -> "MarkovChain":
        """Sub-chain on a subset of states (rows renormalised).

        Useful for conditioning on never leaving a set of states; raises if
        some kept state has zero probability of staying within the set.
        """
        idx = [self.index_of(s) for s in keep]
        sub = self.dense()[np.ix_(idx, idx)]
        sums = sub.sum(axis=1)
        if np.any(sums <= 0):
            bad = [keep[i] for i in np.nonzero(sums <= 0)[0]]
            raise ValueError(f"states {bad!r} leave the kept set with probability 1")
        sub = sub / sums[:, None]
        return MarkovChain(sub, list(keep))


def _check_stochastic(matrix) -> None:
    """Raise if the matrix has negative entries or non-unit row sums."""
    if sp.issparse(matrix):
        if matrix.nnz and matrix.data.min() < -_ROW_SUM_ATOL:
            raise ValueError("transition matrix has negative entries")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    else:
        if matrix.size and matrix.min() < -_ROW_SUM_ATOL:
            raise ValueError("transition matrix has negative entries")
        row_sums = matrix.sum(axis=1)
    bad = np.nonzero(np.abs(row_sums - 1.0) > 1e-8)[0]
    if bad.size:
        raise ValueError(
            f"rows {bad[:5].tolist()} sum to {row_sums[bad[:5]].tolist()}, expected 1"
        )
