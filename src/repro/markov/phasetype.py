"""Discrete phase-type distributions.

The time between two "marked" transitions of a stationary chain (e.g.
two successful CASes) is phase-type: starting from the post-mark state
distribution ``psi``, the chain moves through the substochastic matrix
``D`` of unmarked transitions until a marked transition (probability
vector ``u``) fires:

    P(T = k) = psi D^(k-1) u,       E[T] = psi (I - D)^(-1) 1.

The paper only derives expectations (the latencies); phase-type machinery
gives the *entire distribution* of the time between completions, which
the benchmarks compare against simulated histograms.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp


def _as_dense(matrix) -> np.ndarray:
    if sp.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


def validate_phase_type(start: np.ndarray, sub: np.ndarray, mark: np.ndarray) -> None:
    """Check the pieces form a proper phase-type specification."""
    start = np.asarray(start, dtype=float)
    sub = _as_dense(sub)
    mark = np.asarray(mark, dtype=float)
    k = start.size
    if sub.shape != (k, k) or mark.shape != (k,):
        raise ValueError("dimension mismatch between start, sub and mark")
    if abs(start.sum() - 1.0) > 1e-8 or np.any(start < -1e-12):
        raise ValueError("start must be a probability vector")
    rows = sub.sum(axis=1) + mark
    if np.any(np.abs(rows - 1.0) > 1e-8):
        raise ValueError("sub + mark must be row-stochastic")
    if np.any(sub < -1e-12) or np.any(mark < -1e-12):
        raise ValueError("negative probabilities")


def phase_type_pmf(
    start: np.ndarray, sub, mark: np.ndarray, max_k: int
) -> np.ndarray:
    """``P(T = k)`` for ``k = 1 .. max_k``."""
    validate_phase_type(start, sub, mark)
    sub = _as_dense(sub)
    mark = np.asarray(mark, dtype=float)
    pmf = np.empty(max_k)
    current = np.asarray(start, dtype=float)
    for k in range(max_k):
        pmf[k] = float(current @ mark)
        current = current @ sub
    return pmf


def phase_type_mean(start: np.ndarray, sub, mark: np.ndarray) -> float:
    """``E[T] = start (I - sub)^(-1) 1``."""
    validate_phase_type(start, sub, mark)
    sub = _as_dense(sub)
    k = sub.shape[0]
    expected = np.linalg.solve(np.eye(k) - sub.T, np.asarray(start, dtype=float))
    return float(expected.sum())


def phase_type_survival(
    start: np.ndarray, sub, mark: np.ndarray, max_k: int
) -> np.ndarray:
    """``P(T > k)`` for ``k = 0 .. max_k - 1``."""
    validate_phase_type(start, sub, mark)
    sub = _as_dense(sub)
    out = np.empty(max_k)
    current = np.asarray(start, dtype=float)
    for k in range(max_k):
        out[k] = float(current.sum())
        current = current @ sub
    return out


def phase_type_quantile(
    start: np.ndarray, sub, mark: np.ndarray, q: float, *, max_k: int = 1_000_000
) -> int:
    """Smallest ``k`` with ``P(T <= k) >= q``."""
    if not 0 < q < 1:
        raise ValueError("q must lie in (0, 1)")
    validate_phase_type(start, sub, mark)
    sub = _as_dense(sub)
    mark = np.asarray(mark, dtype=float)
    cum = 0.0
    current = np.asarray(start, dtype=float)
    for k in range(1, max_k + 1):
        cum += float(current @ mark)
        if cum >= q:
            return k
        current = current @ sub
    raise ArithmeticError(f"quantile {q} not reached within {max_k} steps")
