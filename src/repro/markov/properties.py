"""Structural properties of finite Markov chains.

Irreducibility, periodicity and ergodicity (Section 3 of the paper), computed
from the directed graph of non-zero transitions.
"""

from __future__ import annotations

import math
from typing import List

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain, State


def transition_graph(chain: MarkovChain) -> nx.DiGraph:
    """The directed graph with an edge for every non-zero transition."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(chain.n_states))
    matrix = chain.matrix
    if sp.issparse(matrix):
        coo = matrix.tocoo()
        graph.add_edges_from(
            (int(i), int(j)) for i, j, v in zip(coo.row, coo.col, coo.data) if v > 0
        )
    else:
        rows, cols = np.nonzero(matrix)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def communicating_classes(chain: MarkovChain) -> List[List[State]]:
    """Communicating classes (strongly connected components), as state labels."""
    graph = transition_graph(chain)
    return [
        [chain.states[i] for i in sorted(component)]
        for component in nx.strongly_connected_components(graph)
    ]


def is_irreducible(chain: MarkovChain) -> bool:
    """Whether every state is reachable from every other state."""
    return nx.is_strongly_connected(transition_graph(chain))


def period(chain: MarkovChain, state: State) -> int:
    """The period of a state: gcd of lengths of closed walks through it.

    Computed via a BFS level-labelling of the state's strongly connected
    component: the gcd of ``level(u) + 1 - level(v)`` over edges ``u -> v``
    within the component equals the component's (and hence the state's)
    period.
    """
    start = chain.index_of(state)
    graph = transition_graph(chain)
    component = nx.node_connected_component(graph.to_undirected(as_view=True), start)
    scc = None
    for comp in nx.strongly_connected_components(graph.subgraph(component)):
        if start in comp:
            scc = comp
            break
    if scc is None or len(scc) == 1 and not graph.has_edge(start, start):
        raise ValueError(f"state {state!r} has no closed walk; period undefined")

    levels = {start: 0}
    queue = [start]
    g = 0
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v in graph.successors(u):
            if v not in scc:
                continue
            if v not in levels:
                levels[v] = levels[u] + 1
                queue.append(v)
            else:
                g = math.gcd(g, levels[u] + 1 - levels[v])
    return abs(g)


def is_aperiodic(chain: MarkovChain) -> bool:
    """Whether every state of the chain is aperiodic.

    For an irreducible chain it suffices to check one state; in general we
    rely on :func:`networkx.is_aperiodic` over the transition graph, after
    confirming every node lies on some cycle (states with no return path
    have undefined period and make the chain trivially non-ergodic).
    """
    graph = transition_graph(chain)
    if is_irreducible(chain):
        return period(chain, chain.states[0]) == 1
    return nx.is_aperiodic(graph)


def is_ergodic(chain: MarkovChain) -> bool:
    """Whether the chain is irreducible and aperiodic.

    Ergodic finite chains converge to their unique stationary distribution
    from any initial distribution (Theorem 2 of the paper).
    """
    if not is_irreducible(chain):
        return False
    return period(chain, chain.states[0]) == 1
