"""Markov chain lifting (Section 3 of the paper).

Let ``M`` (coarse) and ``M'`` (fine) be ergodic chains on state spaces ``S``
and ``S'`` with ergodic flows ``Q`` and ``Q'`` (``Q_ij = pi_i p_ij``).  ``M'``
is a *lifting* of ``M`` if there is a mapping ``f : S' -> S`` with

    Q_ij  =  sum over x in f^-1(i), y in f^-1(j) of  Q'_xy     for all i, j.

The paper uses liftings to collapse the exponential per-process ("individual")
chains onto small system chains while preserving stationary structure
(Lemma 1: ``pi(v) = sum_{x in f^-1(v)} pi'(x)``).

This module provides the generic machinery: computing ergodic flows,
verifying the lifting condition for a candidate mapping, and collapsing a
fine chain into the coarse chain its mapping induces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain, State
from repro.markov.stationary import stationary_distribution


def ergodic_flow_matrix(
    chain: MarkovChain, pi: Optional[np.ndarray] = None
):
    """Ergodic flow matrix ``Q`` with ``Q_ij = pi_i p_ij``.

    Satisfies ``sum_i Q_ij = sum_i Q_ji`` (flow conservation) and
    ``sum_ij Q_ij = 1``.  Returns the same storage kind as the chain's
    transition matrix.
    """
    if pi is None:
        pi = stationary_distribution(chain)
    pi = np.asarray(pi, dtype=float)
    if pi.shape != (chain.n_states,):
        raise ValueError(f"pi must have shape ({chain.n_states},), got {pi.shape}")
    matrix = chain.matrix
    if sp.issparse(matrix):
        return sp.diags(pi) @ matrix
    return pi[:, None] * matrix


@dataclass(frozen=True)
class LiftingReport:
    """Outcome of a lifting verification.

    Attributes
    ----------
    is_lifting:
        Whether the flow-homomorphism condition holds within tolerance.
    max_flow_error:
        Largest absolute deviation ``|Q_ij - sum Q'_xy|`` over coarse pairs.
    max_stationary_error:
        Largest absolute deviation in Lemma 1,
        ``|pi(v) - sum_{x in f^-1(v)} pi'(x)|``.
    """

    is_lifting: bool
    max_flow_error: float
    max_stationary_error: float


class Lifting:
    """A candidate lifting of a coarse chain by a fine chain.

    Parameters
    ----------
    fine:
        The detailed chain ``M'`` (e.g. the paper's individual chain).
    coarse:
        The collapsed chain ``M`` (e.g. the paper's system chain).
    mapping:
        ``f : fine state -> coarse state``; every fine state must map to an
        existing coarse state.
    """

    def __init__(
        self,
        fine: MarkovChain,
        coarse: MarkovChain,
        mapping: Callable[[State], State],
    ) -> None:
        self.fine = fine
        self.coarse = coarse
        self.mapping = mapping
        self._fine_to_coarse = np.empty(fine.n_states, dtype=np.int64)
        preimages: Dict[int, List[int]] = {i: [] for i in range(coarse.n_states)}
        for x_idx, x in enumerate(fine.states):
            v = mapping(x)
            v_idx = coarse.index_of(v)
            self._fine_to_coarse[x_idx] = v_idx
            preimages[v_idx].append(x_idx)
        empty = [coarse.states[i] for i, pre in preimages.items() if not pre]
        if empty:
            raise ValueError(f"coarse states {empty[:5]!r} have empty preimages")
        self._preimages = preimages

    def preimage(self, coarse_state: State) -> List[State]:
        """Fine states mapping onto a coarse state."""
        v_idx = self.coarse.index_of(coarse_state)
        return [self.fine.states[i] for i in self._preimages[v_idx]]

    def collapse_vector(self, fine_vector: np.ndarray) -> np.ndarray:
        """Push a fine state-vector forward: sums entries over preimages."""
        fine_vector = np.asarray(fine_vector, dtype=float)
        if fine_vector.shape != (self.fine.n_states,):
            raise ValueError(
                f"vector must have shape ({self.fine.n_states},), "
                f"got {fine_vector.shape}"
            )
        out = np.zeros(self.coarse.n_states)
        np.add.at(out, self._fine_to_coarse, fine_vector)
        return out

    def collapsed_flows(
        self, fine_pi: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fine ergodic flows aggregated over coarse state pairs.

        Returns a dense ``(k, k)`` matrix with entry ``(i, j)`` equal to
        ``sum_{x in f^-1(i), y in f^-1(j)} Q'_xy``.
        """
        flows = ergodic_flow_matrix(self.fine, fine_pi)
        k = self.coarse.n_states
        out = np.zeros((k, k))
        if sp.issparse(flows):
            coo = flows.tocoo()
            np.add.at(
                out,
                (self._fine_to_coarse[coo.row], self._fine_to_coarse[coo.col]),
                coo.data,
            )
        else:
            rows, cols = np.nonzero(flows)
            np.add.at(
                out,
                (self._fine_to_coarse[rows], self._fine_to_coarse[cols]),
                flows[rows, cols],
            )
        return out

    def verify(self, *, atol: float = 1e-9) -> LiftingReport:
        """Check the lifting condition and Lemma 1 numerically."""
        fine_pi = stationary_distribution(self.fine)
        coarse_pi = stationary_distribution(self.coarse)
        coarse_flows = ergodic_flow_matrix(self.coarse, coarse_pi)
        if sp.issparse(coarse_flows):
            coarse_flows = coarse_flows.toarray()
        aggregated = self.collapsed_flows(fine_pi)
        flow_error = float(np.abs(coarse_flows - aggregated).max())
        stationary_error = float(
            np.abs(coarse_pi - self.collapse_vector(fine_pi)).max()
        )
        return LiftingReport(
            is_lifting=flow_error <= atol,
            max_flow_error=flow_error,
            max_stationary_error=stationary_error,
        )


def verify_lifting(
    fine: MarkovChain,
    coarse: MarkovChain,
    mapping: Callable[[State], State],
    *,
    atol: float = 1e-9,
) -> LiftingReport:
    """One-shot verification that ``fine`` lifts ``coarse`` under ``mapping``."""
    return Lifting(fine, coarse, mapping).verify(atol=atol)


def collapse_chain(
    fine: MarkovChain,
    mapping: Callable[[State], State],
) -> MarkovChain:
    """Collapse a fine ergodic chain into the coarse chain its mapping induces.

    The coarse transition probabilities are recovered from aggregated
    ergodic flows: ``p_ij = (sum Q'_xy) / (sum_{x in f^-1(i)} pi'_x)``.
    When the mapping satisfies the lifting condition against *some* coarse
    chain, this reconstructs exactly that chain.
    """
    fine_pi = stationary_distribution(fine)
    coarse_states: List[State] = []
    seen = {}
    fine_to_coarse = np.empty(fine.n_states, dtype=np.int64)
    for x_idx, x in enumerate(fine.states):
        v = mapping(x)
        if v not in seen:
            seen[v] = len(coarse_states)
            coarse_states.append(v)
        fine_to_coarse[x_idx] = seen[v]

    k = len(coarse_states)
    flows = ergodic_flow_matrix(fine, fine_pi)
    agg = np.zeros((k, k))
    if sp.issparse(flows):
        coo = flows.tocoo()
        np.add.at(agg, (fine_to_coarse[coo.row], fine_to_coarse[coo.col]), coo.data)
    else:
        rows, cols = np.nonzero(flows)
        np.add.at(agg, (fine_to_coarse[rows], fine_to_coarse[cols]), flows[rows, cols])

    coarse_pi = np.zeros(k)
    np.add.at(coarse_pi, fine_to_coarse, fine_pi)
    if np.any(coarse_pi <= 0):
        raise ArithmeticError("a coarse state has zero stationary mass")
    matrix = agg / coarse_pi[:, None]
    # Round-off can leave rows summing to 1 +- 1e-12; renormalise.
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix, coarse_states)


def collapse_distribution(
    fine: MarkovChain,
    coarse: MarkovChain,
    mapping: Callable[[State], State],
    fine_vector: np.ndarray,
) -> np.ndarray:
    """Push a fine state-vector forward through a mapping (Lemma 1 form)."""
    return Lifting(fine, coarse, mapping).collapse_vector(fine_vector)
