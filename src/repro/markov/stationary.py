"""Stationary distributions of finite Markov chains.

The stationary distribution pi satisfies ``pi = pi @ P`` (row vector
convention, matching the paper).  Two solvers are provided:

``solve``
    Direct sparse/dense linear solve of ``(P^T - I) pi^T = 0`` with the
    normalisation constraint folded in.  Exact up to floating point; the
    default for chains that fit in memory.
``power``
    Power iteration ``pi <- pi @ P``; useful as an independent
    cross-check and for very large sparse chains.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.markov.chain import MarkovChain


def stationary_distribution(
    chain: MarkovChain,
    *,
    method: str = "solve",
    tol: float = 1e-12,
    max_iterations: int = 1_000_000,
) -> np.ndarray:
    """Stationary distribution of an ergodic chain, as a row vector.

    Parameters
    ----------
    chain:
        The chain; must be ergodic for the result to be the unique
        limiting distribution (this is not re-checked here — use
        :func:`repro.markov.properties.is_ergodic`).
    method:
        ``"solve"`` (default) or ``"power"``.
    tol:
        Convergence tolerance for power iteration (L1 change per sweep).
    max_iterations:
        Iteration cap for power iteration.
    """
    if method == "solve":
        return _solve_stationary(chain)
    if method == "power":
        return _power_stationary(chain, tol=tol, max_iterations=max_iterations)
    raise ValueError(f"unknown method {method!r}; expected 'solve' or 'power'")


def _solve_stationary(chain: MarkovChain) -> np.ndarray:
    k = chain.n_states
    if k == 1:
        return np.array([1.0])
    matrix = chain.matrix
    if sp.issparse(matrix):
        # (P^T - I) x = 0 with sum(x) = 1: replace the last equation.
        a = (matrix.T - sp.identity(k, format="csr")).tolil()
        a[k - 1, :] = 1.0
        b = np.zeros(k)
        b[k - 1] = 1.0
        x = spla.spsolve(a.tocsr(), b)
    else:
        a = matrix.T - np.eye(k)
        a[k - 1, :] = 1.0
        b = np.zeros(k)
        b[k - 1] = 1.0
        x = np.linalg.solve(a, b)
    x = np.asarray(x, dtype=float).ravel()
    # Clip tiny negative round-off and renormalise.
    x = np.clip(x, 0.0, None)
    total = x.sum()
    if total <= 0:
        raise ArithmeticError("stationary solve produced a zero vector")
    return x / total


def _power_stationary(
    chain: MarkovChain, *, tol: float, max_iterations: int
) -> np.ndarray:
    k = chain.n_states
    pi = np.full(k, 1.0 / k)
    for _ in range(max_iterations):
        nxt = chain.step_distribution(pi)
        if np.abs(nxt - pi).sum() < tol:
            return nxt / nxt.sum()
        pi = nxt
    raise ArithmeticError(
        f"power iteration did not converge within {max_iterations} iterations"
    )
