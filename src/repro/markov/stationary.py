"""Stationary distributions of finite Markov chains.

The stationary distribution pi satisfies ``pi = pi @ P`` (row vector
convention, matching the paper).  Three solvers are provided:

``solve``
    Direct sparse/dense linear solve of ``(P^T - I) pi^T = 0`` with the
    normalisation constraint folded in.  Exact up to floating point; the
    default for chains that fit in memory.  Sparse chains stay sparse
    end to end — the constrained system is assembled CSR-native, never
    densified.
``power``
    *Lazy* power iteration ``pi <- (pi @ P + pi) / 2``; useful as an
    independent cross-check and for very large sparse chains.  The lazy
    chain ``(P + I) / 2`` has exactly the stationary distribution of
    ``P`` and is aperiodic whenever ``P`` is irreducible, so iteration
    converges even for periodic chains — the paper's scan-validate
    chains all have period 2 (every step flips the parity of the READ
    count), where plain iteration would oscillate forever.
``auto``
    ``solve`` below :data:`AUTO_POWER_THRESHOLD` states, ``power``
    (falling back to ``solve`` on non-convergence) for sparse chains at
    or above it — the sparse-first policy the exact-latency solvers
    use, so million-state chains never hit a superlinear direct solve
    by default.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.markov.chain import MarkovChain

#: ``method="auto"`` switches from the direct solve to power iteration
#: for sparse chains with at least this many states.
AUTO_POWER_THRESHOLD = 200_000


def stationary_distribution(
    chain: MarkovChain,
    *,
    method: str = "solve",
    tol: float = 1e-12,
    max_iterations: int = 1_000_000,
) -> np.ndarray:
    """Stationary distribution of an irreducible chain, as a row vector.

    Parameters
    ----------
    chain:
        The chain; must be irreducible for the result to be the unique
        stationary distribution (this is not re-checked here — use
        :func:`repro.markov.properties.is_ergodic`).
    method:
        ``"solve"`` (default), ``"power"``, or ``"auto"`` (sparse-first:
        direct solve for small chains, power iteration with a solve
        fallback for large sparse ones).
    tol:
        Convergence tolerance for power iteration (L1 change per sweep).
    max_iterations:
        Iteration cap for power iteration.
    """
    if method == "solve":
        return _solve_stationary(chain)
    if method == "power":
        return _power_stationary(chain, tol=tol, max_iterations=max_iterations)
    if method == "auto":
        if sp.issparse(chain.matrix) and chain.n_states >= AUTO_POWER_THRESHOLD:
            try:
                return _power_stationary(
                    chain, tol=tol, max_iterations=max_iterations
                )
            except ArithmeticError:
                return _solve_stationary(chain)
        return _solve_stationary(chain)
    raise ValueError(
        f"unknown method {method!r}; expected 'solve', 'power' or 'auto'"
    )


def _solve_stationary(chain: MarkovChain) -> np.ndarray:
    k = chain.n_states
    if k == 1:
        return np.array([1.0])
    matrix = chain.matrix
    if sp.issparse(matrix):
        # (P^T - I) x = 0 with sum(x) = 1: replace the last equation.
        # Assembled CSR-native (slice + vstack); a LIL round-trip here
        # costs a dense-row materialisation per state at million-state
        # scale.
        a = (matrix.T - sp.identity(k, format="csr")).tocsr()
        ones_row = sp.csr_matrix(np.ones((1, k)))
        a = sp.vstack([a[: k - 1, :], ones_row], format="csr")
        b = np.zeros(k)
        b[k - 1] = 1.0
        x = spla.spsolve(a, b)
    else:
        a = matrix.T - np.eye(k)
        a[k - 1, :] = 1.0
        b = np.zeros(k)
        b[k - 1] = 1.0
        x = np.linalg.solve(a, b)
    x = np.asarray(x, dtype=float).ravel()
    # Clip tiny negative round-off and renormalise.
    x = np.clip(x, 0.0, None)
    total = x.sum()
    if total <= 0:
        raise ArithmeticError("stationary solve produced a zero vector")
    return x / total


def _power_stationary(
    chain: MarkovChain, *, tol: float, max_iterations: int
) -> np.ndarray:
    k = chain.n_states
    pi = np.full(k, 1.0 / k)
    for _ in range(max_iterations):
        # Lazy step: iterate (P + I) / 2, which shares P's stationary
        # distribution but is aperiodic, so periodic chains (period 2
        # for every scan-validate chain) converge instead of cycling.
        nxt = 0.5 * (chain.step_distribution(pi) + pi)
        if np.abs(nxt - pi).sum() < tol:
            return nxt / nxt.sum()
        pi = nxt
    raise ArithmeticError(
        f"power iteration did not converge within {max_iterations} iterations"
    )
