"""Spectral analysis of finite Markov chains.

The second-largest eigenvalue modulus (SLEM) controls how fast an
ergodic chain forgets its initial state (relaxation time
``1 / (1 - SLEM)``).  For the paper's chains this quantifies two things:

* the *periodicity finding*: the scan-validate and parallel-code chains
  have SLEM exactly 1 (eigenvalues on the unit circle at the roots of
  unity of their period), the spectral signature of why they never mix
  in distribution;
* the augmented-counter chains are genuinely ergodic with SLEM < 1, and
  their relaxation time grows only like ``sqrt(n)`` — the same scale as
  the latency, so simulations equilibrate quickly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.markov.chain import MarkovChain

_DENSE_LIMIT = 3_000


def eigenvalues(chain: MarkovChain, k: int = 6) -> np.ndarray:
    """Leading eigenvalues of the transition matrix, by modulus.

    Dense solve below ``_DENSE_LIMIT`` states; sparse Arnoldi above
    (returns ``k`` eigenvalues).
    """
    matrix = chain.matrix
    n = chain.n_states
    if n <= _DENSE_LIMIT:
        dense = matrix.toarray() if sp.issparse(matrix) else matrix
        values = np.linalg.eigvals(dense)
    else:
        values = spla.eigs(
            matrix.astype(float), k=min(k, n - 2), return_eigenvectors=False
        )
    order = np.argsort(-np.abs(values))
    return values[order]


def slem(chain: MarkovChain) -> float:
    """Second-largest eigenvalue modulus.

    1.0 for periodic or reducible chains; strictly below 1 for ergodic
    ones.
    """
    values = eigenvalues(chain)
    if len(values) < 2:
        return 0.0
    # The leading eigenvalue is 1 (row-stochastic); take the next by
    # modulus, guarding against numerical near-duplicates of 1 caused by
    # periodicity (those are genuinely modulus 1 and must be kept).
    return float(np.abs(values[1]))


def spectral_gap(chain: MarkovChain) -> float:
    """``1 - SLEM``; zero for periodic chains."""
    return 1.0 - slem(chain)


def relaxation_time(chain: MarkovChain) -> float:
    """``1 / (1 - SLEM)``; infinite for periodic chains."""
    gap = spectral_gap(chain)
    if gap <= 1e-12:
        return float("inf")
    return 1.0 / gap
