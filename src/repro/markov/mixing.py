"""Mixing times of finite Markov chains.

Used to quantify how quickly the paper's chains forget their initial
state — and to exhibit the periodicity finding: the scan-validate chains
never mix in distribution (period 2), while their *Cesàro averages* (and
hence all latency time-averages) converge fine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.chain import MarkovChain, State
from repro.markov.stationary import stationary_distribution


def distance_to_stationary(
    chain: MarkovChain,
    start: State,
    steps: int,
    *,
    pi: Optional[np.ndarray] = None,
    cesaro: bool = False,
) -> float:
    """Total-variation distance to stationarity after ``steps`` steps.

    With ``cesaro`` the time-averaged distribution
    ``(1/t) sum_{k<t} q_k`` is used instead of ``q_t`` — the quantity
    that converges even for periodic (irreducible) chains.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if pi is None:
        pi = stationary_distribution(chain)
    q = np.zeros(chain.n_states)
    q[chain.index_of(start)] = 1.0
    if not cesaro:
        q = chain.evolve(q, steps)
        return float(0.5 * np.abs(q - pi).sum())
    total = np.zeros_like(q)
    current = q
    for _ in range(steps + 1):
        total += current
        current = chain.step_distribution(current)
    average = total / (steps + 1)
    return float(0.5 * np.abs(average - pi).sum())


def mixing_time(
    chain: MarkovChain,
    *,
    eps: float = 0.25,
    start: Optional[State] = None,
    max_steps: int = 100_000,
    cesaro: bool = False,
) -> int:
    """Smallest ``t`` with TV distance to stationarity at most ``eps``.

    Measured from ``start`` (default: the chain's first state).  Raises
    :class:`ArithmeticError` if the distance never drops below ``eps``
    within ``max_steps`` — which is exactly what happens, without the
    ``cesaro`` flag, for periodic chains like the paper's scan-validate
    chains.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    if start is None:
        start = chain.states[0]
    pi = stationary_distribution(chain)
    q = np.zeros(chain.n_states)
    q[chain.index_of(start)] = 1.0
    total = np.zeros_like(q)
    current = q
    for t in range(max_steps + 1):
        if cesaro:
            total += current
            compare = total / (t + 1)
        else:
            compare = current
        if 0.5 * np.abs(compare - pi).sum() <= eps:
            return t
        current = chain.step_distribution(current)
    raise ArithmeticError(
        f"TV distance did not reach {eps} within {max_steps} steps "
        "(periodic chain? try cesaro=True)"
    )
