"""Deterministic fault injection for the resilient sweep layer.

The chaos harness answers one question: *does the orchestration layer
really survive the faults it claims to?*  A :class:`ChaosPlan` decides —
deterministically — which tasks are sabotaged and how (``"raise"`` an
exception, ``"kill"`` the worker process with SIGKILL, or ``"hang"`` it
past its deadline); :class:`ChaosPool` is a drop-in
``ProcessPoolExecutor`` that consults the plan inside each worker before
running the real work.  Faults default to *fire-once* semantics, tracked
by marker files in ``state_dir`` so they survive worker death and pool
rebuilds: the first attempt at a sabotaged task hits the fault, the
retry runs clean — exactly the transient-fault shape
:class:`repro.core.runner.ResilientExecutor` is built to absorb.  Set
``once=False`` for a *persistent* (poison) fault that fires on every
attempt, which must end in a :class:`repro.core.runner.TaskError`
naming the task.

Everything here is picklable and seed-deterministic, so chaos tests are
reproducible run-to-run — a flaky chaos suite would be a self-defeating
way to test fault tolerance.
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

import numpy as np

#: Fault kinds a plan can inject, in increasing order of violence.
FAULT_KINDS = ("raise", "hang", "kill")


class ChaosError(RuntimeError):
    """The exception an injected ``"raise"`` fault throws in a worker."""


def _key_digest(key: Hashable) -> str:
    return f"{zlib.crc32(repr(key).encode('utf-8')):08x}"


@dataclass(frozen=True)
class ChaosPlan:
    """Which tasks fail, how, and how often.

    ``faults`` maps task keys (for sweeps: ``(n, replicate)`` tuples) to
    a fault kind; alternatively ``probability`` sabotages each task
    independently with that chance, choosing among ``kinds`` with a
    per-key deterministic RNG derived from ``seed`` — the same plan
    sabotages the same tasks every run.  ``state_dir`` holds the
    fire-once markers (any fresh temp directory); with ``once=False``
    faults fire on every attempt instead.
    """

    state_dir: Union[str, Path]
    faults: Dict[Hashable, str] = field(default_factory=dict)
    probability: float = 0.0
    kinds: Tuple[str, ...] = ("raise",)
    seed: int = 0
    hang_seconds: float = 30.0
    once: bool = True

    def fault_for(self, key: Hashable) -> Optional[str]:
        """The fault kind planned for ``key``, or ``None``."""
        key = tuple(key) if isinstance(key, (list, tuple)) else key
        kind = self.faults.get(key)
        if kind is not None:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            return kind
        if self.probability > 0:
            rng = np.random.default_rng(
                zlib.crc32(repr(("chaos", self.seed, key)).encode("utf-8"))
            )
            if rng.random() < self.probability:
                return self.kinds[int(rng.integers(len(self.kinds)))]
        return None

    def arm(self, key: Hashable) -> bool:
        """True when the fault for ``key`` should fire *now*.

        Fire-once tracking uses an exclusive-create marker file, so it
        is race-free across worker processes and survives pool rebuilds.
        """
        if not self.once:
            return True
        marker = Path(self.state_dir) / f"fired-{_key_digest(key)}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True

    def reset(self) -> None:
        """Forget every fired marker (faults become live again)."""
        for marker in Path(self.state_dir).glob("fired-*"):
            marker.unlink(missing_ok=True)


def chaos_worker(plan: Optional[ChaosPlan], keys: Sequence[Hashable]) -> None:
    """Inject the planned fault for the first armed key, if any.

    Called inside a worker before the real work.  ``"raise"`` throws
    :class:`ChaosError`; ``"hang"`` sleeps ``plan.hang_seconds`` (long
    enough to blow any sane deadline) then returns; ``"kill"`` SIGKILLs
    the worker process, which the parent sees as ``BrokenProcessPool``.
    """
    if plan is None:
        return
    for key in keys:
        kind = plan.fault_for(key)
        if kind is None or not plan.arm(key):
            continue
        if kind == "raise":
            raise ChaosError(f"injected fault for task {key!r}")
        if kind == "hang":
            time.sleep(plan.hang_seconds)
            return
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)


def _chaos_call(plan: ChaosPlan, fn, keys, *args, **kwargs):
    """Module-level (picklable) wrapper ChaosPool ships to workers."""
    chaos_worker(plan, keys)
    return fn(keys, *args, **kwargs)


class ChaosPool(ProcessPoolExecutor):
    """A ``ProcessPoolExecutor`` that sabotages submitted chunks.

    Assumes the :class:`~repro.core.runner.ResilientExecutor` calling
    convention — ``submit(fn, keys, *args)`` with ``keys`` a sequence of
    task keys — and wraps ``fn`` so the plan is consulted inside the
    worker, where kills and hangs have to happen to be real.
    """

    def __init__(self, max_workers=None, *, plan: Optional[ChaosPlan] = None, **kw):
        super().__init__(max_workers=max_workers, **kw)
        self.plan = plan

    def submit(self, fn, /, *args, **kwargs):
        if self.plan is not None and args:
            return super().submit(_chaos_call, self.plan, fn, *args, **kwargs)
        return super().submit(fn, *args, **kwargs)


@dataclass
class FlakyPoolFactory:
    """A pool factory whose first ``fail_creations`` calls blow up.

    Exercises the pool-rebuild and serial-fallback rungs without any
    real process carnage: pass
    ``pool_factory=FlakyPoolFactory(fail_creations=10**9)`` to force the
    executor straight through ``fallback_after`` failures into
    in-process serial mode.
    """

    fail_creations: int = 0
    plan: Optional[ChaosPlan] = None
    created: int = 0

    def __call__(self, max_workers=None):
        self.created += 1
        if self.created <= self.fail_creations:
            raise BrokenProcessPool(
                f"injected pool-creation failure {self.created}"
            )
        return ChaosPool(max_workers=max_workers, plan=self.plan)


class ServiceHarness:
    """Drive a real ``repro serve`` daemon subprocess for chaos tests.

    The recovery tests need the genuine article — a separate process
    whose SIGKILL leaves leases orphaned in the ledger — not an
    in-process service.  The harness spawns ``python -m repro serve``
    against a root directory, waits for its endpoint file, and offers
    the two chaos verbs the tests use: :meth:`sigkill` (no cleanup of
    any kind runs) and :meth:`terminate` (graceful drain).  ``env``
    extras let a test arm the daemon's chaos hooks, e.g.
    ``REPRO_SERVICE_CHAOS_LEASE_PAUSE`` to hold workers inside the
    lease-granted-but-never-heartbeat window.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        workers: int = 1,
        max_queue: int = 16,
        lease_ttl: float = 30.0,
        env: Optional[Dict[str, str]] = None,
        startup_timeout: float = 30.0,
    ):
        import subprocess
        import sys

        self.root = Path(root)
        self.proc = None
        full_env = dict(os.environ)
        src = Path(__file__).resolve().parents[2]
        existing = full_env.get("PYTHONPATH")
        full_env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else str(src)
        )
        if env:
            full_env.update(env)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--root",
                str(self.root),
                "--workers",
                str(workers),
                "--max-queue",
                str(max_queue),
                "--lease-ttl",
                str(lease_ttl),
            ],
            env=full_env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + startup_timeout
        endpoint = self.root / "endpoint.json"
        while True:
            # A SIGKILLed daemon leaves a stale endpoint file behind, so
            # "exists" is not enough — wait for one naming *this* PID.
            try:
                import json

                if (
                    json.loads(endpoint.read_text()).get("pid")
                    == self.proc.pid
                ):
                    break
            except (FileNotFoundError, ValueError):
                pass
            if self.proc.poll() is not None:
                raise ChaosError(
                    f"serve daemon exited {self.proc.returncode} before "
                    "writing its endpoint file"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise ChaosError("serve daemon never wrote endpoint.json")
            time.sleep(0.02)

    def client(self, *, timeout: float = 30.0):
        from repro.service import ServiceClient

        return ServiceClient.from_root(self.root, timeout=timeout)

    def ledger_events(self, event: Optional[str] = None):
        """The daemon's ledger events (optionally one kind), replayed
        from disk — the durable record the recovery assertions read."""
        from repro.service import JobLedger

        records = JobLedger.read_events(self.root / "ledger.jsonl")
        if event is None:
            return records
        return [record for record in records if record["event"] == event]

    def wait_for_event(
        self, event: str, *, count: int = 1, timeout: float = 30.0
    ):
        """Block until the ledger holds ``count`` events of this kind."""
        deadline = time.monotonic() + timeout
        while True:
            found = self.ledger_events(event)
            if len(found) >= count:
                return found
            if time.monotonic() > deadline:
                raise ChaosError(
                    f"ledger never reached {count} {event!r} events "
                    f"(saw {len(found)})"
                )
            time.sleep(0.01)

    def sigkill(self) -> None:
        """SIGKILL the daemon — nothing flushes, nothing releases."""
        self.proc.kill()
        self.proc.wait(timeout=30)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM the daemon and return its (expected 0) exit code."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def __enter__(self) -> "ServiceHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
