"""Fault-injection utilities for testing the resilient sweep layer."""

from repro.testing.chaos import (
    ChaosError,
    ChaosPlan,
    ChaosPool,
    FlakyPoolFactory,
    chaos_worker,
)

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosPool",
    "FlakyPoolFactory",
    "chaos_worker",
]
