"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``latency``
    Measure an ``SCU(q, s)`` algorithm under a scheduler and compare
    with the exact chain value and the paper's bound.
``classify``
    Run the Section 2.2 progress-classification battery on one of the
    built-in algorithms.
``ramanujan``
    Print the augmented-counter latency ladder: Z(n-1) = Q(n), the
    asymptotic, and the 2 sqrt(n) bound.
``lifting``
    Build and verify the paper's three Markov chain liftings.
``figure5``
    Reproduce Figure 5's completion-rate series (any zoo workload via
    ``--workload``).
``zoo``
    Measure latency vs. departure-from-uniform for every registered
    workload under the epsilon and contention scheduler dials.
``serve``
    Run the durable sweep job daemon (crash-safe queue, lease-based
    recovery, content-addressed dedupe) behind a local HTTP or
    unix-socket API.

Every command treats ``SIGTERM`` like Ctrl-C: active checkpoints are
flushed and the process exits with the conventional code 143 (``serve``
instead drains and exits 0 — its shutdown *is* the graceful path), so
``kill <pid>`` never drops the fsync batch of a long sweep.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

import numpy as np

#: The Figure 5 thread-count series; ``--points k`` takes the first k.
FIGURE5_THREAD_COUNTS = [2, 4, 8, 16, 32]


def _build_telemetry(path):
    """Build the ``--telemetry`` plumbing for a command.

    Returns ``(registry, finish)``: a :class:`MetricsRegistry` with a
    :class:`SchedulerUniformityObserver` attached (or ``None`` when no
    path was given — the zero-overhead default), and a ``finish(command)``
    callable that writes the JSON run report.
    """
    if path is None:
        return None, lambda command: None
    from repro.core.telemetry import (
        MetricsRegistry,
        SchedulerUniformityObserver,
        write_run_report,
    )

    registry = MetricsRegistry()
    observer = SchedulerUniformityObserver()
    observer.attach(registry)

    def finish(command: str) -> None:
        write_run_report(path, registry, command=command, observer=observer)
        print(f"telemetry report written to {path}", file=sys.stderr)

    return registry, finish


def _configure_memo(args: argparse.Namespace, telemetry=None) -> None:
    """Point the exact-chain disk memo at ``--memo-dir``, if given.

    With the flag (or the ``REPRO_MEMO_DIR`` environment variable) set,
    exact chain solves are computed once per ``(n, q, s)`` machine-wide
    and warm-started from disk in every later run.
    """
    memo_dir = getattr(args, "memo_dir", None)
    if memo_dir is not None:
        from repro.core.memo import configure_memo

        configure_memo(memo_dir, telemetry=telemetry)


#: ``--scheduler`` grammar shared by ``latency`` / ``figure5`` / ``zoo``.
SCHEDULER_HELP = (
    "'uniform', 'hardware', 'contention[:FOCUS]' (contention adversary, "
    "default focus 4), or 'epsilon:EPS' (the (1-eps)*uniform + "
    "eps*point-mass departure dial)"
)


def _make_scheduler(name: str):
    from repro.core.scheduler import (
        ContentionScheduler,
        EpsilonUniformScheduler,
        HardwareLikeScheduler,
        UniformStochasticScheduler,
    )

    if name == "uniform":
        return UniformStochasticScheduler()
    if name == "hardware":
        return HardwareLikeScheduler()
    if name == "contention":
        return ContentionScheduler()
    if name.startswith("contention:"):
        return ContentionScheduler(focus=float(name.split(":", 1)[1]))
    if name.startswith("epsilon:"):
        return EpsilonUniformScheduler(float(name.split(":", 1)[1]))
    raise ValueError(f"unknown scheduler {name!r}; expected {SCHEDULER_HELP}")


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.bench.formats import format_table
    from repro.core.scu import SCU

    if getattr(args, "workload", None) is not None:
        return _latency_workload(args)
    spec = SCU(q=args.q, s=args.s)
    telemetry, finish_telemetry = _build_telemetry(
        getattr(args, "telemetry", None)
    )
    _configure_memo(args, telemetry)
    measured = spec.measure(
        args.n,
        args.steps,
        scheduler=_make_scheduler(args.scheduler),
        rng=args.seed,
        telemetry=telemetry,
    )
    finish_telemetry("latency")
    try:
        exact = spec.exact_system_latency(args.n)
    except (ValueError, MemoryError):
        exact = float("nan")
    rows = [
        (
            f"SCU({args.q},{args.s})",
            args.n,
            measured.system_latency,
            exact,
            spec.predicted_system_latency(args.n),
            measured.max_individual_latency,
            measured.fairness_ratio,
        )
    ]
    print(
        format_table(
            [
                "algorithm",
                "n",
                "measured W",
                "exact W",
                "bound",
                "max W_i",
                "Wi/(nW)",
            ],
            rows,
        )
    )
    return 0


def _latency_workload(args: argparse.Namespace) -> int:
    """``repro latency --workload NAME``: measure a registry workload.

    Any zoo member runs here — the exact-chain and bound columns are
    only populated when the workload is a strict SCU(q, s) member (the
    paper's analysis does not speak to the others).
    """
    from repro.algorithms.registry import get_workload, workload_names
    from repro.bench.formats import format_table
    from repro.core.latency import measure_latencies
    from repro.core.scu import SCU

    try:
        workload = get_workload(args.workload)
    except KeyError:
        print(
            f"unknown workload {args.workload!r}; choose from "
            f"{list(workload_names())}",
            file=sys.stderr,
        )
        return 2
    telemetry, finish_telemetry = _build_telemetry(
        getattr(args, "telemetry", None)
    )
    _configure_memo(args, telemetry)
    measured = measure_latencies(
        workload.factory_builder(),
        _make_scheduler(args.scheduler),
        n_processes=args.n,
        steps=args.steps,
        memory=workload.memory_builder(),
        rng=args.seed,
        batched=args.engine == "batched",
        telemetry=telemetry,
    )
    finish_telemetry("latency")
    exact = bound = float("nan")
    if workload.scu_shape is not None:
        spec = SCU(*workload.scu_shape)
        try:
            exact = spec.exact_system_latency(args.n)
        except (ValueError, MemoryError):
            pass
        bound = spec.predicted_system_latency(args.n)
    rows = [
        (
            workload.name,
            args.n,
            measured.system_latency,
            exact,
            bound,
            measured.max_individual_latency,
            measured.fairness_ratio,
        )
    ]
    print(
        format_table(
            [
                "algorithm",
                "n",
                "measured W",
                "exact W",
                "bound",
                "max W_i",
                "Wi/(nW)",
            ],
            rows,
        )
    )
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.classify import classify_progress

    registry = _algorithm_registry()
    if args.algorithm not in registry:
        print(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{sorted(registry)}",
            file=sys.stderr,
        )
        return 2
    factory_builder, memory_builder, crash_when = registry[args.algorithm]
    classification = classify_progress(
        factory_builder,
        memory_builder,
        steps=args.steps,
        crash_when=crash_when,
    )
    print(f"algorithm:                {args.algorithm}")
    print(f"tolerates crash:          {classification.tolerates_crash}")
    print(f"progress under collisions:{classification.progresses_under_collisions}")
    print(f"all progress (uniform):   {classification.all_progress_under_uniform}")
    print(f"all progress (round-robin):{classification.all_progress_under_round_robin}")
    print(f"classified as:            {classification.label}")
    return 0


def _algorithm_registry():
    from repro.algorithms import locks, obstruction
    from repro.algorithms.augmented_counter import (
        augmented_cas_counter,
        make_augmented_counter_memory,
    )
    from repro.algorithms.counter import cas_counter, make_counter_memory
    from repro.algorithms.parallel import parallel_code
    from repro.sim.memory import Memory
    from repro.sim.ops import CAS, Read, Write

    def holding_tas(sim, pid):
        op = sim.processes[pid].pending
        if isinstance(op, CAS):
            return False
        if isinstance(op, Read):
            return op.register == locks.COUNTER
        if isinstance(op, Write):
            return op.register in (locks.COUNTER, locks.LOCK)
        return False

    def holding_ticket(sim, pid):
        op = sim.processes[pid].pending
        if isinstance(op, Read):
            return op.register == locks.COUNTER
        if isinstance(op, Write):
            return op.register in (locks.COUNTER, locks.NOW_SERVING)
        return False

    # Note: Algorithm 1 (unbounded back-off) is deliberately absent: its
    # survivors need longer than any finite crash window to exit their
    # back-offs, so the empirical battery mislabels it as blocking.
    return {
        "cas-counter": (cas_counter, make_counter_memory, None),
        "augmented-counter": (
            augmented_cas_counter,
            make_augmented_counter_memory,
            None,
        ),
        "parallel": (lambda: parallel_code(3), Memory, None),
        "obstruction": (
            obstruction.obstruction_free_counter,
            obstruction.make_obstruction_memory,
            None,
        ),
        "tas-lock": (locks.tas_lock_counter, locks.make_tas_memory, holding_tas),
        "ticket-lock": (
            locks.ticket_lock_counter,
            locks.make_ticket_memory,
            holding_ticket,
        ),
    }


def cmd_ramanujan(args: argparse.Namespace) -> int:
    from repro.bench.formats import format_table
    from repro.stats.ramanujan import (
        counter_return_times,
        ramanujan_q,
        ramanujan_q_asymptotic,
    )

    rows = []
    n = 2
    while n <= args.max_n:
        rows.append(
            (
                n,
                counter_return_times(n)[-1],
                ramanujan_q(n),
                ramanujan_q_asymptotic(n),
                2 * np.sqrt(n),
            )
        )
        n *= 2
    print(
        format_table(
            ["n", "Z(n-1)", "Q(n)", "sqrt(pi n/2) expansion", "2 sqrt(n)"],
            rows,
        )
    )
    return 0


def cmd_lifting(args: argparse.Namespace) -> int:
    from repro.core.lifting import (
        verify_counter_lifting,
        verify_parallel_lifting,
        verify_scu_lifting,
    )

    for name, report in [
        ("Lemma 5  (scan-validate)", verify_scu_lifting(args.n)),
        ("Lemma 10 (parallel, q=3)", verify_parallel_lifting(args.n, 3)),
        ("Lemma 13 (counter)", verify_counter_lifting(args.n)),
    ]:
        status = "OK" if report.is_lifting else "FAILED"
        print(
            f"{name}: {status}  flow error {report.max_flow_error:.2e}, "
            f"stationary error {report.max_stationary_error:.2e}"
        )
    return 0


def cmd_gaps(args: argparse.Namespace) -> int:
    from repro.bench.formats import format_table
    from repro.chains.gaps import (
        counter_gap_mean,
        counter_gap_pmf,
        counter_gap_quantile,
        scu_gap_mean,
        scu_gap_pmf,
        scu_gap_quantile,
    )

    n = args.n
    scu_pmf = scu_gap_pmf(n, args.head)
    counter_pmf = counter_gap_pmf(n, args.head)
    rows = [
        (k + 1, scu_pmf[k], counter_pmf[k]) for k in range(args.head)
    ]
    print(format_table(
        ["gap k", "scan-validate P(gap=k)", "counter P(gap=k)"], rows,
        precision=4,
    ))
    print(f"\nscan-validate: mean {scu_gap_mean(n):.3f}  median "
          f"{scu_gap_quantile(n, 0.5)}  p99 {scu_gap_quantile(n, 0.99)}")
    print(f"counter:       mean {counter_gap_mean(n):.3f}  median "
          f"{counter_gap_quantile(n, 0.5)}  p99 {counter_gap_quantile(n, 0.99)}")
    return 0


def cmd_figure5(args: argparse.Namespace) -> int:
    from repro.algorithms.registry import get_workload, workload_names
    from repro.bench.formats import format_table
    from repro.chains.scu import scu_system_latency_exact
    from repro.core.analysis import (
        completion_rate_prediction,
        worst_case_completion_rate,
    )
    from repro.core.checkpoint import SweepCheckpoint, sweep_fingerprint
    from repro.core.latency import measure_latencies

    try:
        workload = get_workload(args.workload)
    except KeyError:
        print(
            f"unknown workload {args.workload!r}; choose from "
            f"{list(workload_names())}",
            file=sys.stderr,
        )
        return 2
    if args.engine == "ensemble" and args.workload != "cas-counter":
        print(
            "--engine ensemble resolves the CAS counter's vector kernel "
            f"only; run --workload {args.workload} on the serial or "
            "batched engine",
            file=sys.stderr,
        )
        return 2
    if not 1 <= args.points <= len(FIGURE5_THREAD_COUNTS):
        print(
            f"--points must be between 1 and {len(FIGURE5_THREAD_COUNTS)}: "
            f"the Figure 5 series measures thread counts "
            f"{FIGURE5_THREAD_COUNTS} and --points takes a prefix of them "
            f"(got --points {args.points})",
            file=sys.stderr,
        )
        return 2
    thread_counts = FIGURE5_THREAD_COUNTS[: args.points]
    telemetry, finish_telemetry = _build_telemetry(
        getattr(args, "telemetry", None)
    )
    _configure_memo(args, telemetry)
    store = getattr(args, "store", None)
    if args.checkpoint is not None and store is not None:
        print(
            "--checkpoint and --store are two formats of the same result "
            "log; pass one or the other",
            file=sys.stderr,
        )
        return 2
    checkpoint = None
    if args.checkpoint is not None or store is not None:
        # Each thread count is one deterministic measurement (seeded
        # rng=n), so the sweep checkpoints per (n, replicate=0) and a
        # resumed run re-measures only the missing thread counts.
        fingerprint = sweep_fingerprint(
            seed=0,
            steps=args.steps,
            engine=f"figure5-{args.scheduler}",
            n_values=thread_counts,
            repeats=1,
            burn_in=None,
            workload=workload.fingerprint,
        )
        if store is not None:
            from repro.core.store import ColumnarSweepStore

            checkpoint = ColumnarSweepStore.open(
                store, fingerprint, resume=args.resume, telemetry=telemetry
            )
        else:
            checkpoint = SweepCheckpoint.open(
                args.checkpoint,
                fingerprint,
                resume=args.resume,
                telemetry=telemetry,
            )
    measured = []
    try:
        for n in thread_counts:
            if checkpoint is not None and (n, 0) in checkpoint.completed:
                measured.append(checkpoint.completed[(n, 0)][1])
                continue
            if args.engine == "ensemble":
                # One replicate per thread count, same rng=n seed — the
                # engine-equivalence contract keeps the table identical
                # to the serial path; workers shard the fused blocks.
                from repro.core.latency import measure_latencies_ensemble

                m = measure_latencies_ensemble(
                    workload.factory_builder(),
                    lambda: _make_scheduler(args.scheduler),
                    n_processes=n,
                    steps=args.steps,
                    seeds=[n],
                    memory_factory=workload.memory_builder,
                    telemetry=telemetry,
                    max_workers=args.ensemble_workers,
                )[0]
            else:
                m = measure_latencies(
                    workload.factory_builder(),
                    _make_scheduler(args.scheduler),
                    n_processes=n,
                    steps=args.steps,
                    memory=workload.memory_builder(),
                    rng=n,
                    batched=args.engine == "batched",
                    telemetry=telemetry,
                )
            measured.append(m.completion_rate)
            if checkpoint is not None:
                checkpoint.record(
                    n, 0, (m.system_latency, m.completion_rate, m.fairness_ratio)
                )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    predicted = completion_rate_prediction(thread_counts, measured_first=measured[0])
    worst = worst_case_completion_rate(thread_counts)
    # The exact chain models SCU(0,1); other zoo members get NaN here.
    if workload.scu_shape == (0, 1):
        exact = [1 / scu_system_latency_exact(n) for n in thread_counts]
    else:
        exact = [float("nan")] * len(thread_counts)
    rows = list(zip(thread_counts, measured, predicted, exact, worst))
    print(
        format_table(
            ["threads", "measured", "1/sqrt(n) scaled", "exact chain", "worst 1/n"],
            rows,
            precision=4,
        )
    )
    finish_telemetry("figure5")
    return 0


def cmd_zoo(args: argparse.Namespace) -> int:
    """Latency vs. departure-from-uniform across the workload zoo."""
    import json

    from repro.algorithms.registry import workload_names
    from repro.bench.formats import format_table
    from repro.core.uniformity import (
        contention_family,
        epsilon_family,
        zoo_departure_table,
    )
    from repro.core.scheduler import UniformStochasticScheduler

    names = args.workload if args.workload else None
    if names is not None:
        unknown = sorted(set(names) - set(workload_names()))
        if unknown:
            print(
                f"unknown workload(s) {unknown}; choose from "
                f"{list(workload_names())}",
                file=sys.stderr,
            )
            return 2
    schedulers = [("uniform", UniformStochasticScheduler)]
    schedulers.extend(epsilon_family(args.epsilons))
    schedulers.extend(contention_family(args.focuses))
    table = zoo_departure_table(
        names,
        schedulers,
        n_processes=args.n,
        steps=args.steps,
        seed=args.seed,
        burn_in=args.burn_in,
        batched=args.engine == "batched",
    )
    for name, points in table["workloads"].items():
        print(f"\n{name} (n={args.n}, steps={args.steps}):")
        rows = [
            (
                p["scheduler"],
                p["tv_distance"],
                p["p50_latency"],
                p["p99_latency"],
                p["system_latency"],
                p["completion_rate"],
                p["fairness_ratio"],
            )
            for p in points
        ]
        print(
            format_table(
                ["scheduler", "TV", "p50", "p99", "W", "rate", "Wi/(nW)"],
                rows,
                precision=4,
            )
        )
    if args.out is not None:
        Path(args.out).write_text(json.dumps(table, indent=2, sort_keys=True))
        print(f"\nzoo table written to {args.out}", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.core.checkpoint import flush_active_checkpoints
    from repro.core.runner import RetryPolicy
    from repro.core.telemetry import MetricsRegistry
    from repro.service import SweepService, make_server

    telemetry, finish_telemetry = _build_telemetry(
        getattr(args, "telemetry", None)
    )
    # The /metrics endpoint is part of the API, so the daemon always
    # runs with a live registry; --telemetry only adds the JSON report.
    registry = telemetry if telemetry is not None else MetricsRegistry()
    _configure_memo(args, registry)
    root = Path(args.root)
    service = SweepService(
        root,
        workers=args.workers,
        max_queue=args.max_queue,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        telemetry=registry,
    )
    service.start()
    try:
        server = make_server(
            service,
            host=args.host,
            port=args.port,
            socket_path=args.socket,
        )
    except OSError:
        service.shutdown()
        raise
    endpoint: dict = {"pid": os.getpid()}
    if args.socket is not None:
        endpoint["socket"] = str(args.socket)
        where = f"unix socket {args.socket}"
    else:
        endpoint["host"] = server.server_address[0]
        endpoint["port"] = server.server_address[1]
        where = f"http://{endpoint['host']}:{endpoint['port']}"
    endpoint_path = root / "endpoint.json"
    endpoint_path.write_text(json.dumps(endpoint, sort_keys=True))

    # serve_forever() runs on a background thread so the *main* thread
    # is free to take SIGTERM/SIGINT and drive the shutdown sequence —
    # a handler cannot call server.shutdown() from the serving thread.
    stop = threading.Event()
    previous = {
        sig: signal.signal(sig, lambda *_: stop.set())
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    serving = threading.Thread(
        target=server.serve_forever, name="sweep-service-http", daemon=True
    )
    serving.start()
    print(
        f"sweep service on {where} (root {root}, {args.workers} workers, "
        f"queue limit {args.max_queue}); SIGTERM/Ctrl-C to drain and exit",
        file=sys.stderr,
    )
    try:
        stop.wait()
        print("draining sweep service...", file=sys.stderr)
    finally:
        server.shutdown()
        serving.join(timeout=10)
        server.server_close()
        service.shutdown(drain=True)
        flush_active_checkpoints()
        try:
            endpoint_path.unlink()
        except FileNotFoundError:
            pass
        if args.socket is not None:
            try:
                Path(args.socket).unlink()
            except FileNotFoundError:
                pass
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        finish_telemetry("serve")
    print("sweep service stopped cleanly", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Are Lock-Free Concurrent "
        "Algorithms Practically Wait-Free?'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("latency", help="measure SCU(q, s) latencies")
    p.add_argument("--q", type=int, default=0)
    p.add_argument("--s", type=int, default=1)
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--steps", type=int, default=200_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scheduler", default="uniform", help=SCHEDULER_HELP)
    p.add_argument(
        "--workload",
        metavar="NAME",
        default=None,
        help="measure a registered zoo workload instead of the SCU(q, s) "
        "spec (see repro.algorithms.registry; overrides --q/--s)",
    )
    p.add_argument(
        "--engine",
        choices=["serial", "batched"],
        default="serial",
        help="execution engine for --workload runs (bit-identical by the "
        "trace-equivalence contract)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="write a structured JSON run report (metrics + scheduler "
        "uniformity) to this path",
    )
    p.add_argument(
        "--memo-dir",
        metavar="DIR",
        default=None,
        help="warm-start exact chain solves from this machine-wide "
        "on-disk memo (also honoured via REPRO_MEMO_DIR)",
    )
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser("classify", help="classify an algorithm's progress")
    p.add_argument("algorithm")
    p.add_argument("--steps", type=int, default=30_000)
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("ramanujan", help="the counter latency ladder")
    p.add_argument("--max-n", type=int, default=1024)
    p.set_defaults(func=cmd_ramanujan)

    p = sub.add_parser("lifting", help="verify the three liftings")
    p.add_argument("-n", type=int, default=5)
    p.set_defaults(func=cmd_lifting)

    p = sub.add_parser("gaps", help="exact completion-gap distributions")
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--head", type=int, default=10)
    p.set_defaults(func=cmd_gaps)

    p = sub.add_parser("figure5", help="reproduce Figure 5's series")
    p.add_argument(
        "--points",
        type=int,
        default=len(FIGURE5_THREAD_COUNTS),
        help=f"how many thread counts to measure, a prefix of "
        f"{FIGURE5_THREAD_COUNTS} (1..{len(FIGURE5_THREAD_COUNTS)})",
    )
    p.add_argument("--steps", type=int, default=60_000)
    p.add_argument("--scheduler", default="uniform", help=SCHEDULER_HELP)
    p.add_argument(
        "--workload",
        metavar="NAME",
        default="cas-counter",
        help="which registered zoo workload to sweep (the workload name "
        "is folded into the checkpoint fingerprint)",
    )
    p.add_argument(
        "--engine",
        choices=["serial", "batched", "ensemble"],
        default="serial",
        help="execution engine — all three produce identical numbers "
        "(trace-equivalence contract); ensemble is fastest and can "
        "shard across workers",
    )
    p.add_argument(
        "--ensemble-workers",
        metavar="N",
        type=lambda value: value if value == "auto" else int(value),
        default=None,
        help="shard the ensemble engine's fused blocks across N worker "
        "processes ('auto' = every available CPU); implies --engine "
        "ensemble semantics only when that engine is selected",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="append finished thread counts to this JSONL checkpoint",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="append finished thread counts to this columnar sweep "
        "store directory (mutually exclusive with --checkpoint)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip thread counts already in --checkpoint/--store "
        "(parameters must match the stored fingerprint)",
    )
    p.add_argument(
        "--memo-dir",
        metavar="DIR",
        default=None,
        help="warm-start exact chain solves from this machine-wide "
        "on-disk memo (also honoured via REPRO_MEMO_DIR)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="write a structured JSON run report (metrics + scheduler "
        "uniformity) to this path",
    )
    p.set_defaults(func=cmd_figure5)

    def _float_list(text: str) -> List[float]:
        return [float(part) for part in text.split(",") if part.strip()]

    p = sub.add_parser(
        "zoo",
        help="latency vs departure-from-uniform across the workload zoo",
    )
    p.add_argument(
        "--workload",
        metavar="NAME",
        action="append",
        default=None,
        help="zoo member to measure (repeatable; default: every "
        "registered workload)",
    )
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--steps", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--burn-in",
        type=int,
        default=None,
        help="steps discarded before latency percentiles (default steps/10)",
    )
    p.add_argument(
        "--engine",
        choices=["serial", "batched"],
        default="batched",
        help="execution engine (bit-identical by the trace-equivalence "
        "contract; contention schedulers clamp the batch internally)",
    )
    p.add_argument(
        "--epsilons",
        type=_float_list,
        default=[0.0, 0.2, 0.4, 0.6, 0.8],
        metavar="E1,E2,...",
        help="epsilon-from-uniform departure dial",
    )
    p.add_argument(
        "--focuses",
        type=_float_list,
        default=[2.0, 4.0, 8.0],
        metavar="F1,F2,...",
        help="contention-adversary focus dial",
    )
    p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the JSON zoo table here",
    )
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser(
        "serve",
        help="run the durable sweep job daemon (HTTP or unix-socket API)",
    )
    p.add_argument(
        "--root",
        metavar="DIR",
        required=True,
        help="service root: the job ledger, per-job stores, the point "
        "memo and endpoint.json all live here",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = pick a free one; read it from "
        "<root>/endpoint.json)",
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="serve on this unix socket instead of TCP",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads running jobs (each job is one sweep)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="admission limit: queued jobs beyond this are rejected "
        "with a structured 429",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a worker may go without heartbeating before its "
        "job is re-leased",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="seconds between lease renewals (default: lease-ttl / 3)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failed-job retries before quarantining it as poisoned",
    )
    p.add_argument(
        "--memo-dir",
        metavar="DIR",
        default=None,
        help="warm-start exact chain solves from this machine-wide "
        "on-disk memo (also honoured via REPRO_MEMO_DIR)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="additionally write a JSON run report on shutdown "
        "(/metrics serves the live registry regardless)",
    )
    p.set_defaults(func=cmd_serve)

    return parser


class _Terminated(Exception):
    """Raised by the ``SIGTERM`` handler to unwind like Ctrl-C does."""


def _raise_terminated(signum, frame):
    raise _Terminated()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Ctrl-C exits with the conventional code 130, ``SIGTERM`` (a plain
    ``kill <pid>``) with 143 — both after flushing any active sweep
    checkpoint, so an interrupted long run can be resumed instead of
    losing its fsync batch to a traceback.  ``serve`` installs its own
    graceful-drain handlers and exits 0.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    # SIGTERM parity with KeyboardInterrupt (signal handlers can only
    # be installed from the main thread; embedded callers keep theirs).
    previous_term = None
    if threading.current_thread() is threading.main_thread():
        try:
            previous_term = signal.signal(signal.SIGTERM, _raise_terminated)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            previous_term = None
    try:
        return args.func(args)
    except (KeyboardInterrupt, _Terminated) as exc:
        from repro.core.checkpoint import flush_active_checkpoints

        # Checkpoints opened by a sweep are usually already closed by the
        # time the interrupt unwinds to here (the sweep's finally block
        # runs first), so "nothing left to flush" does NOT mean "nothing
        # was saved" — if the command was given a checkpoint path and the
        # file exists, it is resumable.
        flushed = flush_active_checkpoints()
        checkpoint = getattr(args, "checkpoint", None)
        store = getattr(args, "store", None)
        saved = (
            flushed > 0
            or (checkpoint is not None and Path(checkpoint).exists())
            or (store is not None and Path(store).exists())
        )
        note = " (checkpoint saved; rerun with --resume)" if saved else ""
        if isinstance(exc, _Terminated):
            print(f"terminated{note}", file=sys.stderr)
            return 143
        print(f"interrupted{note}", file=sys.stderr)
        return 130
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
