"""Setup shim so editable installs work without the `wheel` package.

`pip install -e .` on this offline box falls back to `setup.py develop`,
which needs this file; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
