"""Tests for phase statistics (Lemmas 8-9)."""

import numpy as np
import pytest

from repro.ballsbins.game import BallsGame
from repro.ballsbins.phases import (
    conditional_phase_lengths,
    phase_length_bound,
    range_of,
    run_phases,
    summarize_phases,
)


class TestBoundFormula:
    def test_min_of_two_terms(self):
        n, a, b = 100, 25, 75
        expected = min(2 * 4 * n / np.sqrt(a), 3 * 4 * n / b ** (1 / 3))
        assert phase_length_bound(n, a, b) == pytest.approx(expected)

    def test_degenerate_b_zero(self):
        assert phase_length_bound(100, 100, 0) == pytest.approx(
            2 * 4 * 100 / 10.0
        )

    def test_degenerate_a_zero(self):
        assert phase_length_bound(100, 0, 100) == pytest.approx(
            3 * 4 * 100 / 100 ** (1 / 3)
        )

    def test_both_zero_rejected(self):
        with pytest.raises(ValueError):
            phase_length_bound(100, 0, 0)


class TestRanges:
    def test_range_boundaries(self):
        n = 30
        assert range_of(30, n) == 1
        assert range_of(10, n) == 1   # n/3 boundary inclusive
        assert range_of(9, n) == 2
        assert range_of(3, n) == 2    # n/c boundary inclusive (c=10)
        assert range_of(2, n) == 3
        assert range_of(0, n) == 3


class TestPhaseRuns:
    def test_run_phases_count(self):
        records = run_phases(10, 50, rng=0)
        assert len(records) == 50
        assert [r.index for r in records] == list(range(50))

    def test_lemma8_expected_length(self):
        # Mean phase length conditioned on the start configuration stays
        # below Lemma 8's expectation bound.
        n = 64
        records = run_phases(n, 5_000, rng=1)
        by_a = {}
        for r in records:
            by_a.setdefault(r.a, []).append(r.length)
        for a, lengths in by_a.items():
            if len(lengths) < 50:
                continue
            bound = phase_length_bound(n, a, n - a)
            assert np.mean(lengths) <= bound

    def test_lemma9_third_range_is_rare(self):
        # The system drifts away from a_i < n/c: almost no phase starts
        # in the third range at stationarity.
        n = 50
        records = run_phases(n, 5_000, rng=2)
        summary = summarize_phases(records, n)
        assert summary.range_fractions[3] < 0.01

    def test_summary_fields(self):
        n = 20
        records = run_phases(n, 500, rng=3)
        summary = summarize_phases(records, n)
        assert summary.phases == 500
        assert summary.mean_a + summary.mean_b == pytest.approx(n)
        assert summary.max_length >= summary.mean_length
        assert sum(summary.range_fractions.values()) == pytest.approx(1.0)

    def test_high_probability_bound_rarely_violated(self):
        n = 64
        records = run_phases(n, 3_000, rng=4)
        summary = summarize_phases(records, n)
        assert summary.bound_violations / summary.phases < 0.01

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            summarize_phases([], 10)


class TestConditionalLengths:
    def test_larger_a_means_shorter_phase(self):
        # Lemma 8: phase length scales like n / sqrt(a) when a dominates.
        n = 100
        short = conditional_phase_lengths(n, a=100, samples=2_000, rng=5).mean()
        long = conditional_phase_lengths(n, a=16, samples=2_000, rng=6).mean()
        assert short < long

    def test_birthday_scaling_in_a(self):
        # With b = n - a empty bins, completing from A requires ~sqrt(a)
        # hits in A at rate a/n: expect ~2 n/sqrt(a) up to constants.
        n = 144
        means = {}
        for a in (36, 144):
            means[a] = conditional_phase_lengths(n, a, 3_000, rng=7).mean()
        # Quadrupling a should halve the length, within tolerance.
        assert means[36] / means[144] == pytest.approx(2.0, rel=0.35)
