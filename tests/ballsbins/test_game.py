"""Tests for the iterated balls-into-bins game."""

import numpy as np
import pytest

from repro.ballsbins.game import BallsGame


class TestInitialConfiguration:
    def test_one_ball_everywhere(self):
        game = BallsGame(8, rng=0)
        assert game.a == 8
        assert game.b == 0
        assert np.all(game.balls == 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BallsGame(0)


class TestThrowAndReset:
    def test_no_reset_below_three(self):
        game = BallsGame(1, rng=0)
        assert game.throw() is None  # 2 balls: no reset yet
        record = game.throw()        # 3 balls: reset
        assert record is not None
        assert record.length == 2
        assert record.winner == 0

    def test_reset_restores_invariant(self):
        # After a reset, every bin holds 0 or 1 balls and the winner 1.
        game = BallsGame(10, rng=1)
        record = game.run_phase()
        assert set(np.unique(game.balls)) <= {0, 1}
        assert game.balls[record.winner] == 1
        assert game.a + game.b == 10

    def test_phase_records_start_configuration(self):
        game = BallsGame(6, rng=2)
        first = game.run_phase()
        assert first.a == 6
        assert first.b == 0
        second = game.run_phase()
        assert second.a + second.b == 6
        assert second.index == 1

    def test_counters(self):
        game = BallsGame(4, rng=3)
        game.run_phase()
        game.run_phase()
        assert game.resets == 2
        assert game.throws >= 4

    def test_deterministic_under_seed(self):
        lengths_a = [BallsGame(5, rng=42).run_phase().length for _ in range(1)]
        lengths_b = [BallsGame(5, rng=42).run_phase().length for _ in range(1)]
        assert lengths_a == lengths_b


class TestForcedConfiguration:
    def test_set_configuration(self):
        game = BallsGame(10, rng=0)
        game.set_configuration(a=4, b=6)
        assert game.a == 4
        assert game.b == 6

    def test_set_configuration_with_two_ball_bins(self):
        game = BallsGame(10, rng=0)
        game.set_configuration(a=4, b=2)
        assert int(np.count_nonzero(game.balls == 2)) == 4

    def test_validation(self):
        game = BallsGame(4, rng=0)
        with pytest.raises(ValueError):
            game.set_configuration(a=3, b=3)

    def test_run_phase_guard(self):
        game = BallsGame(3, rng=0)
        with pytest.raises(ArithmeticError):
            # Impossible to finish in 0 throws.
            game.run_phase(max_throws=0)


class TestSystemChainCorrespondence:
    def test_mean_phase_length_matches_scu_latency(self):
        # The game *is* the system chain of SCU(0,1): the mean phase
        # length equals the exact system latency.
        from repro.chains.scu import scu_system_latency_exact

        n = 12
        game = BallsGame(n, rng=7)
        lengths = [game.run_phase().length for _ in range(30_000)]
        assert np.mean(lengths) == pytest.approx(
            scu_system_latency_exact(n), rel=0.03
        )
