"""Multicore sharded fused resolution must be invisible in results.

``EnsembleSimulator(max_workers=N)`` fans the fused schedule blocks out
across a process pool through shared-memory segments; this suite pins
the contract that sharding changes wall-clock only:

* worker-count invariance — ``max_workers`` 1/2/4 produce bit-identical
  outcomes, with and without crash schedules, across resolver families;
* chaos — injected worker kill/hang/raise faults are absorbed by the
  executor's recovery ladder without changing a bit, persistent poison
  ends in :class:`~repro.core.runner.TaskError`, and in every case the
  block-shard ``/dev/shm`` segments are unlinked (autouse assertion);
* the nested-pool guard — shard workers default to 1 inside an existing
  pool worker, so ensembles nested under ``parallel_sweep`` cannot
  oversubscribe the machine;
* the ``ensemble.shard_*`` telemetry group and the construction-time
  validation of ``max_workers`` / ``fuse`` combinations.
"""

import glob
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.algorithms.counter import CounterStepKernel, make_counter_memory
from repro.algorithms.scu import ScuStepKernel, make_scu_memory
from repro.core import shm
from repro.core.runner import (
    RetryPolicy,
    TaskError,
    available_cpu_count,
    default_shard_workers,
)
from repro.core.scheduler import UniformStochasticScheduler
from repro.core.telemetry import MetricsRegistry
from repro.sim import EnsembleReplicate, EnsembleSimulator
from repro.testing.chaos import ChaosPlan, ChaosPool, FlakyPoolFactory

STEPS = 400
FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.1)

pytestmark = pytest.mark.skipif(
    not shm.sharedmem_available(), reason="no multiprocessing.shared_memory"
)


def leaked_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return []
    return glob.glob("/dev/shm/repro-*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file ends with a clean /dev/shm — worker
    kills, hangs and poison blocks included."""
    assert leaked_segments() == []
    yield
    assert leaked_segments() == []


def build_members(*, crashes=False, seed=5):
    """A mixed ensemble: flat and heap resolver groups, varying n,
    optionally a sprinkling of crash schedules."""
    members = []
    for r in range(10):
        if r % 2:
            kernel, memory = ScuStepKernel(2, 1), make_scu_memory(1)
        else:
            kernel, memory = CounterStepKernel(), make_counter_memory()
        n = 3 + (r % 3)
        crash = {0: 40 + r, 1: 90} if (crashes and r % 3 == 0) else None
        members.append(
            EnsembleReplicate(
                kernel,
                n,
                UniformStochasticScheduler(),
                memory,
                rng=(seed, n, r),
                crash_times=crash,
            )
        )
    return members


def run_sharded(workers=None, *, crashes=False, **kwargs):
    return EnsembleSimulator(
        build_members(crashes=crashes),
        fuse=True,
        fuse_block_steps=600,  # force many blocks at STEPS=400
        max_workers=workers,
        **kwargs,
    ).run(STEPS)


def assert_results_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.n_processes == b.n_processes
        assert a.steps_executed == b.steps_executed
        assert a.stopped_early == b.stopped_early
        assert np.array_equal(a.completion_times, b.completion_times)
        assert np.array_equal(a.completion_pids, b.completion_pids)
        assert np.array_equal(a.step_counts, b.step_counts)
        assert vars(a.memory) == vars(b.memory)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("crashes", [False, True], ids=["clean", "crashing"])
    def test_1_2_4_workers_bit_identical(self, crashes):
        reference = run_sharded(None, crashes=crashes)
        for workers in (1, 2, 4):
            assert_results_identical(
                reference,
                run_sharded(workers, crashes=crashes, shard_retry=FAST_RETRY),
            )

    def test_single_block_stays_in_process(self):
        """One block (huge cap) resolves without any shard segments —
        and still matches the many-block sharded run."""
        reference = run_sharded(None)
        one_block = EnsembleSimulator(
            build_members(),
            fuse=True,
            fuse_block_steps=10**9,
            max_workers=2,
        ).run(STEPS)
        assert_results_identical(reference, one_block)


class TestChaos:
    def test_kill_hang_and_raise_leave_results_bit_identical(self, tmp_path):
        reference = run_sharded(None)
        plan = ChaosPlan(
            state_dir=tmp_path,
            faults={0: "kill", 2: "raise", 5: "hang"},
            hang_seconds=5.0,
        )
        chaotic = EnsembleSimulator(
            build_members(),
            fuse=True,
            fuse_block_steps=600,
            max_workers=2,
            shard_pool_factory=lambda max_workers=None: ChaosPool(
                max_workers=max_workers, plan=plan
            ),
            shard_retry=RetryPolicy(
                max_retries=3, base_delay=0.01, max_delay=0.1, timeout=1.5
            ),
        ).run(STEPS)
        assert_results_identical(reference, chaotic)

    def test_persistent_poison_block_raises_task_error(self, tmp_path):
        plan = ChaosPlan(state_dir=tmp_path, faults={1: "raise"}, once=False)
        with pytest.raises(TaskError) as excinfo:
            EnsembleSimulator(
                build_members(),
                fuse=True,
                fuse_block_steps=600,
                max_workers=2,
                shard_pool_factory=lambda max_workers=None: ChaosPool(
                    max_workers=max_workers, plan=plan
                ),
                shard_retry=RetryPolicy(
                    max_retries=1, base_delay=0.01, max_delay=0.02
                ),
            ).run(STEPS)
        assert excinfo.value.key == 1
        # The autouse fixture re-checks, but the leak-free contract
        # under poison is the point of this test.
        assert leaked_segments() == []

    def test_serial_fallback_reuses_the_segments(self):
        """Pool creation failing forever degrades to in-parent serial
        resolution through the same shared buffers — bit-identical."""
        reference = run_sharded(None)
        fallback = EnsembleSimulator(
            build_members(),
            fuse=True,
            fuse_block_steps=600,
            max_workers=2,
            shard_pool_factory=FlakyPoolFactory(fail_creations=10**9),
            shard_retry=FAST_RETRY,
        ).run(STEPS)
        assert_results_identical(reference, fallback)


def _nested_probe(_):
    return default_shard_workers()


class TestNestedPoolGuard:
    def test_defaults_to_one_inside_a_pool_worker(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            assert pool.submit(_nested_probe, None).result() == 1

    def test_defaults_to_cpu_allowance_at_top_level(self):
        assert default_shard_workers() == available_cpu_count()

    def test_auto_resolves_through_the_guard(self):
        simulator = EnsembleSimulator(build_members(), max_workers="auto")
        assert simulator._workers == default_shard_workers()


class TestValidationAndTelemetry:
    def test_fuse_false_with_workers_rejected(self):
        with pytest.raises(ValueError, match="shards fused schedule blocks"):
            EnsembleSimulator(build_members(), fuse=False, max_workers=2)

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "three", True])
    def test_bad_max_workers_rejected(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            EnsembleSimulator(build_members(), max_workers=bad)

    def test_shard_metric_group(self):
        telemetry = MetricsRegistry()
        EnsembleSimulator(
            build_members(),
            fuse=True,
            fuse_block_steps=600,
            max_workers=2,
            shard_retry=FAST_RETRY,
            telemetry=telemetry,
        ).run(STEPS)
        assert telemetry.gauges["ensemble.shard_workers"] == 2
        assert telemetry.counters["ensemble.shard_blocks"] > 1
        assert telemetry.counters["ensemble.shard_replicates"] == 10
        assert telemetry.counters["ensemble.shard_steps"] > 0
        assert telemetry.counters["ensemble.shard_bytes"] > 0
        # The shared segments were created and unlinked through the
        # shm.* group as well.
        assert telemetry.counters["shm.segments"] == 2
        assert telemetry.counters["shm.unlinked"] == 2

    def test_in_process_run_emits_no_shard_metrics(self):
        telemetry = MetricsRegistry()
        EnsembleSimulator(
            build_members(), fuse=True, telemetry=telemetry
        ).run(STEPS)
        assert "ensemble.shard_blocks" not in telemetry.counters
        assert "ensemble.shard_workers" not in telemetry.gauges
