"""Fused multi-replicate resolution must be invisible in results.

The fused path stacks same-shape replicates into one schedule and
resolves them in a single vectorized pass; this suite pins the contract
that every observable of every replicate — schedule, completion stream,
per-process accounting, final memory, derived measurements — is
bit-identical to the per-replicate path (``fuse=False``), across
resolver families, crash schedules, heterogeneous ensembles and block
caps small enough to force multi-block packing.  It also covers the
one-shot guard semantics around :meth:`EnsembleSimulator.run`.
"""

import numpy as np
import pytest

from repro.algorithms.counter import (
    CounterStepKernel,
    cas_counter,
    make_counter_memory,
)
from repro.algorithms.scu import ScuStepKernel, make_scu_memory
from repro.core.scheduler import (
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.sim import EnsembleReplicate, EnsembleSimulator

KERNEL_CASES = {
    "counter": (CounterStepKernel(), make_counter_memory),
    "scu03": (ScuStepKernel(0, 3), lambda: make_scu_memory(3)),
    "scu21": (ScuStepKernel(2, 1), lambda: make_scu_memory(1)),
    "scu32": (ScuStepKernel(3, 2), lambda: make_scu_memory(2)),
}

CRASH_CASES = {
    "crash_free": None,
    "crashing": {0: 40, 2: 95},
}


def build_members(kernel, memory_builder, *, crash_times=None, seed=0):
    """A small mixed-n ensemble of one kernel shape."""
    return [
        EnsembleReplicate(
            kernel,
            n,
            UniformStochasticScheduler(),
            memory_builder(),
            rng=(seed, n, r),
            crash_times=dict(crash_times) if crash_times else None,
        )
        for r, n in enumerate([3, 5, 3, 4])
    ]


def assert_outcomes_identical(left, right):
    assert left.n_processes == right.n_processes
    assert left.steps_executed == right.steps_executed
    assert left.stopped_early == right.stopped_early
    assert np.array_equal(left.completion_times, right.completion_times)
    assert np.array_equal(left.completion_pids, right.completion_pids)
    assert np.array_equal(left.step_counts, right.step_counts)
    if left.schedule is not None or right.schedule is not None:
        assert np.array_equal(left.schedule, right.schedule)
    assert vars(left.memory) == vars(right.memory)


def run_both(members_builder, steps, **fused_kwargs):
    reference = EnsembleSimulator(
        members_builder(), fuse=False, engine_kernel="numpy", record_schedule=True
    ).run(steps)
    fused = EnsembleSimulator(
        members_builder(), record_schedule=True, **fused_kwargs
    ).run(steps)
    assert len(reference) == len(fused)
    for left, right in zip(reference, fused):
        assert_outcomes_identical(left, right)
    return reference, fused


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
@pytest.mark.parametrize("crash_name", sorted(CRASH_CASES))
def test_fused_matches_per_replicate(kernel_name, crash_name):
    kernel, memory_builder = KERNEL_CASES[kernel_name]
    crash_times = CRASH_CASES[crash_name]
    run_both(
        lambda: build_members(
            kernel, memory_builder, crash_times=crash_times, seed=11
        ),
        600,
    )


@pytest.mark.parametrize("kernel_name", ["counter", "scu21"])
def test_small_block_cap_forces_multi_block_packing(kernel_name):
    kernel, memory_builder = KERNEL_CASES[kernel_name]
    # Cap far below one replicate's steps: every replicate must land in
    # its own (oversized) block and still resolve identically.
    run_both(
        lambda: build_members(kernel, memory_builder, seed=3),
        500,
        fuse_block_steps=200,
    )


def test_heterogeneous_shapes_fuse_by_group():
    """Mixed (q, s) replicates group independently and all stay exact."""

    def members():
        out = []
        for index, name in enumerate(
            ("counter", "scu03", "scu21", "counter", "scu21")
        ):
            kernel, memory_builder = KERNEL_CASES[name]
            out.append(
                EnsembleReplicate(
                    kernel,
                    4,
                    SkewedStochasticScheduler([0.4, 0.3, 0.2, 0.1]),
                    memory_builder(),
                    rng=(7, index),
                )
            )
        return out

    run_both(members, 400)


def test_shared_generator_instance_preserves_draw_order():
    """Replicates sharing one Generator must consume it in replicate
    order on both paths — the fused path draws everything upfront."""

    def members(rng):
        return [
            EnsembleReplicate(
                CounterStepKernel(),
                3,
                UniformStochasticScheduler(),
                make_counter_memory(),
                rng=rng,
            )
            for _ in range(4)
        ]

    reference = EnsembleSimulator(
        members(np.random.default_rng(19)), fuse=False, engine_kernel="numpy"
    ).run(300)
    fused = EnsembleSimulator(members(np.random.default_rng(19))).run(300)
    for left, right in zip(reference, fused):
        assert_outcomes_identical(left, right)


def test_fused_telemetry_counters():
    from repro.core.telemetry import MetricsRegistry

    telemetry = MetricsRegistry()
    kernel, memory_builder = KERNEL_CASES["counter"]
    EnsembleSimulator(
        build_members(kernel, memory_builder, seed=2), telemetry=telemetry
    ).run(250)
    counters = telemetry.counters
    assert counters["ensemble.fused_replicates"] == 4
    assert counters["ensemble.fused_blocks"] >= 1
    assert counters["ensemble.fused_steps"] == 4 * 250
    # Per-replicate accounting is unchanged by fusion.
    assert counters["ensemble.replicates"] == 4


def test_measurements_match_unfused():
    kernel, memory_builder = KERNEL_CASES["scu21"]
    reference = EnsembleSimulator(
        build_members(kernel, memory_builder, seed=23), fuse=False,
        engine_kernel="numpy",
    ).run(800)
    fused = EnsembleSimulator(build_members(kernel, memory_builder, seed=23)).run(800)
    assert reference.measurements(burn_in=80) == fused.measurements(burn_in=80)


# -- one-shot guard semantics --------------------------------------------------


def one_member():
    return [
        EnsembleReplicate(
            CounterStepKernel(),
            2,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=1,
        ),
        EnsembleReplicate(
            CounterStepKernel(),
            2,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=2,
        ),
    ]


def test_reuse_error_names_size_and_remedy():
    simulator = EnsembleSimulator(one_member())
    simulator.run(50)
    with pytest.raises(RuntimeError, match=r"2-replicate.*build a new"):
        simulator.run(50)


def test_plan_error_releases_the_guard():
    """A pure validation failure must not poison the simulator: the
    same ValueError surfaces on every retry, never the one-shot error."""
    simulator = EnsembleSimulator(one_member(), _resolver="flat")
    simulator.replicates[0].kernel = ScuStepKernel(2, 1)
    for _ in range(2):
        with pytest.raises(ValueError, match="flat resolver requires q == 0"):
            simulator.run(50)


def test_guard_holds_after_drawing_starts():
    """Failures past the planning stage keep the guard: RNG state has
    been consumed, so a silent retry would differ."""
    simulator = EnsembleSimulator(one_member())
    simulator.replicates[1].scheduler = None  # draw will explode
    with pytest.raises(Exception):
        simulator.run(50)
    with pytest.raises(RuntimeError, match="one-shot"):
        simulator.run(50)


def test_fuse_block_steps_validation():
    with pytest.raises(ValueError):
        EnsembleSimulator(one_member(), fuse_block_steps=0)


# -- fuse="auto" decision boundary ---------------------------------------------


def fused_blocks_run(fuse, steps, engine_kernel):
    """How many fused blocks a run of ``one_member()`` resolved —
    0 means the per-replicate path was taken."""
    from repro.core.telemetry import MetricsRegistry

    telemetry = MetricsRegistry()
    EnsembleSimulator(
        one_member(), fuse=fuse, engine_kernel=engine_kernel, telemetry=telemetry
    ).run(steps)
    return telemetry.counters.get("ensemble.fused_blocks", 0)


def test_auto_fuse_decision_boundary_pinned():
    """The per-backend crossover is part of the contract: numpy fuses
    strictly below ``_AUTO_FUSE_NUMPY_MAX_STEPS`` steps, compiled
    backends always fuse."""
    from repro.sim.ensemble import _AUTO_FUSE_NUMPY_MAX_STEPS

    assert _AUTO_FUSE_NUMPY_MAX_STEPS == 4096
    auto = EnsembleSimulator._auto_fuse
    assert auto("numpy", _AUTO_FUSE_NUMPY_MAX_STEPS - 1) is True
    assert auto("numpy", _AUTO_FUSE_NUMPY_MAX_STEPS) is False
    for backend in ("cc", "numba", "numba-parallel"):
        assert auto(backend, 10**9) is True


def test_auto_fuse_numpy_observed_through_telemetry():
    from repro.sim.ensemble import _AUTO_FUSE_NUMPY_MAX_STEPS

    below = _AUTO_FUSE_NUMPY_MAX_STEPS - 1
    assert fused_blocks_run("auto", below, "numpy") >= 1
    assert fused_blocks_run("auto", _AUTO_FUSE_NUMPY_MAX_STEPS, "numpy") == 0
    # Explicit fuse=True overrides the crossover.
    assert fused_blocks_run(True, _AUTO_FUSE_NUMPY_MAX_STEPS, "numpy") >= 1


def test_auto_fuse_results_identical_across_the_boundary():
    """The auto decision trades wall-clock only — outcomes at the
    boundary match the always-fused path bit for bit."""
    from repro.sim.ensemble import _AUTO_FUSE_NUMPY_MAX_STEPS

    steps = _AUTO_FUSE_NUMPY_MAX_STEPS
    auto = EnsembleSimulator(
        one_member(), fuse="auto", engine_kernel="numpy"
    ).run(steps)
    fused = EnsembleSimulator(
        one_member(), fuse=True, engine_kernel="numpy"
    ).run(steps)
    for a, b in zip(auto, fused):
        assert_outcomes_identical(a, b)


def test_fuse_validation():
    with pytest.raises(ValueError, match="fuse must be"):
        EnsembleSimulator(one_member(), fuse="sometimes")
