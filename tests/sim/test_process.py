"""Unit tests for repro.sim.process."""

import pytest

from repro.sim.memory import Memory
from repro.sim.ops import Read, Write
from repro.sim.process import Completion, Invoke, Process, repeat_method


def collect_markers():
    markers = []
    return markers, markers.append


class TestProcessLifecycle:
    def test_advance_primes_first_operation(self):
        def gen(pid):
            yield Read("r")

        process = Process(0, gen)
        markers, on_marker = collect_markers()
        process.advance(None, on_marker)
        assert isinstance(process.pending, Read)
        assert markers == []

    def test_markers_reported_before_operation(self):
        def gen(pid):
            yield Invoke("m")
            yield Read("r")

        process = Process(0, gen)
        markers, on_marker = collect_markers()
        process.advance(None, on_marker)
        assert markers == [Invoke("m")]
        assert isinstance(process.pending, Read)

    def test_take_step_applies_and_counts(self):
        memory = Memory()
        memory.register("r", 41)

        def gen(pid):
            value = yield Read("r")
            yield Write("r", value + 1)

        process = Process(0, gen)
        process.advance(None, lambda m: None)
        op = process.take_step(memory.apply)
        assert isinstance(op, Read)
        assert process.steps == 1
        process.refill(lambda m: None)
        process.take_step(memory.apply)
        assert memory.read("r") == 42

    def test_take_step_without_pending_raises(self):
        process = Process(0, lambda pid: iter(()))
        with pytest.raises(RuntimeError, match="no pending"):
            process.take_step(lambda op: None)

    def test_generator_exhaustion_sets_done(self):
        def gen(pid):
            yield Read("r")

        memory = Memory()
        process = Process(0, gen)
        process.advance(None, lambda m: None)
        process.take_step(memory.apply)
        process.refill(lambda m: None)
        assert process.done
        assert not process.active

    def test_crash_makes_inactive(self):
        def gen(pid):
            while True:
                yield Read("r")

        process = Process(3, gen)
        assert process.active
        process.crash()
        assert process.crashed
        assert not process.active

    def test_invalid_yield_type_rejected(self):
        def gen(pid):
            yield "not an operation"

        process = Process(0, gen)
        with pytest.raises(TypeError, match="expected an"):
            process.advance(None, lambda m: None)

    def test_result_is_sent_back(self):
        seen = []

        def gen(pid):
            value = yield Read("r")
            seen.append(value)
            yield Read("r")

        memory = Memory()
        memory.register("r", "payload")
        process = Process(0, gen)
        process.advance(None, lambda m: None)
        process.take_step(memory.apply)
        process.refill(lambda m: None)
        assert seen == ["payload"]


class TestRepeatMethod:
    def test_wraps_calls_with_markers(self):
        def method(pid):
            yield Read("r")
            return "done"

        factory = repeat_method(method, method="op", calls=2)
        process = Process(0, factory)
        markers, on_marker = collect_markers()
        memory = Memory()
        process.advance(None, on_marker)
        # First call: invoke marker seen, read pending.
        assert markers == [Invoke("op")]
        process.take_step(memory.apply)
        process.refill(on_marker)
        # Completion of call 1 and invocation of call 2 arrive together.
        assert markers[1] == Completion("done", "op")
        assert markers[2] == Invoke("op")

    def test_bounded_calls_terminate(self):
        def method(pid):
            yield Read("r")

        factory = repeat_method(method, calls=1)
        process = Process(0, factory)
        memory = Memory()
        process.advance(None, lambda m: None)
        process.take_step(memory.apply)
        process.refill(lambda m: None)
        assert process.done

    def test_pid_passed_through(self):
        pids = []

        def method(pid):
            pids.append(pid)
            yield Read("r")

        factory = repeat_method(method, calls=1)
        process = Process(7, factory)
        process.advance(None, lambda m: None)
        assert pids == [7]
