"""Backend equivalence for the pluggable resolution kernels.

The numpy backend is the oracle: every compiled backend (cc via ctypes,
numba when installed) must produce bit-identical outputs from both
resolvers on arbitrary schedules.  The suite also pins the selection
semantics of :func:`get_kernel` — silent ``auto``, warn-once
``compiled`` fallback, and loud :class:`KernelUnavailable` for explicit
backends that cannot be provided.  The numba cases skip cleanly when
numba is absent (CI runs them in a dedicated optional-numba job).
"""

import numpy as np
import pytest

from repro.sim import kernels
from repro.sim.kernels import (
    KERNEL_NAMES,
    KernelUnavailable,
    NumpyKernel,
    available_backends,
    get_kernel,
    kernel_diagnostics,
    resolve_flat,
    resolve_flat_stacked,
    resolve_heap,
    resolve_heap_stacked,
)

ORACLE = NumpyKernel()


def random_schedule(rng, n, steps):
    return rng.integers(0, n, size=steps).astype(np.int64)


def assert_resolution_equal(left, right):
    assert len(left) == len(right) == 6
    for left_arr, right_arr in zip(left, right):
        assert np.array_equal(left_arr, right_arr)


def compiled_backend(name):
    if name not in available_backends():
        pytest.skip(f"{name} backend unavailable: {kernel_diagnostics()[name]}")
    return get_kernel(name)


SHAPES = [(0, 1), (0, 3), (2, 1), (3, 2)]


@pytest.mark.parametrize("backend_name", ["cc", "numba"])
@pytest.mark.parametrize("q,s", SHAPES, ids=[f"q{q}s{s}" for q, s in SHAPES])
def test_backend_matches_numpy_oracle(backend_name, q, s):
    backend = compiled_backend(backend_name)
    rng = np.random.default_rng(17)
    for trial in range(20):
        n = int(rng.integers(1, 12))
        steps = int(rng.integers(0, 3000))
        sched = random_schedule(rng, n, steps)
        if q == 0:
            expected = resolve_flat(sched, n, s, ORACLE)
            actual = resolve_flat(sched, n, s, backend)
        else:
            expected = resolve_heap(sched, n, q, s, ORACLE)
            actual = resolve_heap(sched, n, q, s, backend)
        assert_resolution_equal(expected, actual)


@pytest.mark.parametrize("backend_name", ["cc", "numba"])
def test_backend_edge_cases(backend_name):
    backend = compiled_backend(backend_name)
    empty = np.empty(0, dtype=np.int64)
    # No steps at all; a schedule too short for any attempt; one process.
    for sched, n in [
        (empty, 3),
        (np.zeros(1, dtype=np.int64), 2),
        (np.zeros(50, dtype=np.int64), 1),
    ]:
        assert_resolution_equal(
            resolve_flat(sched, n, 1, ORACLE), resolve_flat(sched, n, 1, backend)
        )
        assert_resolution_equal(
            resolve_heap(sched, n, 2, 1, ORACLE),
            resolve_heap(sched, n, 2, 1, backend),
        )


@pytest.mark.parametrize("backend_name", ["cc", "numba"])
def test_backend_heap_scan_on_fused_stack(backend_name):
    """The stacked-replicate layout the fused path feeds the kernels."""
    backend = compiled_backend(backend_name)
    rng = np.random.default_rng(5)
    blocks = []
    pid_base = 0
    for n in (3, 5, 2):
        blocks.append(random_schedule(rng, n, 700) + pid_base)
        pid_base += n
    stacked = np.concatenate(blocks)
    assert_resolution_equal(
        resolve_heap(stacked, pid_base, 2, 2, ORACLE),
        resolve_heap(stacked, pid_base, 2, 2, backend),
    )


def test_ensemble_engine_kernel_equivalence():
    """End to end: an EnsembleSimulator run is identical under every
    available backend name."""
    from repro.algorithms.scu import ScuStepKernel, make_scu_memory
    from repro.core.scheduler import UniformStochasticScheduler
    from repro.sim import EnsembleReplicate, EnsembleSimulator

    def outcomes(engine_kernel):
        members = [
            EnsembleReplicate(
                ScuStepKernel(2, 1),
                4,
                UniformStochasticScheduler(),
                make_scu_memory(1),
                rng=(31, r),
            )
            for r in range(3)
        ]
        return EnsembleSimulator(members, engine_kernel=engine_kernel).run(400)

    reference = outcomes("numpy")
    for name in available_backends():
        result = outcomes(name)
        for left, right in zip(reference, result):
            assert np.array_equal(left.completion_times, right.completion_times)
            assert np.array_equal(left.completion_pids, right.completion_pids)
            assert vars(left.memory) == vars(right.memory)


# -- stacked resolvers ---------------------------------------------------------


def fused_stack(rng, n_values, steps):
    """A fused replicate stack plus its pid offset table."""
    pid_base = [0]
    blocks = []
    for n in n_values:
        blocks.append(random_schedule(rng, n, steps) + pid_base[-1])
        pid_base.append(pid_base[-1] + n)
    return np.concatenate(blocks), np.asarray(pid_base, dtype=np.int64)


@pytest.mark.parametrize("q,s", SHAPES, ids=[f"q{q}s{s}" for q, s in SHAPES])
def test_stacked_resolvers_match_single_pass_oracle(q, s):
    """``resolve_*_stacked`` on a fused stack is bit-identical to the
    single-pass resolvers — the concatenation theorem as an API."""
    rng = np.random.default_rng(29)
    for n_values, steps in [((3, 5, 2), 400), ((1,), 200), ((4, 4), 0)]:
        stacked, pid_base = fused_stack(rng, n_values, steps)
        n = int(pid_base[-1])
        if q == 0:
            expected = resolve_flat(stacked, n, s, ORACLE)
            actual = resolve_flat_stacked(stacked, pid_base, s, ORACLE)
        else:
            expected = resolve_heap(stacked, n, q, s, ORACLE)
            actual = resolve_heap_stacked(stacked, pid_base, q, s, ORACLE)
        assert_resolution_equal(expected, actual)


@pytest.mark.parametrize(
    "backend_name", ["cc", "numba", "numba-parallel"]
)
@pytest.mark.parametrize("q,s", SHAPES, ids=[f"q{q}s{s}" for q, s in SHAPES])
def test_stacked_resolvers_match_oracle_on_backends(backend_name, q, s):
    """Backends without stacked entry points fall through to the single
    pass; ``numba-parallel`` takes its prange-per-replicate path — both
    must match the numpy oracle bit for bit."""
    backend = compiled_backend(backend_name)
    rng = np.random.default_rng(41)
    for trial in range(8):
        count = int(rng.integers(1, 5))
        n_values = tuple(int(rng.integers(1, 8)) for _ in range(count))
        steps = int(rng.integers(0, 900))
        stacked, pid_base = fused_stack(rng, n_values, steps)
        n = int(pid_base[-1])
        if q == 0:
            expected = resolve_flat(stacked, n, s, ORACLE)
            actual = resolve_flat_stacked(stacked, pid_base, s, backend)
        else:
            expected = resolve_heap(stacked, n, q, s, ORACLE)
            actual = resolve_heap_stacked(stacked, pid_base, q, s, backend)
        assert_resolution_equal(expected, actual)


class _PythonStackedKernel(NumpyKernel):
    """A pure-python stand-in for the parallel stacked entry points, so
    the per-replicate chain-cut and local-heap protocol is pinned even
    on machines without numba."""

    def chain_walk_stacked(self, successor, starts, rank_base):
        events = []
        for k in range(len(rank_base) - 1):
            event, stop = int(starts[k]), int(rank_base[k + 1])
            while event != -1 and event < stop:
                events.append(event)
                event = int(successor[event])
        return np.asarray(events, dtype=np.int64)


def test_stacked_chain_walk_protocol_pinned():
    """Replicate k's chain starts at its first read rank's suffix argmin
    and is cut at its rank bound — the contract the numba-parallel
    backend implements."""
    rng = np.random.default_rng(7)
    stacked, pid_base = fused_stack(rng, (4, 6, 3, 5), 500)
    n = int(pid_base[-1])
    for s in (1, 3):
        assert_resolution_equal(
            resolve_flat(stacked, n, s, ORACLE),
            resolve_flat_stacked(stacked, pid_base, s, _PythonStackedKernel()),
        )


# -- selection semantics -------------------------------------------------------


def test_numpy_backend_always_available():
    assert "numpy" in available_backends()
    assert isinstance(get_kernel("numpy"), NumpyKernel)
    assert kernel_diagnostics()["numpy"] == "available"


def test_unknown_kernel_name_rejected():
    with pytest.raises(ValueError, match="unknown engine kernel"):
        get_kernel("fortran")
    assert "fortran" not in KERNEL_NAMES


def test_explicit_unavailable_backend_raises():
    missing = [
        name
        for name in ("numba", "cc", "numba-parallel")
        if name not in available_backends()
    ]
    if not missing:
        pytest.skip("every compiled backend is available here")
    with pytest.raises(KernelUnavailable, match=missing[0]):
        get_kernel(missing[0])


def test_auto_prefers_compiled_when_available():
    kernel = get_kernel("auto")
    compiled = [n for n in ("numba", "cc") if n in available_backends()]
    if compiled:
        assert kernel.name in compiled
    else:
        assert kernel.name == "numpy"


def test_numba_parallel_is_explicit_only():
    """The prange backend is opt-in: auto/compiled never select it
    implicitly (thread scheduling cannot change bits, but small blocks
    can lose to it — the caller decides), and its name is addressable."""
    assert "numba-parallel" in KERNEL_NAMES
    assert get_kernel("auto").name != "numba-parallel"
    if "numba-parallel" in available_backends():
        kernel = get_kernel("numba-parallel")
        assert kernel.name == "numba-parallel"
        assert hasattr(kernel, "chain_walk_stacked")
        assert hasattr(kernel, "heap_scan_stacked")
    else:
        with pytest.raises(KernelUnavailable):
            get_kernel("numba-parallel")


def test_compiled_falls_back_to_numpy_with_one_warning(monkeypatch):
    monkeypatch.setattr(kernels, "_KERNELS", {})
    monkeypatch.setattr(
        kernels, "_FAILURES", {"numba": "forced off", "cc": "forced off"}
    )
    monkeypatch.setattr(kernels, "_WARNED_FALLBACK", False)
    with pytest.warns(RuntimeWarning, match="falling back to the numpy kernel"):
        kernel = get_kernel("compiled")
    assert isinstance(kernel, NumpyKernel)
    # Warn-once: a second request stays silent.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert isinstance(get_kernel("compiled"), NumpyKernel)


def test_cc_build_caches_shared_object(tmp_path, monkeypatch):
    if "cc" not in available_backends():
        pytest.skip("no C compiler on this machine")
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    first = kernels._build_cc_library()
    built = list(tmp_path.glob("resolve_*.so"))
    assert len(built) == 1
    mtime = built[0].stat().st_mtime_ns
    second = kernels._build_cc_library()
    assert built[0].stat().st_mtime_ns == mtime  # reused, not rebuilt
    assert first is not second  # fresh CDLL handles over the same file
