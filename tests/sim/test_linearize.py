"""Tests for the linearizability checker (repro.verify)."""

import pytest

from repro.sim.history import History
from repro.verify.linearize import (
    OpRecord,
    check_history,
    check_linearizable,
    operations_from_history,
)
from repro.verify.specs import (
    EMPTY,
    CounterSpec,
    QueueSpec,
    RegisterSpec,
    StackSpec,
)


def op(op_id, pid, method, arg, result, invoked, responded):
    return OpRecord(op_id, pid, method, arg, result, invoked, responded)


class TestSequentialHistories:
    def test_counter_sequence_ok(self):
        ops = [
            op(0, 0, "fetch_and_inc", None, 0, 1, 2),
            op(1, 0, "fetch_and_inc", None, 1, 3, 4),
        ]
        assert check_linearizable(ops, CounterSpec()).is_linearizable

    def test_counter_wrong_value_rejected(self):
        ops = [
            op(0, 0, "fetch_and_inc", None, 0, 1, 2),
            op(1, 0, "fetch_and_inc", None, 5, 3, 4),
        ]
        assert not check_linearizable(ops, CounterSpec()).is_linearizable

    def test_register_sequence(self):
        ops = [
            op(0, 0, "write", "x", None, 1, 2),
            op(1, 0, "read", None, "x", 3, 4),
        ]
        assert check_linearizable(ops, RegisterSpec()).is_linearizable

    def test_stale_read_after_write_rejected(self):
        # read returning the old value strictly after the write responded.
        ops = [
            op(0, 0, "write", "x", None, 1, 2),
            op(1, 1, "read", None, None, 3, 4),
        ]
        assert not check_linearizable(ops, RegisterSpec("init") ).is_linearizable


class TestConcurrentReordering:
    def test_overlapping_ops_may_commute(self):
        # Two overlapping increments: results 1 then 0 in response order
        # is fine because they overlap (either linearization order).
        ops = [
            op(0, 0, "fetch_and_inc", None, 1, 1, 10),
            op(1, 1, "fetch_and_inc", None, 0, 2, 9),
        ]
        assert check_linearizable(ops, CounterSpec()).is_linearizable

    def test_real_time_order_enforced(self):
        # Non-overlapping: the earlier op must see the smaller value.
        ops = [
            op(0, 0, "fetch_and_inc", None, 1, 1, 2),
            op(1, 1, "fetch_and_inc", None, 0, 3, 4),
        ]
        assert not check_linearizable(ops, CounterSpec()).is_linearizable

    def test_queue_new_value_before_old_rejected(self):
        # Sequentially enqueue a then b; a dequeue strictly later must
        # not return b before some dequeue returns a.
        ops = [
            op(0, 0, "enqueue", "a", "a", 1, 2),
            op(1, 0, "enqueue", "b", "b", 3, 4),
            op(2, 1, "dequeue", None, "b", 5, 6),
        ]
        assert not check_linearizable(ops, QueueSpec()).is_linearizable

    def test_stack_lifo_witness(self):
        ops = [
            op(0, 0, "push", "a", "a", 1, 2),
            op(1, 0, "push", "b", "b", 3, 4),
            op(2, 1, "pop", None, "b", 5, 6),
            op(3, 1, "pop", None, "a", 7, 8),
        ]
        result = check_linearizable(ops, StackSpec())
        assert result.is_linearizable
        assert result.witness == [0, 1, 2, 3]

    def test_pop_empty_between_pushes(self):
        # pop -> EMPTY overlapping a push can linearize before it.
        ops = [
            op(0, 0, "push", "a", "a", 1, 10),
            op(1, 1, "pop", None, EMPTY, 2, 3),
        ]
        assert check_linearizable(ops, StackSpec()).is_linearizable


class TestPendingOperations:
    def test_pending_op_may_have_taken_effect(self):
        # The enqueue never responded, but a dequeue saw its value:
        # linearizable because the pending op may have taken effect.
        ops = [
            op(0, 0, "enqueue", "a", None, 1, None),
            op(1, 1, "dequeue", None, "a", 2, 5),
        ]
        assert check_linearizable(ops, QueueSpec()).is_linearizable

    def test_pending_op_may_be_omitted(self):
        ops = [
            op(0, 0, "enqueue", "a", None, 1, None),
            op(1, 1, "dequeue", None, EMPTY, 2, 5),
        ]
        assert check_linearizable(ops, QueueSpec()).is_linearizable

    def test_effect_must_be_consistent(self):
        # The same pending enqueue cannot be dequeued twice.
        ops = [
            op(0, 0, "enqueue", "a", None, 1, None),
            op(1, 1, "dequeue", None, "a", 2, 5),
            op(2, 1, "dequeue", None, "a", 6, 9),
        ]
        assert not check_linearizable(ops, QueueSpec()).is_linearizable


class TestFromHistory:
    def test_round_trip(self):
        history = History()
        history.invoke(1, 0, "push", argument="x")
        history.respond(3, 0, "push", result="x")
        history.invoke(4, 1, "pop")
        history.respond(6, 1, "pop", result="x")
        history.invoke(7, 0, "pop")  # pending
        ops = operations_from_history(history)
        assert len(ops) == 3
        assert ops[0].argument == "x"
        assert ops[2].pending
        assert check_history(history, StackSpec()).is_linearizable

    def test_budget_enforced(self):
        ops = [
            op(i, i, "fetch_and_inc", None, i, 1, None) for i in range(12)
        ]
        with pytest.raises(ArithmeticError, match="exceeded"):
            check_linearizable(ops, CounterSpec(), max_nodes=10)


class TestEndToEndWithSimulator:
    def _normalize(self, algorithm_empty):
        def norm(result):
            return EMPTY if result is algorithm_empty else result

        return norm

    def test_treiber_stack_runs_are_linearizable(self):
        from repro.algorithms import treiber
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            treiber.treiber_workload(
                treiber.TreiberWorkload(seed=5), calls=6
            ),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=treiber.make_stack_memory(),
            record_history=True,
            rng=7,
        )
        result = sim.run(10_000)
        check = check_history(
            result.history,
            StackSpec(),
            normalize_result=self._normalize(treiber.EMPTY),
        )
        assert check.is_linearizable

    def test_ms_queue_runs_are_linearizable(self):
        from repro.algorithms import msqueue
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            msqueue.ms_queue_workload(
                msqueue.MSQueueWorkload(seed=6), calls=6
            ),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=msqueue.make_queue_memory(),
            record_history=True,
            rng=8,
        )
        result = sim.run(10_000)
        check = check_history(
            result.history,
            QueueSpec(),
            normalize_result=self._normalize(msqueue.EMPTY),
        )
        assert check.is_linearizable

    def test_harris_set_runs_are_linearizable(self):
        from repro.algorithms.harris_set import (
            SetWorkload,
            harris_set_workload,
            make_set_memory,
        )
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator
        from repro.verify.specs import SetSpec

        sim = Simulator(
            harris_set_workload(SetWorkload(key_range=4, seed=2), calls=5),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=make_set_memory(),
            record_history=True,
            rng=10,
        )
        result = sim.run(20_000)
        assert check_history(result.history, SetSpec()).is_linearizable

    def test_cas_counter_runs_are_linearizable(self):
        from repro.algorithms.counter import cas_counter, make_counter_memory
        from repro.core.scheduler import UniformStochasticScheduler
        from repro.sim.executor import Simulator

        sim = Simulator(
            cas_counter(calls=8),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=make_counter_memory(),
            record_history=True,
            rng=9,
        )
        result = sim.run(10_000)
        assert check_history(result.history, CounterSpec()).is_linearizable
