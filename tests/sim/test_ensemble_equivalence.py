"""The ensemble engine's hard requirement: bit-identity with run_batched.

Every replicate of an :class:`EnsembleSimulator` run — seeded with the
same tuple — must produce the identical schedule, completion times and
pids, per-process step/completion accounting, and final memory (values
*and* access counters) as a fresh :class:`Simulator` driven through
``run_batched``.  These tests enforce that replicate-by-replicate across
the scheduler families of Definition 1 and across kernels (the CAS
counter and several ``SCU(q, s)`` members), for both resolution paths
(the vectorized ``q == 0`` scan and the heap-driven general scan).
"""

import numpy as np
import pytest

from repro.algorithms.counter import (
    CounterStepKernel,
    cas_counter,
    make_counter_memory,
)
from repro.algorithms.scu import (
    Proposal,
    ScuStepKernel,
    make_scu_memory,
    scu_algorithm,
)
from repro.core.latency import measure_latencies, measure_latencies_ensemble
from repro.core.scheduler import (
    HardwareLikeScheduler,
    LotteryScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.sim import (
    EnsembleReplicate,
    EnsembleSimulator,
    Simulator,
)

# -- fixtures-in-spirit: kernels, workloads, schedulers --------------------------

KERNEL_CASES = {
    "counter": (
        CounterStepKernel(),
        cas_counter,
        make_counter_memory,
    ),
    "scu01": (
        ScuStepKernel(0, 1),
        lambda: scu_algorithm(0, 1),
        lambda: make_scu_memory(1),
    ),
    "scu03": (
        ScuStepKernel(0, 3),
        lambda: scu_algorithm(0, 3),
        lambda: make_scu_memory(3),
    ),
    "scu21": (
        ScuStepKernel(2, 1),
        lambda: scu_algorithm(2, 1),
        lambda: make_scu_memory(1),
    ),
    "scu32": (
        ScuStepKernel(3, 2),
        lambda: scu_algorithm(3, 2),
        lambda: make_scu_memory(2),
    ),
}

SCHEDULER_CASES = {
    "uniform": UniformStochasticScheduler,
    "skewed": lambda: SkewedStochasticScheduler([0.4, 0.3, 0.2, 0.05, 0.05]),
    "lottery": lambda: LotteryScheduler([5, 1, 1, 2, 3]),
    "hardware": lambda: HardwareLikeScheduler(),
}


class SelectOnlyScheduler:
    """A duck-typed scheduler without the select_batch protocol; the
    ensemble engine must fall back to sequential selection."""

    def select(self, time, active, rng):
        return active[int(rng.integers(len(active)))]


def assert_proposal_chains_equal(left, right):
    """Compare decision-register values without recursing: committed
    Proposal chains can be thousands of payload links deep."""
    while isinstance(left, Proposal) or isinstance(right, Proposal):
        assert isinstance(left, Proposal) and isinstance(right, Proposal)
        assert (left.pid, left.sequence) == (right.pid, right.sequence)
        left, right = left.payload, right.payload
    assert left == right


def assert_replicate_matches_batched(
    kernel,
    factory_builder,
    memory_builder,
    scheduler_builder,
    *,
    n,
    steps,
    seed,
    resolver="auto",
):
    reference = Simulator(
        factory_builder(),
        scheduler_builder(),
        n_processes=n,
        memory=memory_builder(),
        record_schedule=True,
        rng=seed,
    ).run_batched(steps)
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                kernel,
                n,
                scheduler_builder(),
                memory_builder(),
                rng=seed,
            )
        ],
        record_schedule=True,
        _resolver=resolver,
    )
    outcome = ensemble.run(steps).replicates[0]
    recorder = outcome.recorder()
    expected = reference.recorder

    assert np.array_equal(
        expected.schedule.as_array(), recorder.schedule.as_array()
    )
    assert expected.completion_times == recorder.completion_times
    assert expected.completion_pids == recorder.completion_pids
    assert expected.completions == recorder.completions
    assert expected.steps == recorder.steps
    assert expected.total_steps == recorder.total_steps

    assert reference.memory.total_operations == outcome.memory.total_operations
    expected_registers = reference.memory.registers()
    actual_registers = outcome.memory.registers()
    assert set(expected_registers) == set(actual_registers)
    for name in expected_registers:
        want, got = expected_registers[name], actual_registers[name]
        assert (
            want.reads,
            want.writes,
            want.cas_attempts,
            want.cas_successes,
            want.rmws,
        ) == (
            got.reads,
            got.writes,
            got.cas_attempts,
            got.cas_successes,
            got.rmws,
        ), name
        assert_proposal_chains_equal(want.value, got.value)


# -- the bit-identity matrix -----------------------------------------------------


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_CASES))
def test_bit_identical_to_batched(kernel_name, scheduler_name):
    kernel, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
    scheduler_builder = SCHEDULER_CASES[scheduler_name]
    kernel_index = sorted(KERNEL_CASES).index(kernel_name)
    scheduler_index = sorted(SCHEDULER_CASES).index(scheduler_name)
    assert_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        scheduler_builder,
        n=5,
        steps=3000,
        seed=(17, kernel_index, scheduler_index),
    )


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
def test_edge_sizes_bit_identical(kernel_name):
    kernel, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
    for n, steps in [(1, 200), (2, 500), (5, 1), (5, 0), (7, 4096 + 17)]:
        assert_replicate_matches_batched(
            kernel,
            factory_builder,
            memory_builder,
            UniformStochasticScheduler,
            n=n,
            steps=steps,
            seed=(n, steps),
        )


@pytest.mark.parametrize("kernel_name", ["counter", "scu01", "scu03"])
def test_heap_resolver_matches_on_flat_kernels(kernel_name):
    # The q == 0 vectorized scan and the general heap scan implement the
    # same greedy; forcing the heap onto flat kernels cross-checks both.
    kernel, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
    assert_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        UniformStochasticScheduler,
        n=6,
        steps=2500,
        seed=23,
        resolver="heap",
    )


def test_duck_typed_scheduler_falls_back_to_sequential_select():
    kernel, factory_builder, memory_builder = KERNEL_CASES["counter"]
    assert_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SelectOnlyScheduler,
        n=4,
        steps=1500,
        seed=3,
    )


def test_heterogeneous_ensemble_matches_batched_per_replicate():
    # Mixed process counts AND mixed kernels in one ensemble, mirroring
    # the FIG5/THM4 benchmark shape: replicate r must equal the
    # standalone batched run with replicate r's own seed.
    specs = [
        ("counter", 3, 31),
        ("counter", 6, 32),
        ("scu03", 4, 33),
        ("scu21", 5, 34),
    ]
    replicates = []
    for kernel_name, n, seed in specs:
        kernel, _, memory_builder = KERNEL_CASES[kernel_name]
        replicates.append(
            EnsembleReplicate(
                kernel,
                n,
                UniformStochasticScheduler(),
                memory_builder(),
                rng=seed,
            )
        )
    result = EnsembleSimulator(replicates, record_schedule=True).run(2000)
    for outcome, (kernel_name, n, seed) in zip(result, specs):
        _, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
        reference = Simulator(
            factory_builder(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=memory_builder(),
            record_schedule=True,
            rng=seed,
        ).run_batched(2000)
        recorder = outcome.recorder()
        assert np.array_equal(
            reference.recorder.schedule.as_array(),
            recorder.schedule.as_array(),
        )
        assert reference.recorder.completion_times == recorder.completion_times
        assert reference.recorder.completion_pids == recorder.completion_pids


# -- engine contract -------------------------------------------------------------


class TestEnsembleContract:
    def test_rejects_unknown_crash_pids(self):
        # Crash schedules over known pids are supported since PR 3 (see
        # test_ensemble_crash_equivalence); what remains rejected is a
        # crash map naming a pid the replicate does not have.
        replicate = EnsembleReplicate(
            CounterStepKernel(),
            4,
            UniformStochasticScheduler(),
            crash_times={9: 50},
        )
        with pytest.raises(
            ValueError, match=r"replicate 0:.*unknown process 9.*run_batched"
        ):
            EnsembleSimulator([replicate])

    def test_rejects_empty_ensemble(self):
        with pytest.raises(ValueError, match="at least one replicate"):
            EnsembleSimulator([])

    def test_rejects_non_kernel(self):
        replicate = EnsembleReplicate(
            object(), 4, UniformStochasticScheduler()
        )
        with pytest.raises(TypeError, match="vector_kernel"):
            EnsembleSimulator([replicate])

    def test_run_is_one_shot(self):
        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    CounterStepKernel(),
                    3,
                    UniformStochasticScheduler(),
                    make_counter_memory(),
                    rng=0,
                )
            ]
        )
        ensemble.run(100)
        with pytest.raises(RuntimeError, match="one-shot"):
            ensemble.run(100)

    def test_rejects_negative_steps(self):
        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    CounterStepKernel(), 3, UniformStochasticScheduler()
                )
            ]
        )
        with pytest.raises(ValueError, match="non-negative"):
            ensemble.run(-1)

    def test_invalid_scheduler_selection_raises(self):
        class OutOfRangeScheduler:
            def select(self, time, active, rng):
                return len(active)  # one past the end

        ensemble = EnsembleSimulator(
            [
                EnsembleReplicate(
                    CounterStepKernel(), 3, OutOfRangeScheduler()
                )
            ]
        )
        with pytest.raises(RuntimeError, match="inactive process"):
            ensemble.run(10)


# -- measurement plumbing --------------------------------------------------------


class TestEnsembleMeasurements:
    def test_measurements_match_measure_latencies(self):
        seeds = [(9, 4, r) for r in range(3)]
        ensemble_measurements = measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            4,
            6000,
            seeds,
            memory_factory=make_counter_memory,
        )
        for seed, measurement in zip(seeds, ensemble_measurements):
            reference = measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                4,
                6000,
                memory=make_counter_memory(),
                rng=seed,
                batched=True,
            )
            assert measurement == reference

    def test_metric_arrays_cover_replicates(self):
        replicates = [
            EnsembleReplicate(
                CounterStepKernel(),
                4,
                UniformStochasticScheduler(),
                make_counter_memory(),
                rng=seed,
            )
            for seed in range(5)
        ]
        result = EnsembleSimulator(replicates).run(5000)
        assert len(result) == 5
        assert result.system_latencies(burn_in=500).shape == (5,)
        assert result.completion_rates().shape == (5,)
        ratios = result.fairness_ratios(burn_in=500)
        assert ratios.shape == (5,)
        assert np.all(ratios > 0)
        assert np.all(result.total_completions() > 0)

    def test_to_simulation_result_roundtrip(self):
        replicate = EnsembleReplicate(
            CounterStepKernel(),
            4,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=1,
        )
        outcome = EnsembleSimulator([replicate]).run(2000)[0]
        result = outcome.to_simulation_result()
        assert result.steps_executed == 2000
        assert result.completions_this_run == outcome.total_completions
        assert result.completion_rate == outcome.total_completions / 2000
        assert result.memory is outcome.memory

    def test_kernel_required_for_workloads_without_one(self):
        with pytest.raises(ValueError, match="vector_kernel"):
            measure_latencies_ensemble(
                cas_counter(calls=3),  # finite workload: no kernel tagged
                UniformStochasticScheduler,
                4,
                1000,
                [0, 1],
            )
