"""Tests for the timeline rendering tools (repro.sim.debug)."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.debug import TimelineRecorder, describe_operation, render_history
from repro.sim.executor import Simulator
from repro.sim.history import History
from repro.sim.ops import CAS, FetchAndIncrement, Nop, Read, ReadModifyWrite, Write


class TestDescribeOperation:
    def test_read(self):
        assert describe_operation(Read("r"), 5) == "read r -> 5"

    def test_write(self):
        assert describe_operation(Write("r", 3)) == "write r <- 3"

    def test_cas_success_and_failure(self):
        assert "[ok]" in describe_operation(CAS("r", 0, 1), True)
        assert "[fail]" in describe_operation(CAS("r", 0, 1), False)

    def test_others(self):
        assert "F&I" in describe_operation(FetchAndIncrement("r"), 7)
        assert "RMW" in describe_operation(ReadModifyWrite("r", lambda v: v), 2)
        assert describe_operation(Nop()) == "nop"


class TestTimelineRecorder:
    def test_records_every_step(self):
        sim = Simulator(
            cas_counter(),
            AdversarialScheduler.round_robin(),
            n_processes=2,
            memory=make_counter_memory(),
        )
        timeline = TimelineRecorder(sim)
        timeline.run(6)
        assert len(timeline.rows) == 6
        assert [row[1] for row in timeline.rows] == [0, 1, 0, 1, 0, 1]

    def test_completion_marked(self):
        sim = Simulator(
            cas_counter(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_counter_memory(),
            rng=0,
        )
        timeline = TimelineRecorder(sim)
        timeline.run(4)
        rendered = timeline.render()
        assert rendered.count("<-- completes") == 2
        assert "CAS" in rendered
        assert "read" in rendered

    def test_stops_when_inactive(self):
        sim = Simulator(
            cas_counter(calls=1),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=make_counter_memory(),
            rng=0,
        )
        timeline = TimelineRecorder(sim)
        timeline.run(100)
        assert len(timeline.rows) == 2  # read + CAS, then done


class TestRenderHistory:
    def test_interleaved_events(self):
        history = History()
        history.invoke(1, 0, "push", argument="x")
        history.invoke(2, 1, "pop")
        history.respond(3, 0, "push", result="x")
        history.respond(4, 1, "pop", result="x")
        out = render_history(history)
        lines = out.splitlines()
        assert "p0 invokes push('x')" in lines[0]
        assert "p1 returns pop -> 'x'" in lines[-1]

    def test_limit(self):
        history = History()
        for k in range(30):
            history.invoke(2 * k + 1, 0, "op")
            history.respond(2 * k + 2, 0, "op")
        out = render_history(history, limit=10)
        assert "more events" in out
