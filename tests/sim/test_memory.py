"""Unit tests for repro.sim.memory and repro.sim.ops semantics."""

import pytest

from repro.sim.memory import Memory
from repro.sim.ops import (
    CAS,
    FetchAndIncrement,
    Nop,
    Read,
    ReadModifyWrite,
    Write,
    augmented_cas,
)


@pytest.fixture
def memory():
    mem = Memory()
    mem.register("r", 0)
    return mem


class TestRegisters:
    def test_register_initialises(self, memory):
        assert memory.read("r") == 0

    def test_register_reinitialises(self, memory):
        memory.register("r", 42)
        assert memory.read("r") == 42

    def test_implicit_register_defaults_none(self, memory):
        assert memory.read("fresh") is None
        assert "fresh" in memory

    def test_contains(self, memory):
        assert "r" in memory
        assert "other" not in memory

    def test_registers_snapshot(self, memory):
        snap = memory.registers()
        assert "r" in snap


class TestReadWrite:
    def test_read(self, memory):
        assert memory.apply(Read("r")) == 0
        assert memory["r"].reads == 1

    def test_write(self, memory):
        assert memory.apply(Write("r", 7)) is None
        assert memory.read("r") == 7
        assert memory["r"].writes == 1

    def test_total_operations_counted(self, memory):
        memory.apply(Read("r"))
        memory.apply(Write("r", 1))
        memory.apply(Nop())
        assert memory.total_operations == 3


class TestCAS:
    def test_successful_cas(self, memory):
        assert memory.apply(CAS("r", 0, 5)) is True
        assert memory.read("r") == 5
        assert memory["r"].cas_successes == 1

    def test_failed_cas_leaves_value(self, memory):
        assert memory.apply(CAS("r", 99, 5)) is False
        assert memory.read("r") == 0
        assert memory["r"].cas_attempts == 1
        assert memory["r"].cas_successes == 0

    def test_cas_on_none_initial(self):
        mem = Memory()
        assert mem.apply(CAS("x", None, "set")) is True
        assert mem.read("x") == "set"

    def test_cas_compares_by_equality(self, memory):
        memory.register("r", (1, 2))
        assert memory.apply(CAS("r", (1, 2), "new")) is True


class TestReadModifyWrite:
    def test_augmented_cas_success_returns_old(self, memory):
        result = memory.apply(augmented_cas("r", 0, 1))
        assert result == 0
        assert memory.read("r") == 1

    def test_augmented_cas_failure_returns_current(self, memory):
        memory.register("r", 3)
        result = memory.apply(augmented_cas("r", 0, 1))
        assert result == 3
        assert memory.read("r") == 3

    def test_fetch_and_increment(self, memory):
        assert memory.apply(FetchAndIncrement("r")) == 0
        assert memory.apply(FetchAndIncrement("r")) == 1
        assert memory.read("r") == 2

    def test_fetch_and_increment_amount(self, memory):
        memory.apply(FetchAndIncrement("r", amount=5))
        assert memory.read("r") == 5

    def test_fetch_and_increment_on_none_starts_at_zero(self):
        mem = Memory()
        assert mem.apply(FetchAndIncrement("fresh")) == 0
        assert mem.read("fresh") == 1

    def test_generic_rmw(self, memory):
        memory.register("r", 10)
        old = memory.apply(ReadModifyWrite("r", lambda v: v * 2))
        assert old == 10
        assert memory.read("r") == 20

    def test_rmw_counter_incremented(self, memory):
        memory.apply(ReadModifyWrite("r", lambda v: v))
        assert memory["r"].rmws == 1


class TestNop:
    def test_nop_touches_nothing(self, memory):
        before = memory.read("r")
        assert memory.apply(Nop()) is None
        assert memory.read("r") == before
        assert memory["r"].reads == 0

    def test_unknown_operation_type_rejected(self, memory):
        class Bogus:
            register = "r"

        with pytest.raises(TypeError, match="unknown operation"):
            memory.apply(Bogus())
