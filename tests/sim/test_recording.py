"""Tests for the Appendix A.2 schedule-recording methodology."""

import numpy as np
import pytest

from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.recording import ScheduleRecording, record_schedule


class TestExactRecovery:
    def test_fai_method_recovers_schedule_exactly(self):
        recording = record_schedule(
            UniformStochasticScheduler(), n_processes=4, steps=5_000, rng=0
        )
        assert recording.agreement() == 1.0
        assert np.array_equal(
            recording.recovered, recording.actual[: recording.recovered.size]
        )

    def test_round_robin_recovery(self):
        recording = record_schedule(
            AdversarialScheduler.round_robin(), n_processes=3, steps=9, rng=0
        )
        assert recording.recovered.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_every_step_is_a_ticket(self):
        recording = record_schedule(
            UniformStochasticScheduler(), n_processes=2, steps=100, rng=1
        )
        assert recording.recovered.size == recording.actual.size


class TestPerturbedRecording:
    def test_delay_hides_instrumentation_steps(self):
        recording = record_schedule(
            UniformStochasticScheduler(),
            n_processes=4,
            steps=8_000,
            delay=2,
            rng=2,
        )
        # Roughly a third of the steps are recording steps.
        ratio = recording.recovered.size / recording.actual.size
        assert ratio == pytest.approx(1 / 3, abs=0.05)

    def test_delay_biases_local_statistics(self):
        # The paper: "since the timer call causes a delay to the caller,
        # a process is less likely to be scheduled twice in succession"
        # *in the recording*.  The recovered self-succession rate drops
        # well below the true 1/n.
        n = 4

        def self_succession(schedule):
            return float(np.mean(schedule[:-1] == schedule[1:]))

        exact = record_schedule(
            UniformStochasticScheduler(), n, 40_000, delay=0, rng=3
        )
        perturbed = record_schedule(
            UniformStochasticScheduler(), n, 40_000, delay=3, rng=3
        )
        assert self_succession(exact.recovered) == pytest.approx(1 / n, abs=0.02)
        assert self_succession(perturbed.recovered) < 0.6 / n

    def test_long_run_shares_unbiased_either_way(self):
        # Despite the local bias, the Figure 3 statistic survives.
        n = 4
        perturbed = record_schedule(
            UniformStochasticScheduler(), n, 40_000, delay=3, rng=4
        )
        shares = np.bincount(perturbed.recovered, minlength=n) / perturbed.recovered.size
        assert np.allclose(shares, 1 / n, atol=0.02)

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            record_schedule(UniformStochasticScheduler(), 2, 10, delay=-1)

    def test_empty_recording_agreement_raises(self):
        recording = ScheduleRecording(
            recovered=np.array([], dtype=np.int64),
            actual=np.array([], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            recording.agreement()
