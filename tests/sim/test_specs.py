"""Direct tests for the sequential specifications (repro.verify.specs)."""

import pytest

from repro.verify.specs import (
    EMPTY,
    CounterSpec,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    StackSpec,
)


class TestCounterSpec:
    def test_returns_pre_increment(self):
        spec = CounterSpec()
        state, result = spec.apply(spec.initial_state(), "fetch_and_inc", None)
        assert (state, result) == (1, 0)

    def test_custom_initial(self):
        assert CounterSpec(initial=10).initial_state() == 10

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            CounterSpec().apply(0, "decrement", None)


class TestRegisterSpec:
    def test_read_write(self):
        spec = RegisterSpec("init")
        state, result = spec.apply(spec.initial_state(), "read", None)
        assert result == "init"
        state, _ = spec.apply(state, "write", "new")
        assert spec.apply(state, "read", None)[1] == "new"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            RegisterSpec().apply(None, "swap", 1)


class TestStackSpec:
    def test_lifo(self):
        spec = StackSpec()
        state = spec.initial_state()
        state, _ = spec.apply(state, "push", "a")
        state, _ = spec.apply(state, "push", "b")
        state, top = spec.apply(state, "pop", None)
        assert top == "b"

    def test_pop_empty(self):
        spec = StackSpec()
        state, result = spec.apply(spec.initial_state(), "pop", None)
        assert result == EMPTY
        assert state == ()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            StackSpec().apply((), "peek", None)


class TestQueueSpec:
    def test_fifo(self):
        spec = QueueSpec()
        state = spec.initial_state()
        state, _ = spec.apply(state, "enqueue", "a")
        state, _ = spec.apply(state, "enqueue", "b")
        state, front = spec.apply(state, "dequeue", None)
        assert front == "a"

    def test_short_method_names(self):
        spec = QueueSpec()
        state, _ = spec.apply(spec.initial_state(), "enq", 1)
        _, out = spec.apply(state, "deq", None)
        assert out == 1

    def test_dequeue_empty(self):
        spec = QueueSpec()
        assert spec.apply((), "dequeue", None)[1] == EMPTY

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            QueueSpec().apply((), "peek", None)


class TestSetSpec:
    def test_insert_remove_contains(self):
        spec = SetSpec()
        state = spec.initial_state()
        state, added = spec.apply(state, "insert", 3)
        assert added is True
        state, added_again = spec.apply(state, "insert", 3)
        assert added_again is False
        assert spec.apply(state, "contains", 3)[1] is True
        state, removed = spec.apply(state, "remove", 3)
        assert removed is True
        assert spec.apply(state, "contains", 3)[1] is False

    def test_remove_absent(self):
        spec = SetSpec()
        assert spec.apply(frozenset(), "remove", 9)[1] is False

    def test_pure_application(self):
        spec = SetSpec()
        original = frozenset({1})
        spec.apply(original, "insert", 2)
        assert original == frozenset({1})

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            SetSpec().apply(frozenset(), "union", {1})
