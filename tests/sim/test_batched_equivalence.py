"""Trace equivalence of ``Simulator.run_batched`` and ``Simulator.run``.

The batched fast path must be *observationally identical* to the
step-by-step executor: same seed in, same schedule, completions,
completion times, history, final memory, final RNG state and final
scheduler state out.  These tests drive both paths over every scheduler
family, with and without crashes, with finite workloads and with stop
conditions, and compare everything observable.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.algorithms.scu import make_scu_memory, scu_algorithm
from repro.core.scheduler import (
    AdversarialScheduler,
    HardwareLikeScheduler,
    LotteryScheduler,
    MarkovModulatedScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.sim.executor import Simulator

# SCU proposals chain recursively through their payloads (each proposal's
# payload is the previously-read view), so ``==`` on final register values
# recurses to the depth of the CAS-success chain.
sys.setrecursionlimit(100_000)

N = 8
STEPS = 2_000
CRASHES = {1: 500, 4: 1500, 7: 1501}


def scheduler_variants():
    return {
        "uniform": lambda: UniformStochasticScheduler(),
        "skewed": lambda: SkewedStochasticScheduler(
            [1.0 + 0.5 * pid for pid in range(N)]
        ),
        "lottery": lambda: LotteryScheduler([1 + pid for pid in range(N)]),
        "hardware": lambda: HardwareLikeScheduler(),
        "hardware-q4": lambda: HardwareLikeScheduler(mean_quantum=4.0),
        "markov": lambda: MarkovModulatedScheduler(),
        "round-robin": lambda: AdversarialScheduler.round_robin(),
    }


SCHEDULERS = sorted(scheduler_variants())


def build(
    scheduler,
    *,
    crash_times=None,
    calls=None,
    workload="scu",
    seed=12345,
):
    if workload == "scu":
        factory = scu_algorithm(2, 2, calls=calls)
        memory = make_scu_memory(2)
    else:
        factory = cas_counter(calls=calls)
        memory = make_counter_memory()
    return Simulator(
        factory,
        scheduler,
        n_processes=N,
        memory=memory,
        crash_times=crash_times,
        record_schedule=True,
        record_history=True,
        rng=seed,
    )


def register_summary(memory):
    return {
        name: (reg.value, reg.reads, reg.writes, reg.cas_attempts,
               reg.cas_successes, reg.rmws)
        for name, reg in memory.registers().items()
    }


def assert_equivalent(serial_sim, batched_sim, serial_result, batched_result):
    """Everything observable must coincide between the two executions."""
    assert np.array_equal(
        serial_sim.recorder.schedule.as_array(),
        batched_sim.recorder.schedule.as_array(),
    )
    assert serial_sim.recorder.completions == batched_sim.recorder.completions
    assert serial_sim.recorder.completion_times == batched_sim.recorder.completion_times
    assert serial_sim.recorder.completion_pids == batched_sim.recorder.completion_pids
    assert serial_sim.recorder.steps == batched_sim.recorder.steps
    assert serial_sim.recorder.total_steps == batched_sim.recorder.total_steps
    assert serial_sim.time == batched_sim.time
    assert register_summary(serial_sim.memory) == register_summary(batched_sim.memory)
    assert serial_sim.memory.total_operations == batched_sim.memory.total_operations
    assert serial_sim.history.invocations == batched_sim.history.invocations
    assert serial_sim.history.responses == batched_sim.history.responses
    # RNG streams must end in the same place, or subsequent runs diverge.
    assert (
        serial_sim.rng.bit_generator.state == batched_sim.rng.bit_generator.state
    )
    assert serial_result.steps_executed == batched_result.steps_executed
    assert serial_result.steps_this_run == batched_result.steps_this_run
    assert serial_result.completions_this_run == batched_result.completions_this_run
    assert serial_result.stopped_early == batched_result.stopped_early
    for process_a, process_b in zip(serial_sim.processes, batched_sim.processes):
        assert process_a.steps == process_b.steps
        assert process_a.completions == process_b.completions
        assert process_a.crashed == process_b.crashed
        assert process_a.done == process_b.done


@pytest.mark.parametrize("name", SCHEDULERS)
def test_equivalent_without_crashes(name):
    make = scheduler_variants()[name]
    serial = build(make())
    batched = build(make())
    result_serial = serial.run(STEPS)
    result_batched = batched.run_batched(STEPS)
    assert_equivalent(serial, batched, result_serial, result_batched)


@pytest.mark.parametrize("name", SCHEDULERS)
def test_equivalent_with_crashes(name):
    make = scheduler_variants()[name]
    serial = build(make(), crash_times=dict(CRASHES))
    batched = build(make(), crash_times=dict(CRASHES))
    result_serial = serial.run(STEPS)
    result_batched = batched.run_batched(STEPS)
    assert_equivalent(serial, batched, result_serial, result_batched)


@pytest.mark.parametrize("name", SCHEDULERS)
def test_equivalent_finite_workload(name):
    # Processes finish mid-block, exercising the rewind-and-replay path.
    make = scheduler_variants()[name]
    serial = build(make(), calls=30)
    batched = build(make(), calls=30)
    result_serial = serial.run(STEPS)
    result_batched = batched.run_batched(STEPS)
    assert_equivalent(serial, batched, result_serial, result_batched)


@pytest.mark.parametrize("workload", ["scu", "counter"])
def test_equivalent_counter_and_small_batches(workload):
    # Tiny batch sizes force many block boundaries without crash times.
    serial = build(UniformStochasticScheduler(), workload=workload)
    batched = build(UniformStochasticScheduler(), workload=workload)
    result_serial = serial.run(STEPS)
    result_batched = batched.run_batched(STEPS, batch_size=7)
    assert_equivalent(serial, batched, result_serial, result_batched)


def test_serial_and_batched_interleave():
    # run / run_batched / run on one simulator == one long run on another.
    serial = build(SkewedStochasticScheduler([1 + pid for pid in range(N)]),
                   crash_times=dict(CRASHES))
    mixed = build(SkewedStochasticScheduler([1 + pid for pid in range(N)]),
                  crash_times=dict(CRASHES))
    result_serial = serial.run(STEPS)
    mixed.run(777)
    mixed.run_batched(1000)
    result_mixed = mixed.run(STEPS - 777 - 1000)
    assert np.array_equal(
        serial.recorder.schedule.as_array(), mixed.recorder.schedule.as_array()
    )
    assert serial.recorder.completion_times == mixed.recorder.completion_times
    assert register_summary(serial.memory) == register_summary(mixed.memory)
    assert serial.rng.bit_generator.state == mixed.rng.bit_generator.state
    assert result_serial.steps_executed == result_mixed.steps_executed


@pytest.mark.parametrize("kwargs", [
    {"stop_after_completions": 40},
    {"stop_after_completions_by": 3},
])
def test_equivalent_stop_conditions(kwargs):
    serial = build(UniformStochasticScheduler())
    batched = build(UniformStochasticScheduler())
    result_serial = serial.run(STEPS, **kwargs)
    result_batched = batched.run_batched(STEPS, **kwargs)
    assert result_serial.stopped_early and result_batched.stopped_early
    assert_equivalent(serial, batched, result_serial, result_batched)


def test_batched_rejects_bad_arguments():
    sim = build(UniformStochasticScheduler())
    with pytest.raises(ValueError):
        sim.run_batched(-1)
    with pytest.raises(ValueError):
        sim.run_batched(10, batch_size=0)


def test_duck_typed_scheduler_falls_back_to_sequential():
    class MinimalScheduler:
        """Only implements select(); no batched protocol."""

        def select(self, time, active, rng):
            return active[int(rng.integers(len(active)))]

    serial = build(MinimalScheduler())
    batched = build(MinimalScheduler())
    result_serial = serial.run(STEPS)
    result_batched = batched.run_batched(STEPS)
    assert_equivalent(serial, batched, result_serial, result_batched)
