"""Unit and behaviour tests for repro.sim.executor."""

import pytest

from repro.core.scheduler import AdversarialScheduler, UniformStochasticScheduler
from repro.sim.executor import Simulator
from repro.sim.memory import Memory
from repro.sim.ops import CAS, Read, Write
from repro.sim.process import Completion, Invoke, repeat_method


def incrementer(register="r"):
    """A CAS-loop counter method."""

    def method(pid):
        while True:
            value = yield Read(register)
            ok = yield CAS(register, value, value + 1)
            if ok:
                return value

    return repeat_method(method, method="inc")


def counting_memory():
    memory = Memory()
    memory.register("r", 0)
    return memory


class TestBasicExecution:
    def test_single_process_counts_up(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(10)
        # Alone, every read+CAS pair completes: 5 completions in 10 steps.
        assert result.total_completions == 5
        assert result.memory.read("r") == 5

    def test_steps_executed_tracks_time(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(100)
        assert result.steps_executed == 100
        assert not result.stopped_early

    def test_run_is_resumable(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            rng=0,
        )
        sim.run(50)
        result = sim.run(50)
        assert result.steps_executed == 100

    def test_completions_sum_matches_counter(self):
        # Every completed increment bumped the register exactly once.
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=4,
            memory=counting_memory(),
            rng=1,
        )
        result = sim.run(2000)
        assert result.memory.read("r") == result.total_completions

    def test_reproducible_with_seed(self):
        def run(seed):
            sim = Simulator(
                incrementer(),
                UniformStochasticScheduler(),
                n_processes=3,
                memory=counting_memory(),
                rng=seed,
            )
            return sim.run(500).total_completions

        assert run(42) == run(42)

    def test_distinct_factories_per_process(self):
        def writer(pid):
            while True:
                yield Write(f"out{pid}", pid)

        sims = Simulator(
            [writer, writer],
            AdversarialScheduler.round_robin(),
        )
        sims.run(4)
        assert sims.memory.read("out0") == 0
        assert sims.memory.read("out1") == 1

    def test_factory_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="factories"):
            Simulator([lambda pid: iter(())], None, n_processes=2)

    def test_single_factory_requires_n(self):
        with pytest.raises(ValueError, match="n_processes"):
            Simulator(incrementer(), UniformStochasticScheduler())


class TestSchedulingSemantics:
    def test_one_step_per_time_unit(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=counting_memory(),
            rng=0,
        )
        sim.run(99)
        assert sum(p.steps for p in sim.processes) == 99

    def test_round_robin_order(self):
        sim = Simulator(
            incrementer(),
            AdversarialScheduler.round_robin(),
            n_processes=3,
            memory=counting_memory(),
            record_schedule=True,
        )
        sim.run(6)
        assert sim.recorder.schedule.as_array().tolist() == [0, 1, 2, 0, 1, 2]

    def test_scheduler_selecting_inactive_detected(self):
        bad = AdversarialScheduler(lambda t, active: 0)
        sim = Simulator(
            incrementer(),
            bad,
            n_processes=2,
            memory=counting_memory(),
            crash_times={0: 1},
        )
        # The adversary's choice is validated against the active set by
        # AdversarialScheduler itself.
        with pytest.raises(ValueError, match="inactive"):
            sim.run(1)


class TestCompletionsAndHistory:
    def test_completion_recorded_at_cas_step_time(self):
        # Solo process: completions at even steps (read at 1, CAS at 2, ...).
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(6)
        assert result.recorder.completion_times == [2, 4, 6]

    def test_history_records_invocations_and_responses(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=counting_memory(),
            record_history=True,
            rng=0,
        )
        result = sim.run(4)
        history = result.history
        assert [r.time for r in history.responses] == [2, 4]
        # Three invocations: two answered, one pending (primed ahead).
        assert len(history.invocations) == 3
        assert history.pending_pids() == {0}

    def test_stop_after_completions(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(10_000, stop_after_completions=5)
        assert result.stopped_early
        assert result.total_completions >= 5

    def test_stop_after_completions_by(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(10_000, stop_after_completions_by=1)
        assert result.stopped_early
        assert result.completions_of(1) >= 1


class TestCrashes:
    def test_crashed_process_takes_no_steps(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=counting_memory(),
            crash_times={2: 50},
            rng=0,
        )
        sim.run(500)
        steps_at_crash = sim.processes[2].steps
        sim.run(500)
        assert sim.processes[2].steps == steps_at_crash

    def test_all_crashed_stops_run(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            crash_times={0: 5, 1: 5},
            rng=0,
        )
        result = sim.run(100)
        assert result.stopped_early
        assert result.steps_executed == 4

    def test_unknown_crash_pid_rejected(self):
        with pytest.raises(ValueError, match="unknown process"):
            Simulator(
                incrementer(),
                UniformStochasticScheduler(),
                n_processes=2,
                crash_times={9: 1},
            )

    def test_active_pids_shrink(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=3,
            memory=counting_memory(),
            crash_times={1: 10},
            rng=0,
        )
        sim.run(9)
        assert sim.active_pids() == [0, 1, 2]
        sim.run(10)
        assert sim.active_pids() == [0, 2]

    def test_completion_rate_property(self):
        sim = Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=1,
            memory=counting_memory(),
            rng=0,
        )
        result = sim.run(10)
        assert result.completion_rate == pytest.approx(0.5)


class TestPerRunAccounting:
    """Regression tests: results of repeated run() calls must not mix.

    ``completion_rate`` used to divide the all-time completion count by
    the all-time step count, so the result of a second ``run()`` call
    reported a blend of both calls' behaviour.
    """

    def _simulator(self):
        return Simulator(
            incrementer(),
            UniformStochasticScheduler(),
            n_processes=2,
            memory=counting_memory(),
            rng=0,
        )

    def test_second_run_reports_its_own_steps(self):
        sim = self._simulator()
        first = sim.run(50)
        second = sim.run(50)
        assert first.steps_this_run == 50
        assert second.steps_this_run == 50
        # steps_executed stays cumulative (simulator time), by contract.
        assert second.steps_executed == 100

    def test_completion_rate_is_per_run(self):
        sim = self._simulator()
        first = sim.run(1_000)
        second = sim.run(1_000)
        assert second.completions_this_run == (
            second.recorder.total_completions - first.completions_this_run
        )
        assert second.completion_rate == (
            second.completions_this_run / second.steps_this_run
        )

    def test_zero_step_run_has_zero_rate(self):
        sim = self._simulator()
        sim.run(100)
        result = sim.run(0)
        assert result.steps_this_run == 0
        assert result.completion_rate == 0.0

    def test_batched_run_accounts_per_call_too(self):
        sim = self._simulator()
        sim.run_batched(50)
        second = sim.run_batched(50)
        assert second.steps_this_run == 50
        assert second.steps_executed == 100
        assert second.completion_rate == (
            second.completions_this_run / 50
        )
