"""Unit tests for repro.sim.history."""

import pytest

from repro.sim.history import History


class TestRecording:
    def test_invoke_respond_round_trip(self):
        history = History()
        history.invoke(1, 0, "push")
        history.respond(3, 0, "push", result="ok")
        assert len(history.invocations) == 1
        assert len(history.responses) == 1
        assert history.responses[0].result == "ok"

    def test_double_invoke_rejected(self):
        history = History()
        history.invoke(1, 0)
        with pytest.raises(ValueError, match="still pending"):
            history.invoke(2, 0)

    def test_respond_without_invoke_rejected(self):
        history = History()
        with pytest.raises(ValueError, match="nothing pending"):
            history.respond(1, 0)

    def test_method_mismatch_rejected(self):
        history = History()
        history.invoke(1, 0, "push")
        with pytest.raises(ValueError, match="pending"):
            history.respond(2, 0, "pop")

    def test_time_must_be_monotone(self):
        history = History()
        history.invoke(5, 0)
        with pytest.raises(ValueError, match="time-ordered"):
            history.respond(4, 0)

    def test_same_time_events_allowed(self):
        history = History()
        history.invoke(2, 0)
        history.respond(2, 0)
        assert history.end_time == 2


class TestQueries:
    def make_history(self):
        history = History()
        history.invoke(1, 0)
        history.invoke(1, 1)
        history.respond(4, 0)
        history.invoke(5, 0)
        history.respond(9, 0)
        # pid 1 never responds.
        return history

    def test_pending_pids(self):
        history = self.make_history()
        assert history.pending_pids() == {1}

    def test_response_times(self):
        history = self.make_history()
        assert history.response_times() == [4, 9]
        assert history.response_times(pid=0) == [4, 9]
        assert history.response_times(pid=1) == []

    def test_completions_by_process(self):
        history = self.make_history()
        assert history.completions_by_process() == {0: 2}

    def test_pending_intervals(self):
        history = self.make_history()
        intervals = history.pending_intervals(end_time=10)
        assert (0, 1, 4) in intervals
        assert (0, 5, 9) in intervals
        assert (1, 1, None) in intervals

    def test_max_response_gap(self):
        history = self.make_history()
        assert history.max_response_gap(0) == 5
        assert history.max_response_gap(1) is None

    def test_len_counts_all_events(self):
        history = self.make_history()
        assert len(history) == 5

    def test_end_time_empty(self):
        assert History().end_time == -1
