"""Bit-identity of the crash-aware ensemble engine with ``run_batched``.

PR 3's tentpole: segmented whole-schedule execution extends the ensemble
engine to halting failures.  A replicate carrying ``crash_times`` —
seeded with the same tuple — must produce the identical schedule,
completion times and pids, per-process accounting, early-stop behaviour
and final memory (values *and* access counters) as a fresh
:class:`Simulator` driven through ``run_batched`` with the same crash
map.  These tests enforce that across the scheduler families of
Definition 1 and the crash shapes of the Corollary 2 experiments:
single crashes, simultaneous crashes, crashes that never fire (t <= 0
or beyond the horizon), crashes after the last completion, all-crash
early stops, and heterogeneous ensembles mixing crashing and
crash-free replicates.
"""

import sys

import numpy as np
import pytest

from repro.algorithms.counter import (
    CounterStepKernel,
    cas_counter,
    make_counter_memory,
)
from repro.algorithms.scu import (
    Proposal,
    ScuStepKernel,
    make_scu_memory,
    scu_algorithm,
)
from repro.core.latency import measure_latencies, measure_latencies_ensemble
from repro.core.scheduler import (
    AdversarialScheduler,
    HardwareLikeScheduler,
    LotteryScheduler,
    MarkovModulatedScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
)
from repro.core.sweep import latency_sweep
from repro.sim import EnsembleReplicate, EnsembleSimulator, Simulator

# Committed SCU proposals chain recursively through their payloads.
sys.setrecursionlimit(100_000)

N = 8
STEPS = 2_000

KERNEL_CASES = {
    "counter": (
        CounterStepKernel(),
        cas_counter,
        make_counter_memory,
    ),
    "scu01": (
        ScuStepKernel(0, 1),
        lambda: scu_algorithm(0, 1),
        lambda: make_scu_memory(1),
    ),
    "scu03": (
        ScuStepKernel(0, 3),
        lambda: scu_algorithm(0, 3),
        lambda: make_scu_memory(3),
    ),
    "scu21": (
        ScuStepKernel(2, 1),
        lambda: scu_algorithm(2, 1),
        lambda: make_scu_memory(1),
    ),
    "scu32": (
        ScuStepKernel(3, 2),
        lambda: scu_algorithm(3, 2),
        lambda: make_scu_memory(2),
    ),
}

SCHEDULER_CASES = {
    "uniform": lambda: UniformStochasticScheduler(),
    "skewed": lambda: SkewedStochasticScheduler(
        [1.0 + 0.5 * pid for pid in range(N)]
    ),
    "lottery": lambda: LotteryScheduler([1 + pid for pid in range(N)]),
    "hardware": lambda: HardwareLikeScheduler(),
    "hardware-q4": lambda: HardwareLikeScheduler(mean_quantum=4.0),
    "markov": lambda: MarkovModulatedScheduler(),
    "round-robin": lambda: AdversarialScheduler.round_robin(),
}

# The crash shapes the tentpole must cover.  "t=0" and "beyond horizon"
# never fire (crashes apply on exact time equality); "late" lands inside
# the horizon but after essentially all completions of interest.
CRASH_CASES = {
    "single": {2: 400},
    "simultaneous": {1: 300, 5: 300, 6: 301},
    "at-t0": {3: 0},
    "after-last-completion": {0: STEPS - 1, 4: STEPS + 1000},
}


def assert_proposal_chains_equal(left, right):
    while isinstance(left, Proposal) or isinstance(right, Proposal):
        assert isinstance(left, Proposal) and isinstance(right, Proposal)
        assert (left.pid, left.sequence) == (right.pid, right.sequence)
        left, right = left.payload, right.payload
    assert left == right


def assert_crash_replicate_matches_batched(
    kernel,
    factory_builder,
    memory_builder,
    scheduler_builder,
    *,
    n,
    steps,
    seed,
    crash_times,
    resolver="auto",
):
    reference = Simulator(
        factory_builder(),
        scheduler_builder(),
        n_processes=n,
        memory=memory_builder(),
        crash_times=dict(crash_times) if crash_times else None,
        record_schedule=True,
        rng=seed,
    ).run_batched(steps)
    ensemble = EnsembleSimulator(
        [
            EnsembleReplicate(
                kernel,
                n,
                scheduler_builder(),
                memory_builder(),
                rng=seed,
                crash_times=dict(crash_times) if crash_times else None,
            )
        ],
        record_schedule=True,
        _resolver=resolver,
    )
    outcome = ensemble.run(steps).replicates[0]
    recorder = outcome.recorder()
    expected = reference.recorder

    assert reference.steps_executed == outcome.steps_executed
    assert reference.stopped_early == outcome.stopped_early
    assert np.array_equal(
        expected.schedule.as_array(), recorder.schedule.as_array()
    )
    assert expected.completion_times == recorder.completion_times
    assert expected.completion_pids == recorder.completion_pids
    assert expected.completions == recorder.completions
    assert expected.steps == recorder.steps
    assert expected.total_steps == recorder.total_steps

    assert reference.memory.total_operations == outcome.memory.total_operations
    expected_registers = reference.memory.registers()
    actual_registers = outcome.memory.registers()
    assert set(expected_registers) == set(actual_registers)
    for name in expected_registers:
        want, got = expected_registers[name], actual_registers[name]
        assert (
            want.reads,
            want.writes,
            want.cas_attempts,
            want.cas_successes,
            want.rmws,
        ) == (
            got.reads,
            got.writes,
            got.cas_attempts,
            got.cas_successes,
            got.rmws,
        ), name
        assert_proposal_chains_equal(want.value, got.value)


# -- the crash bit-identity matrix ----------------------------------------------


@pytest.mark.parametrize("crash_name", sorted(CRASH_CASES))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_CASES))
def test_crash_bit_identical_all_schedulers(scheduler_name, crash_name):
    kernel, factory_builder, memory_builder = KERNEL_CASES["counter"]
    scheduler_index = sorted(SCHEDULER_CASES).index(scheduler_name)
    crash_index = sorted(CRASH_CASES).index(crash_name)
    assert_crash_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SCHEDULER_CASES[scheduler_name],
        n=N,
        steps=STEPS,
        seed=(41, scheduler_index, crash_index),
        crash_times=CRASH_CASES[crash_name],
    )


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
def test_crash_bit_identical_all_kernels(kernel_name):
    kernel, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
    assert_crash_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SCHEDULER_CASES["uniform"],
        n=N,
        steps=STEPS,
        seed=(43, sorted(KERNEL_CASES).index(kernel_name)),
        crash_times={1: 250, 3: 250, 6: 900},
    )


@pytest.mark.parametrize("kernel_name", ["counter", "scu01", "scu03"])
def test_crash_heap_resolver_matches_on_flat_kernels(kernel_name):
    kernel, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
    assert_crash_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SCHEDULER_CASES["uniform"],
        n=6,
        steps=2500,
        seed=47,
        crash_times={0: 600, 5: 601},
        resolver="heap",
    )


def test_all_processes_crash_stops_early():
    kernel, factory_builder, memory_builder = KERNEL_CASES["counter"]
    assert_crash_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SCHEDULER_CASES["uniform"],
        n=4,
        steps=5000,
        seed=51,
        crash_times={0: 700, 1: 700, 2: 650, 3: 701},
    )


def test_crash_on_every_boundary_shape():
    # Crash boundaries at t=1 (first step), back-to-back times, and a
    # survivor set of one: the segment walk's edge geometry.
    kernel, factory_builder, memory_builder = KERNEL_CASES["counter"]
    assert_crash_replicate_matches_batched(
        kernel,
        factory_builder,
        memory_builder,
        SCHEDULER_CASES["uniform"],
        n=5,
        steps=3000,
        seed=53,
        crash_times={0: 1, 1: 2, 2: 3, 3: 4},
    )


def test_heterogeneous_crash_and_crash_free_ensemble():
    # Crashing and crash-free replicates of different kernels and sizes in
    # one ensemble: each must equal its own standalone batched run.
    specs = [
        ("counter", 3, 61, None),
        ("counter", 6, 62, {1: 300, 4: 300}),
        ("scu03", 4, 63, {0: 500}),
        ("scu21", 5, 64, {2: 0, 3: 4000}),
        ("counter", 4, 65, {0: 100, 1: 100, 2: 100, 3: 100}),
    ]
    replicates = []
    for kernel_name, n, seed, crash_times in specs:
        kernel, _, memory_builder = KERNEL_CASES[kernel_name]
        replicates.append(
            EnsembleReplicate(
                kernel,
                n,
                UniformStochasticScheduler(),
                memory_builder(),
                rng=seed,
                crash_times=dict(crash_times) if crash_times else None,
            )
        )
    result = EnsembleSimulator(replicates, record_schedule=True).run(2000)
    for outcome, (kernel_name, n, seed, crash_times) in zip(result, specs):
        _, factory_builder, memory_builder = KERNEL_CASES[kernel_name]
        reference = Simulator(
            factory_builder(),
            UniformStochasticScheduler(),
            n_processes=n,
            memory=memory_builder(),
            crash_times=dict(crash_times) if crash_times else None,
            record_schedule=True,
            rng=seed,
        ).run_batched(2000)
        recorder = outcome.recorder()
        assert reference.steps_executed == outcome.steps_executed
        assert reference.stopped_early == outcome.stopped_early
        assert np.array_equal(
            reference.recorder.schedule.as_array(),
            recorder.schedule.as_array(),
        )
        assert reference.recorder.completion_times == recorder.completion_times
        assert reference.recorder.completion_pids == recorder.completion_pids


# -- measurement and sweep plumbing ----------------------------------------------


class TestCrashMeasurementPlumbing:
    def test_measure_latencies_ensemble_accepts_crash_times(self):
        seeds = [(71, 6, r) for r in range(3)]
        crash_times = {4: 300, 5: 300}
        ensemble_measurements = measure_latencies_ensemble(
            cas_counter(),
            UniformStochasticScheduler,
            6,
            6000,
            seeds,
            memory_factory=make_counter_memory,
            crash_times=crash_times,
        )
        for seed, measurement in zip(seeds, ensemble_measurements):
            reference = measure_latencies(
                cas_counter(),
                UniformStochasticScheduler(),
                6,
                6000,
                memory=make_counter_memory(),
                crash_times=crash_times,
                rng=seed,
                batched=True,
            )
            assert measurement == reference

    def test_latency_sweep_crash_times_identical_across_engines(self):
        def crashes(n):
            return {pid: 400 for pid in range(max(1, n // 2), n)}

        kwargs = dict(
            steps=5000,
            repeats=3,
            seed=73,
            burn_in=800,
            crash_times=crashes,
        )
        serial = latency_sweep(
            cas_counter, make_counter_memory, [4, 6], engine="serial", **kwargs
        )
        batched = latency_sweep(
            cas_counter, make_counter_memory, [4, 6], engine="batched", **kwargs
        )
        ensemble = latency_sweep(
            cas_counter, make_counter_memory, [4, 6], engine="ensemble", **kwargs
        )
        assert serial == batched == ensemble


# -- contract --------------------------------------------------------------------


class TestCrashContract:
    def test_unknown_crash_pid_names_replicate_and_engine(self):
        good = EnsembleReplicate(
            CounterStepKernel(),
            4,
            UniformStochasticScheduler(),
            crash_times={1: 50},
        )
        bad = EnsembleReplicate(
            CounterStepKernel(),
            4,
            UniformStochasticScheduler(),
            crash_times={7: 50},
        )
        with pytest.raises(
            ValueError, match=r"replicate 1:.*unknown process 7"
        ):
            EnsembleSimulator([good, bad])

    def test_known_pid_crash_configs_are_accepted(self):
        replicate = EnsembleReplicate(
            CounterStepKernel(),
            4,
            UniformStochasticScheduler(),
            make_counter_memory(),
            rng=0,
            crash_times={1: 50},
        )
        result = EnsembleSimulator([replicate]).run(200)
        assert result[0].steps_executed == 200
