"""Unit tests for repro.sim.trace."""

import numpy as np
import pytest

from repro.sim.trace import ScheduleTrace, TraceRecorder


class TestScheduleTrace:
    def test_append_and_array(self):
        trace = ScheduleTrace(3)
        for pid in [0, 1, 2, 0]:
            trace.append(pid)
        assert trace.as_array().tolist() == [0, 1, 2, 0]
        assert len(trace) == 4

    def test_buffer_growth(self):
        trace = ScheduleTrace(2)
        for i in range(5000):
            trace.append(i % 2)
        assert len(trace) == 5000
        assert trace.as_array()[-1] == 1

    def test_step_shares(self):
        trace = ScheduleTrace(2)
        for pid in [0, 0, 0, 1]:
            trace.append(pid)
        assert np.allclose(trace.step_shares(), [0.75, 0.25])

    def test_step_shares_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ScheduleTrace(2).step_shares()

    def test_successor_shares(self):
        trace = ScheduleTrace(2)
        for pid in [0, 1, 0, 0, 1]:
            trace.append(pid)
        # After pid 0 steps (positions 0, 2, 3): successors are 1, 0, 1.
        assert np.allclose(trace.successor_shares(0), [1 / 3, 2 / 3])

    def test_successor_shares_never_stepping_process(self):
        trace = ScheduleTrace(2)
        trace.append(0)
        trace.append(0)
        with pytest.raises(ValueError, match="never"):
            trace.successor_shares(1)

    def test_successor_matrix_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        trace = ScheduleTrace(4)
        for pid in rng.integers(4, size=2000):
            trace.append(int(pid))
        matrix = trace.successor_matrix()
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_longest_consecutive_run(self):
        trace = ScheduleTrace(2)
        for pid in [0, 0, 1, 0, 0, 0, 1]:
            trace.append(pid)
        assert trace.longest_consecutive_run(0) == 3
        assert trace.longest_consecutive_run(1) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ScheduleTrace(0)


class TestTraceRecorder:
    def test_step_and_completion_counting(self):
        recorder = TraceRecorder(2)
        recorder.on_step(1, 0)
        recorder.on_step(2, 1)
        recorder.on_completion(2, 1)
        assert recorder.total_steps == 2
        assert recorder.steps == {0: 1, 1: 1}
        assert recorder.total_completions == 1
        assert recorder.completions[1] == 1

    def test_schedule_disabled_by_default(self):
        recorder = TraceRecorder(2)
        assert recorder.schedule is None

    def test_schedule_enabled(self):
        recorder = TraceRecorder(2, record_schedule=True)
        recorder.on_step(1, 1)
        assert recorder.schedule.as_array().tolist() == [1]

    def test_completion_times_of(self):
        recorder = TraceRecorder(2)
        recorder.on_completion(5, 0)
        recorder.on_completion(9, 1)
        recorder.on_completion(12, 0)
        assert recorder.completion_times_of(0).tolist() == [5, 12]
        assert recorder.completion_times_of(1).tolist() == [9]

    def test_completion_times_disabled(self):
        recorder = TraceRecorder(1, record_completion_times=False)
        recorder.on_completion(1, 0)
        assert recorder.completions[0] == 1
        with pytest.raises(ValueError, match="not recorded"):
            recorder.completion_times_of(0)
