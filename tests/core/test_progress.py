"""Unit tests for repro.core.progress (Section 2.2 detectors)."""

import pytest

from repro.core.progress import (
    empirical_maximal_progress_bound,
    empirical_minimal_progress_bound,
    progress_report,
    starved_processes,
)
from repro.sim.history import History


def history_everyone_completes():
    history = History()
    history.invoke(1, 0)
    history.invoke(2, 1)
    history.respond(5, 0)
    history.respond(6, 1)
    history.invoke(7, 0)
    history.respond(10, 0)
    return history


def history_with_starvation():
    """Process 1 invokes early and never responds; process 0 keeps going."""
    history = History()
    history.invoke(1, 1)
    for k in range(20):
        t = 2 + 4 * k
        history.invoke(t, 0)
        history.respond(t + 2, 0)
    return history


class TestMinimalBound:
    def test_no_pending_work_gives_zero(self):
        assert empirical_minimal_progress_bound(History(), 100) == 0

    def test_gap_between_responses(self):
        history = history_everyone_completes()
        bound = empirical_minimal_progress_bound(history, end_time=10)
        assert bound == 4  # longest pending stretch: t=1 (invoke) to t=5

    def test_starvation_history_still_has_small_minimal_bound(self):
        # Minimal progress holds: process 0 keeps completing.
        history = history_with_starvation()
        bound = empirical_minimal_progress_bound(history, end_time=85)
        assert bound <= 5

    def test_dead_tail_counts(self):
        history = History()
        history.invoke(1, 0)
        bound = empirical_minimal_progress_bound(history, end_time=1000)
        assert bound == 999


class TestMaximalBound:
    def test_all_responses_bound(self):
        history = history_everyone_completes()
        assert empirical_maximal_progress_bound(history, 10) == 4

    def test_pending_counts_to_end(self):
        history = history_with_starvation()
        bound = empirical_maximal_progress_bound(history, end_time=200)
        assert bound == 199  # process 1 pending since t=1


class TestStarvation:
    def test_starved_process_detected(self):
        history = history_with_starvation()
        starved = starved_processes(history, end_time=85, window=40)
        assert starved == {1}

    def test_active_process_not_starved(self):
        history = history_everyone_completes()
        assert starved_processes(history, end_time=10, window=5) == set()

    def test_recent_invocation_not_starved(self):
        history = History()
        history.invoke(95, 0)
        assert starved_processes(history, end_time=100, window=50) == set()

    def test_window_spanning_whole_run_detects_starvation(self):
        # Regression: window >= end_time used to drive the cutoff
        # non-positive, so a process pending the *entire* run was
        # reported as not starved.
        history = history_with_starvation()
        assert starved_processes(history, end_time=85, window=85) == {1}
        assert starved_processes(history, end_time=85, window=1000) == {1}

    def test_window_spanning_whole_run_without_starvation(self):
        history = history_everyone_completes()
        assert starved_processes(history, end_time=10, window=10) == set()


class TestProgressReport:
    def test_wait_free_looking_run(self):
        report = progress_report(history_everyone_completes(), end_time=10)
        assert report.made_minimal_progress
        assert report.made_maximal_progress
        assert report.total_responses == 3

    def test_lock_free_but_starving_run(self):
        report = progress_report(
            history_with_starvation(), end_time=85, starvation_window=40
        )
        assert report.made_minimal_progress
        assert not report.made_maximal_progress
        assert report.starved == {1}

    def test_empty_history_no_minimal_progress(self):
        report = progress_report(History(), end_time=100)
        assert not report.made_minimal_progress
