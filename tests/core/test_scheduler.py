"""Unit tests for repro.core.scheduler (Definition 1)."""

import numpy as np
import pytest

from repro.core.scheduler import (
    AdversarialScheduler,
    DistributionScheduler,
    HardwareLikeScheduler,
    LotteryScheduler,
    SkewedStochasticScheduler,
    UniformStochasticScheduler,
    scheduler_chain_distribution,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestUniform:
    def test_distribution_is_uniform(self):
        sched = UniformStochasticScheduler()
        dist = sched.distribution(1, [0, 1, 2, 3])
        assert dist == {pid: 0.25 for pid in range(4)}

    def test_distribution_over_active_subset(self):
        sched = UniformStochasticScheduler()
        dist = sched.distribution(1, [1, 3])
        assert dist == {1: 0.5, 3: 0.5}

    def test_threshold_is_one_over_n(self):
        assert UniformStochasticScheduler().threshold(8) == pytest.approx(1 / 8)

    def test_selection_frequency(self, rng):
        sched = UniformStochasticScheduler()
        counts = np.zeros(4)
        for t in range(20_000):
            counts[sched.select(t, [0, 1, 2, 3], rng)] += 1
        assert np.allclose(counts / counts.sum(), 0.25, atol=0.02)

    def test_selects_from_active_only(self, rng):
        sched = UniformStochasticScheduler()
        for t in range(100):
            assert sched.select(t, [2, 5], rng) in (2, 5)


class TestSkewed:
    def test_weights_drive_frequencies(self, rng):
        sched = SkewedStochasticScheduler([1.0, 3.0])
        counts = np.zeros(2)
        for t in range(20_000):
            counts[sched.select(t, [0, 1], rng)] += 1
        assert counts[1] / counts.sum() == pytest.approx(0.75, abs=0.02)

    def test_threshold_is_min_share(self):
        sched = SkewedStochasticScheduler([1.0, 3.0])
        assert sched.threshold(2) == pytest.approx(0.25)

    def test_renormalises_over_active(self):
        sched = SkewedStochasticScheduler([1.0, 1.0, 2.0])
        dist = sched.distribution(1, [0, 2])
        assert dist[0] == pytest.approx(1 / 3)
        assert dist[2] == pytest.approx(2 / 3)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError, match="positive"):
            SkewedStochasticScheduler([1.0, 0.0])

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            SkewedStochasticScheduler([])


class TestLottery:
    def test_integer_tickets_required(self):
        with pytest.raises(ValueError, match="integers"):
            LotteryScheduler([1.5, 2.5])

    def test_ticket_proportions(self, rng):
        sched = LotteryScheduler([1, 4])
        dist = sched.distribution(1, [0, 1])
        assert dist[1] == pytest.approx(0.8)


class TestDistributionScheduler:
    def test_valid_distribution_accepted(self, rng):
        sched = DistributionScheduler(
            lambda t, active: {pid: 1.0 / len(active) for pid in active},
            theta=0.1,
        )
        assert sched.select(1, [0, 1], rng) in (0, 1)
        assert sched.threshold(2) == 0.1

    def test_well_formedness_enforced(self, rng):
        sched = DistributionScheduler(lambda t, active: {0: 0.5, 1: 0.4})
        with pytest.raises(ValueError, match="well-formedness"):
            sched.select(1, [0, 1], rng)

    def test_weak_fairness_enforced(self, rng):
        sched = DistributionScheduler(
            lambda t, active: {0: 0.95, 1: 0.05}, theta=0.1
        )
        with pytest.raises(ValueError, match="theta"):
            sched.select(1, [0, 1], rng)

    def test_crash_condition_enforced(self, rng):
        sched = DistributionScheduler(lambda t, active: {0: 0.5, 9: 0.5})
        with pytest.raises(ValueError, match="non-active"):
            sched.select(1, [0, 1], rng)

    def test_validation_can_be_disabled(self, rng):
        sched = DistributionScheduler(
            lambda t, active: {0: 0.6, 1: 0.4}, theta=0.5, validate=False
        )
        assert sched.select(1, [0, 1], rng) in (0, 1)

    def test_theta_bounds_checked(self):
        with pytest.raises(ValueError, match="theta"):
            DistributionScheduler(lambda t, a: {}, theta=1.5)


class TestAdversarial:
    def test_round_robin_cycles(self, rng):
        sched = AdversarialScheduler.round_robin()
        picks = [sched.select(t, [0, 1, 2], rng) for t in range(1, 7)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_starve_never_schedules_victim(self, rng):
        sched = AdversarialScheduler.starve(victim=1)
        picks = {sched.select(t, [0, 1, 2], rng) for t in range(1, 50)}
        assert 1 not in picks

    def test_starve_schedules_victim_when_alone(self, rng):
        sched = AdversarialScheduler.starve(victim=1)
        assert sched.select(1, [1], rng) == 1

    def test_degenerate_distribution(self):
        sched = AdversarialScheduler.round_robin()
        dist = sched.distribution(1, [0, 1])
        assert dist == {0: 1.0, 1: 0.0}

    def test_threshold_is_zero(self):
        assert AdversarialScheduler.round_robin().threshold(4) == 0.0

    def test_invalid_choice_raises(self, rng):
        sched = AdversarialScheduler(lambda t, active: 99)
        with pytest.raises(ValueError, match="inactive"):
            sched.select(1, [0, 1], rng)

    def test_alternating_spoiler_interleaves(self, rng):
        sched = AdversarialScheduler.alternating_spoiler(victim=0)
        picks = [sched.select(t, [0, 1], rng) for t in range(1, 10)]
        assert 0 in picks and 1 in picks


class TestHardwareLike:
    def test_long_run_fairness(self, rng):
        sched = HardwareLikeScheduler()
        counts = np.zeros(8)
        for t in range(1, 60_000):
            counts[sched.select(t, list(range(8)), rng)] += 1
        shares = counts / counts.sum()
        assert np.allclose(shares, 1 / 8, atol=0.02)

    def test_produces_runs(self, rng):
        sched = HardwareLikeScheduler(mean_quantum=4.0, jitter=0.0)
        picks = [sched.select(t, [0, 1, 2], rng) for t in range(1, 2000)]
        runs = []
        current, length = picks[0], 1
        for pid in picks[1:]:
            if pid == current:
                length += 1
            else:
                runs.append(length)
                current, length = pid, 1
        assert np.mean(runs) > 1.5  # bursty, unlike the uniform scheduler

    def test_handles_crashing_current(self, rng):
        sched = HardwareLikeScheduler(mean_quantum=10.0)
        first = sched.select(1, [0, 1], rng)
        other = 1 - first
        # The current process disappears from the active set.
        assert sched.select(2, [other], rng) == other

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HardwareLikeScheduler(mean_quantum=0.5)
        with pytest.raises(ValueError):
            HardwareLikeScheduler(jitter=1.0)
        with pytest.raises(ValueError):
            HardwareLikeScheduler(jitter_rate=0.0)

    def test_no_closed_form_distribution(self):
        with pytest.raises(NotImplementedError):
            HardwareLikeScheduler().distribution(1, [0, 1])


class TestHelpers:
    def test_scheduler_chain_distribution(self):
        dist = scheduler_chain_distribution(UniformStochasticScheduler(), 4)
        assert np.allclose(dist, 0.25)


class TestAdversarialCrashRotation:
    """Regression tests: the rotation must be pid-stable under crashes.

    The previous position-indexed implementation (``active[(t - 1) %
    len(active)]``) shifted every later process's slot when the active
    list shrank, skipping some survivors and double-scheduling others.
    """

    def test_round_robin_pid_stable_after_crash(self, rng):
        sched = AdversarialScheduler.round_robin()
        assert [sched.select(t, [0, 1, 2], rng) for t in (1, 2, 3)] == [0, 1, 2]
        # Process 0 crashes: the survivors keep cycling 1, 2, 1, 2, ...
        assert sched.select(4, [1, 2], rng) == 1
        assert sched.select(5, [1, 2], rng) == 2
        assert sched.select(6, [1, 2], rng) == 1

    def test_round_robin_does_not_skip_after_crash(self, rng):
        sched = AdversarialScheduler.round_robin()
        assert sched.select(1, [0, 1, 2, 3], rng) == 0
        # The next process in line (1) crashes: 2 steps next, nobody is
        # skipped and nobody is scheduled twice in a row.
        assert sched.select(2, [0, 2, 3], rng) == 2
        assert sched.select(3, [0, 2, 3], rng) == 3
        assert sched.select(4, [0, 2, 3], rng) == 0

    def test_starve_rotation_pid_stable_after_crash(self, rng):
        sched = AdversarialScheduler.starve(victim=2)
        picks = [sched.select(t, [0, 1, 2, 3], rng) for t in (1, 2, 3)]
        assert picks == [0, 1, 3]
        # Process 0 crashes; the non-victim rotation wraps to 1 and the
        # victim still never runs.
        assert sched.select(4, [1, 2, 3], rng) == 1
        assert sched.select(5, [1, 2, 3], rng) == 3
        assert sched.select(6, [1, 2, 3], rng) == 1

    def test_starve_victim_alone_does_not_advance_rotation(self, rng):
        sched = AdversarialScheduler.starve(victim=1)
        assert sched.select(1, [0, 1], rng) == 0
        assert sched.select(2, [1], rng) == 1
        # 0 is schedulable again: the rotation resumes from its own state
        # rather than having been advanced by the victim's forced step.
        assert sched.select(3, [0, 1], rng) == 0


class TestDistributionWellFormedness:
    def test_unvalidated_ill_formed_sum_raises(self, rng):
        # Regression: validate=False used to silently renormalise
        # probs / probs.sum(), masking an ill-formed Pi_tau entirely.
        sched = DistributionScheduler(
            lambda t, active: {0: 0.25, 1: 0.25}, validate=False
        )
        with pytest.raises(ValueError, match="well-formedness"):
            sched.select(1, [0, 1], rng)

    def test_unvalidated_roundoff_drift_tolerated(self, rng):
        drift = DistributionScheduler.SUM_TOLERANCE / 4
        sched = DistributionScheduler(
            lambda t, active: {0: 0.5, 1: 0.5 + drift}, validate=False
        )
        assert sched.select(1, [0, 1], rng) in (0, 1)


class TestCrashInteraction:
    """Schedulers with hidden state must honour a shrinking active set."""

    def test_markov_regime_pinned_to_crashed_pid(self, rng):
        from repro.core.scheduler import MarkovModulatedScheduler

        sched = MarkovModulatedScheduler(slowdown=8.0, mean_dwell=10_000.0)
        # Enter a regime that slows process 0, then crash process 0: the
        # scheduler must never select it and must stay weakly fair over
        # the survivors.
        sched.state_restore((0, 10_000))
        survivors = [1, 2, 3]
        steps = 10_000
        counts = {pid: 0 for pid in survivors}
        for t in range(1, steps + 1):
            pid = sched.select(t, survivors, rng)
            assert pid in survivors
            counts[pid] += 1
        theta = sched.threshold(len(survivors))
        for pid in survivors:
            assert counts[pid] / steps >= 0.8 * theta

    def test_hardware_like_mid_quantum_crash(self, rng):
        sched = HardwareLikeScheduler(mean_quantum=8.0)
        active = [0, 1, 2, 3]
        # Drive until a quantum is in flight.
        t = 1
        while True:
            sched.select(t, active, rng)
            t += 1
            current, remaining, _ = sched.state_snapshot()
            if remaining > 0:
                break
        # The running process crashes mid-quantum: its leftover quantum
        # must not leak to the survivors' schedule.
        survivors = [pid for pid in active if pid != current]
        counts = {pid: 0 for pid in survivors}
        for _ in range(2_000):
            pid = sched.select(t, survivors, rng)
            assert pid != current and pid in survivors
            counts[pid] += 1
            t += 1
        # threshold() is 0 for this scheduler (it is not stochastic in
        # the paper's sense), so weak fairness is vacuous; still, every
        # survivor should run in a long execution.
        assert all(counts[pid] > 0 for pid in survivors)
        for pid in survivors:
            assert counts[pid] / 2_000 >= sched.threshold(len(survivors))

    def test_hardware_like_mid_quantum_crash_batched(self, rng):
        sched = HardwareLikeScheduler(mean_quantum=8.0)
        active = [0, 1, 2, 3]
        sched.select_batch(1, active, rng, 64)
        current, remaining, _ = sched.state_snapshot()
        if remaining == 0:
            current = active[0]
        survivors = [pid for pid in active if pid != current]
        pids = sched.select_batch(100, survivors, rng, 512)
        assert set(pids.tolist()) <= set(survivors)
