"""Mapping the uniformity boundary: departure points, curves, the zoo table.

Also pins the executor plumbing the contention adversary rides on: the
``observe_pending`` hook fires identically on the serial and batched
engines (bit-identical traces), and the ensemble engine refuses
schedulers that need per-step contention state rather than silently
ignoring it.
"""

import numpy as np
import pytest

from repro.algorithms.registry import get_workload
from repro.core.scheduler import (
    ContentionScheduler,
    EpsilonUniformScheduler,
    UniformStochasticScheduler,
)
from repro.core.sweep import latency_sweep
from repro.core.uniformity import (
    DeparturePoint,
    contention_family,
    default_departure_schedulers,
    departure_curve,
    epsilon_family,
    measure_departure_point,
    zoo_departure_table,
)
from repro.sim.executor import Simulator


class TestDeparturePoint:
    def test_uniform_point_is_sane(self):
        point = measure_departure_point(
            get_workload("cas-counter"),
            UniformStochasticScheduler,
            n_processes=4,
            steps=4_000,
        )
        assert isinstance(point, DeparturePoint)
        assert 0.0 <= point.tv_distance <= 1.0
        assert point.completions > 0
        assert point.p50_latency <= point.p99_latency
        assert point.system_latency == pytest.approx(
            point.steps / point.completions
        )
        assert set(point.as_dict()) == {
            "scheduler",
            "tv_distance",
            "fairness_ratio",
            "p50_latency",
            "p99_latency",
            "system_latency",
            "completion_rate",
            "completions",
            "steps",
        }

    def test_serial_and_batched_engines_agree_under_contention(self):
        kwargs = dict(n_processes=4, steps=3_000, seed=1)
        points = [
            measure_departure_point(
                get_workload("rtas-lock"),
                lambda: ContentionScheduler(focus=4.0),
                batched=batched,
                **kwargs,
            )
            for batched in (False, True)
        ]
        assert points[0] == points[1]

    def test_burn_in_validation(self):
        with pytest.raises(ValueError, match="burn_in"):
            measure_departure_point(
                get_workload("cas-counter"),
                lambda: EpsilonUniformScheduler(0.0),
                n_processes=2,
                steps=100,
                burn_in=100,
            )


class TestDepartureFamilies:
    def test_epsilon_family_labels(self):
        family = epsilon_family([0.0, 0.25])
        assert [label for label, _ in family] == ["epsilon(0)", "epsilon(0.25)"]
        assert family[1][1]().epsilon == 0.25

    def test_contention_family_labels(self):
        family = contention_family([2.0])
        assert family[0][0] == "contention(2)"
        assert family[0][1]().focus == 2.0

    def test_default_family_starts_at_uniform(self):
        labels = [label for label, _ in default_departure_schedulers()]
        assert labels[0] == "uniform"
        assert "epsilon(0.8)" in labels
        assert "contention(8)" in labels

    def test_measured_tv_tracks_the_epsilon_dial(self):
        # The realised TV distance must grow with epsilon and approach
        # the closed form eps * (1 - 1/n).
        curve = departure_curve(
            get_workload("cas-counter"),
            epsilon_family([0.0, 0.4, 0.8]),
            n_processes=4,
            steps=4_000,
        )
        tv = [point.tv_distance for point in curve]
        assert tv[0] < tv[1] < tv[2]
        assert tv[2] == pytest.approx(0.8 * (1 - 1 / 4), abs=0.05)


class TestZooTable:
    def test_table_shape_and_sorting(self):
        table = zoo_departure_table(
            ["cas-counter", "rtas-lock"],
            [("uniform", lambda: EpsilonUniformScheduler(0.0))]
            + epsilon_family([0.6]),
            n_processes=4,
            steps=2_000,
        )
        assert set(table["workloads"]) == {"cas-counter", "rtas-lock"}
        assert table["n_processes"] == 4
        for points in table["workloads"].values():
            distances = [p["tv_distance"] for p in points]
            assert distances == sorted(distances)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            zoo_departure_table(["no-such-workload"], n_processes=2, steps=100)


class TestExecutorContentionHook:
    def test_hook_feeds_contending_set(self):
        scheduler = ContentionScheduler(focus=4.0)
        workload = get_workload("cas-counter")
        sim = Simulator(
            workload.factory_builder(),
            scheduler,
            n_processes=3,
            memory=workload.memory_builder(),
            rng=np.random.default_rng(0),
        )
        sim.run(50)
        # Every CAS-counter process targets the one counter register,
        # so after warm-up the whole active set is contending.
        assert scheduler.state_snapshot() == frozenset({0, 1, 2})

    def test_serial_batched_traces_identical_with_hook(self):
        workload = get_workload("rtas-lock")
        recorders = []
        for batched in (False, True):
            sim = Simulator(
                workload.factory_builder(),
                ContentionScheduler(focus=4.0),
                n_processes=3,
                memory=workload.memory_builder(),
                rng=np.random.default_rng(9),
                record_completion_times=True,
            )
            sim.run_batched(2_000) if batched else sim.run(2_000)
            recorders.append(sim.recorder)
        assert recorders[0].completion_times == recorders[1].completion_times
        assert recorders[0].completion_pids == recorders[1].completion_pids

    def test_ensemble_engine_rejects_contention_schedulers(self):
        workload = get_workload("cas-counter")
        with pytest.raises(ValueError, match="observe_pending"):
            latency_sweep(
                workload.factory_builder,
                workload.memory_builder,
                [2],
                steps=200,
                repeats=2,
                scheduler_builder=lambda: ContentionScheduler(),
                engine="ensemble",
            )
