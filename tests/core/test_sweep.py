"""Tests for the sweep helpers (repro.core.sweep)."""

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.chains.scu import scu_system_latency_exact
from repro.core.sweep import latency_sweep, parallel_sweep, sweep_table


class TestLatencySweep:
    def test_points_cover_n_values(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            steps=30_000,
            repeats=3,
        )
        assert [p.n for p in points] == [2, 4]

    def test_interval_contains_exact_value(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [4],
            steps=60_000,
            repeats=5,
        )
        estimate = points[0].system_latency
        exact = scu_system_latency_exact(4)
        # Generous width check: the CI should be near the exact value.
        assert abs(estimate.mean - exact) < max(3 * estimate.half_width, 0.05)

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            latency_sweep(cas_counter, make_counter_memory, [2], repeats=1)

    def test_replicates_are_independent(self):
        # Different repeats use different seeds: the half-width is
        # strictly positive (identical runs would give zero).
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [4],
            steps=20_000,
            repeats=4,
        )
        assert points[0].system_latency.half_width > 0

    def test_batched_sweep_matches_serial(self):
        # The fast path is trace-equivalent, so the sweep numbers are
        # bit-identical, not merely statistically close.
        kwargs = dict(steps=20_000, repeats=3, seed=11)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], **kwargs
        )
        batched = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        assert serial == batched

    def test_ensemble_engine_matches_batched(self):
        # The ensemble engine resolves whole replicate sets as array
        # operations; the sweep points must still be bit-identical.
        kwargs = dict(steps=20_000, repeats=3, seed=11)
        batched = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        ensemble = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            engine="ensemble",
            **kwargs,
        )
        assert batched == ensemble

    def test_engine_names_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                steps=5_000,
                repeats=2,
                engine="turbo",
            )

    def test_contradictory_engine_and_batched_flag_rejected(self):
        # engine= used to silently win over a contradictory legacy
        # batched=True; now the combination is an error naming both.
        kwargs = dict(steps=10_000, repeats=2, seed=4)
        with pytest.raises(ValueError, match="engine='serial' with batched=True"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [3],
                engine="serial",
                batched=True,
                **kwargs,
            )

    def test_agreeing_engine_and_batched_flag_accepted(self):
        kwargs = dict(steps=10_000, repeats=2, seed=4)
        explicit = latency_sweep(
            cas_counter,
            make_counter_memory,
            [3],
            engine="batched",
            batched=True,
            **kwargs,
        )
        batched = latency_sweep(
            cas_counter, make_counter_memory, [3], batched=True, **kwargs
        )
        assert explicit == batched


class TestParallelSweep:
    def test_bit_identical_to_serial(self):
        # Same (seed, n, replicate) seeding per task means worker
        # scheduling cannot influence the numbers.
        kwargs = dict(steps=20_000, repeats=3, seed=5)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        parallel = parallel_sweep(
            cas_counter, make_counter_memory, [2, 4], max_workers=2, **kwargs
        )
        assert serial == parallel

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            parallel_sweep(cas_counter, make_counter_memory, [2], repeats=1)

    def test_chunked_dispatch_bit_identical(self):
        # Chunking only changes how tasks are grouped per pool future;
        # every chunk size must give the serial sweep's exact numbers.
        kwargs = dict(steps=20_000, repeats=3, seed=5)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        for chunk_size in (1, 3, None):
            chunked = parallel_sweep(
                cas_counter,
                make_counter_memory,
                [2, 4],
                max_workers=2,
                chunk_size=chunk_size,
                **kwargs,
            )
            assert serial == chunked, chunk_size

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                repeats=2,
                chunk_size=0,
            )


class TestSweepTable:
    def test_table_rendering(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            steps=20_000,
            repeats=3,
        )
        table = sweep_table(points)
        assert "+-" in table
        assert "system latency" in table
