"""Tests for the sweep helpers (repro.core.sweep)."""

import random

import pytest

from repro.algorithms.counter import cas_counter, make_counter_memory
from repro.chains.scu import scu_system_latency_exact
from repro.core.sweep import (
    StreamingSweepAggregator,
    latency_sweep,
    parallel_sweep,
    sweep_table,
)
from repro.stats.estimators import mean_confidence_interval


class TestLatencySweep:
    def test_points_cover_n_values(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            steps=30_000,
            repeats=3,
        )
        assert [p.n for p in points] == [2, 4]

    def test_interval_contains_exact_value(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [4],
            steps=60_000,
            repeats=5,
        )
        estimate = points[0].system_latency
        exact = scu_system_latency_exact(4)
        # Generous width check: the CI should be near the exact value.
        assert abs(estimate.mean - exact) < max(3 * estimate.half_width, 0.05)

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            latency_sweep(cas_counter, make_counter_memory, [2], repeats=1)

    def test_replicates_are_independent(self):
        # Different repeats use different seeds: the half-width is
        # strictly positive (identical runs would give zero).
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [4],
            steps=20_000,
            repeats=4,
        )
        assert points[0].system_latency.half_width > 0

    def test_batched_sweep_matches_serial(self):
        # The fast path is trace-equivalent, so the sweep numbers are
        # bit-identical, not merely statistically close.
        kwargs = dict(steps=20_000, repeats=3, seed=11)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], **kwargs
        )
        batched = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        assert serial == batched

    def test_ensemble_engine_matches_batched(self):
        # The ensemble engine resolves whole replicate sets as array
        # operations; the sweep points must still be bit-identical.
        kwargs = dict(steps=20_000, repeats=3, seed=11)
        batched = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        ensemble = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            engine="ensemble",
            **kwargs,
        )
        assert batched == ensemble

    def test_sharded_ensemble_sweep_matches_single_core(self):
        # ensemble_workers shards the fused blocks across a process
        # pool over shared memory; the sweep points must stay
        # bit-identical to the in-process fused path.
        kwargs = dict(steps=3_000, repeats=4, seed=11, engine="ensemble")
        single = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], **kwargs
        )
        sharded = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            ensemble_workers=2,
            **kwargs,
        )
        assert single == sharded

    def test_engine_names_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                steps=5_000,
                repeats=2,
                engine="turbo",
            )

    def test_contradictory_engine_and_batched_flag_rejected(self):
        # engine= used to silently win over a contradictory legacy
        # batched=True; now the combination is an error naming both.
        kwargs = dict(steps=10_000, repeats=2, seed=4)
        with pytest.raises(ValueError, match="engine='serial' with batched=True"):
            latency_sweep(
                cas_counter,
                make_counter_memory,
                [3],
                engine="serial",
                batched=True,
                **kwargs,
            )

    def test_agreeing_engine_and_batched_flag_accepted(self):
        kwargs = dict(steps=10_000, repeats=2, seed=4)
        explicit = latency_sweep(
            cas_counter,
            make_counter_memory,
            [3],
            engine="batched",
            batched=True,
            **kwargs,
        )
        batched = latency_sweep(
            cas_counter, make_counter_memory, [3], batched=True, **kwargs
        )
        assert explicit == batched


class TestParallelSweep:
    def test_bit_identical_to_serial(self):
        # Same (seed, n, replicate) seeding per task means worker
        # scheduling cannot influence the numbers.
        kwargs = dict(steps=20_000, repeats=3, seed=5)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        parallel = parallel_sweep(
            cas_counter, make_counter_memory, [2, 4], max_workers=2, **kwargs
        )
        assert serial == parallel

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            parallel_sweep(cas_counter, make_counter_memory, [2], repeats=1)

    def test_chunked_dispatch_bit_identical(self):
        # Chunking only changes how tasks are grouped per pool future;
        # every chunk size must give the serial sweep's exact numbers.
        kwargs = dict(steps=20_000, repeats=3, seed=5)
        serial = latency_sweep(
            cas_counter, make_counter_memory, [2, 4], batched=True, **kwargs
        )
        for chunk_size in (1, 3, None):
            chunked = parallel_sweep(
                cas_counter,
                make_counter_memory,
                [2, 4],
                max_workers=2,
                chunk_size=chunk_size,
                **kwargs,
            )
            assert serial == chunked, chunk_size

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            parallel_sweep(
                cas_counter,
                make_counter_memory,
                [2],
                repeats=2,
                chunk_size=0,
            )


class TestSweepTable:
    def test_table_rendering(self):
        points = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            steps=20_000,
            repeats=3,
        )
        table = sweep_table(points)
        assert "+-" in table
        assert "system latency" in table


class TestStreamingAggregator:
    def triples(self, n_values, repeats, offset=0.0):
        return {
            (n, r): (
                n + r / 7.0 + offset,
                1.0 / (n + r + 1),
                0.25 + 0.1 * r,
            )
            for n in n_values
            for r in range(repeats)
        }

    def test_matches_batch_estimator_to_float64_tolerance(self):
        n_values, repeats = [2, 4], 9
        triples = self.triples(n_values, repeats)
        aggregator = StreamingSweepAggregator(n_values, repeats)
        for key, triple in triples.items():
            aggregator.add(key, triple)
        points = aggregator.points(0.95)
        for point in points:
            batch = [
                mean_confidence_interval(
                    [triples[(point.n, r)][i] for r in range(repeats)],
                    confidence=0.95,
                )
                for i in range(3)
            ]
            streamed = (
                point.system_latency,
                point.completion_rate,
                point.fairness_ratio,
            )
            for stream_est, batch_est in zip(streamed, batch):
                assert stream_est.mean == pytest.approx(
                    batch_est.mean, rel=1e-12, abs=1e-15
                )
                assert stream_est.half_width == pytest.approx(
                    batch_est.half_width, rel=1e-12, abs=1e-15
                )
                assert stream_est.n_samples == batch_est.n_samples == repeats

    def test_out_of_order_add_is_bit_identical_to_in_order(self):
        # Parallel sweeps complete replicates in arbitrary order; the
        # pending-buffer canonical folding makes the result a function
        # of the task set alone.
        n_values, repeats = [2, 4], 6
        triples = self.triples(n_values, repeats)
        in_order = StreamingSweepAggregator(n_values, repeats)
        for key in sorted(triples):
            in_order.add(key, triples[key])
        shuffled = StreamingSweepAggregator(n_values, repeats)
        keys = list(triples)
        rng = random.Random(13)
        rng.shuffle(keys)
        for key in keys:
            shuffled.add(key, triples[key])
        assert shuffled.pending_count == 0
        assert shuffled.points(0.95) == in_order.points(0.95)

    def test_duplicate_replicate_rejected(self):
        aggregator = StreamingSweepAggregator([2], 3)
        aggregator.add((2, 0), (1.0, 1.0, 1.0))
        with pytest.raises(ValueError, match="already added"):
            aggregator.add((2, 0), (1.0, 1.0, 1.0))
        # Out-of-order duplicates (still pending) are caught too.
        aggregator.add((2, 2), (1.0, 1.0, 1.0))
        with pytest.raises(ValueError, match="already added"):
            aggregator.add((2, 2), (2.0, 2.0, 2.0))

    def test_keys_outside_sweep_rejected(self):
        aggregator = StreamingSweepAggregator([2], 3)
        with pytest.raises(KeyError, match="outside the sweep"):
            aggregator.add((8, 0), (1.0, 1.0, 1.0))
        with pytest.raises(KeyError, match="outside"):
            aggregator.add((2, 3), (1.0, 1.0, 1.0))

    def test_points_with_missing_replicates_rejected(self):
        aggregator = StreamingSweepAggregator([2, 4], 2)
        aggregator.add((2, 0), (1.0, 1.0, 1.0))
        aggregator.add((2, 1), (2.0, 2.0, 2.0))
        with pytest.raises(ValueError, match=r"n=\[4\]"):
            aggregator.points(0.95)


class TestCrashScheduleResolution:
    def test_callable_schedule_resolved_once_per_n(self):
        # The resolve-once fix: the callable must be invoked exactly one
        # time per sweep point, not once for the fingerprint and again
        # per replicate (a nondeterministic callable used to crash
        # different replicates than the fingerprint recorded).
        calls = []

        def schedule(n):
            calls.append(n)
            return {0: 50}

        latency_sweep(
            cas_counter,
            make_counter_memory,
            [2, 4],
            steps=5_000,
            repeats=3,
            crash_times=schedule,
        )
        assert calls == [2, 4]

    def test_callable_and_equivalent_dict_schedules_agree(self):
        kwargs = dict(steps=5_000, repeats=3, seed=3)
        from_dict = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            crash_times={0: 50},
            **kwargs,
        )
        from_callable = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            crash_times=lambda n: {0: 50},
            **kwargs,
        )
        assert from_dict == from_callable

    def test_parallel_sweep_accepts_unpicklable_callable(self):
        # Resolution happens before dispatch, so lambdas (unpicklable
        # by the stdlib pickler) are fine for parallel sweeps now.
        kwargs = dict(steps=5_000, repeats=2, seed=3)
        serial = latency_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            crash_times=lambda n: {0: 50},
            **kwargs,
        )
        parallel = parallel_sweep(
            cas_counter,
            make_counter_memory,
            [2],
            max_workers=2,
            crash_times=lambda n: {0: 50},
            **kwargs,
        )
        assert serial == parallel
